"""The cluster coordinator: a sharded SDC with a single-SDC transcript.

:class:`ClusterSdc` presents exactly the :class:`~repro.pisa.sdc_server.SdcServer`
surface (``handle_pu_update`` / ``start_request`` / ``finish_request`` /
``blinding_parameters``), so the STP, the SU clients, the epoch batcher,
and the broker all drive it unchanged.  Internally every request is
split by block ownership, scattered to the shards, and the encrypted
partials merged back — with one invariant the test suite asserts
byte-for-byte:

**Transcript equivalence.**  Seeded identically, the N-shard cluster
emits the *same bytes* as one SDC — the same ``Ṽ`` matrix to the STP,
the same license, the same perturbed signature — because:

* all randomness (per-cell ``(α, β, ε)``, obfuscator nonces, the
  signature nonce, η) is drawn *centrally*, in the single-SDC cell
  order, before anything is scattered;
* shards perform only deterministic homomorphic arithmetic on that
  handed-down randomness (:mod:`repro.cluster.shard`);
* the merged ``ΣQ̃`` is a product of partial products mod ``n²``, which
  is grouping-independent.

So sharding changes *where* the multiplications run and nothing else —
the same argument (and the same test pattern) that made the executor
seam safe in the service runtime.

:class:`ClusterCoordinator` mirrors :class:`~repro.pisa.protocol.PisaCoordinator`
(same construction-time RNG draw order, same enrolment flows) and adds
the cluster operations: ``kill_shard``, ``join_shard`` / ``leave_shard``
with block handoff, and epoch commit with per-shard snapshots.
"""

from __future__ import annotations

import itertools
import time

from repro.crypto.paillier import (
    EncryptedNumber,
    PaillierKeypair,
    PaillierPublicKey,
    generate_keypair,
    hom_sum,
)
from repro.crypto.rand import RandomSource, default_rng
from repro.crypto.signatures import RsaFdhSigner, generate_rsa_keypair
from repro.errors import ProtocolError
from repro.geo.region import PrivacyRegion
from repro.net.transport import (
    InMemoryTransport,
    MultiplexedTransport,
    resolve_multiplexed,
)
from repro.pisa.blinding import BlindingFactory, BlindingParameters
from repro.pisa.license import TransmissionLicense
from repro.pisa.messages import (
    LicenseResponse,
    PUUpdateMessage,
    SignExtractionRequest,
    SignExtractionResponse,
    SURequestMessage,
)
from repro.pisa.protocol import RoundReport, RoundTimings
from repro.pisa.pu_client import PUClient
from repro.pisa.sdc_server import PendingRound, SdcStats
from repro.pisa.stp_server import StpServer
from repro.pisa.su_client import SUClient
from repro.pisa.storage import serialize_directory
from repro.resilience.journal import JournaledClock, JournalingRandomSource
from repro.store.coldstart import restore_shard_from_store
from repro.watch.entities import PUReceiver, SUTransmitter
from repro.watch.environment import SpectrumEnvironment

from repro.cluster.fencing import LeaseAuthority
from repro.cluster.membership import ClusterMembership
from repro.cluster.rebalance import HandoffPlan, execute_handoff, plan_handoff
from repro.cluster.replica import ShardReplicaSet, SnapshotStore
from repro.cluster.ring import DEFAULT_VIRTUAL_NODES
from repro.cluster.router import ShardRouter
from repro.cluster.shard import (
    SdcShard,
    ShardPhase1Request,
    ShardPhase2Request,
)

__all__ = ["ClusterSdc", "ClusterCoordinator"]


class ClusterSdc:
    """Drop-in SDC facade over the shard fleet."""

    def __init__(
        self,
        environment: SpectrumEnvironment,
        directory,
        signer: RsaFdhSigner,
        router: ShardRouter,
        issuer_id: str = "sdc",
        rng: RandomSource | None = None,
        fresh_beta_encryption: bool = True,
        clock=time.time,
        journal=None,
        store=None,
    ) -> None:
        self.environment = environment
        self.directory = directory
        self.signer = signer
        self.router = router
        self.issuer_id = issuer_id
        #: Optional durable :class:`~repro.store.base.StateStore`; when
        #: set, every routed PU update is upserted into its per-PU table
        #: so a cold restart can rebuild the budget without the journal.
        self.store = store
        self._rng = default_rng(rng)
        self._fresh_beta = fresh_beta_encryption
        self._clock = clock
        #: Optional :class:`repro.resilience.journal.EpochJournal`.  When
        #: set, protocol-step markers are write-ahead logged and phase-2
        #: randomness is *pre-drawn* behind a durability barrier (see
        #: :meth:`finish_request`) so a crash mid-phase-2 replays
        #: byte-identically.  ``None`` leaves the draw timing exactly as
        #: the transcript-equivalence tests pin it.
        self.journal = journal
        self.stats = SdcStats()
        self._pending: dict[str, PendingRound] = {}
        self._round_counter = itertools.count()
        #: The most recent round's merged ΣQ̃ (equivalence-test probe;
        #: the single SDC exposes the same attribute).
        self.last_q_sum: EncryptedNumber | None = None
        directory.register_signing_key(issuer_id, signer.public_key)

    @property
    def group_public_key(self) -> PaillierPublicKey:
        return self.directory.group_public_key

    def blinding_parameters(self) -> BlindingParameters:
        """Identical derivation to the single SDC — same α/β widths."""
        params = self.environment.params
        bound = (1 << params.value_bits) * (params.sinr_plus_redn_int + 1)
        return BlindingParameters.for_key(self.group_public_key, bound)

    # -- Figure 4 step 4 ---------------------------------------------------------

    def handle_pu_update(self, message: PUUpdateMessage) -> None:
        """Route the update to the owning shard (validated there)."""
        if self.journal is not None:
            self.journal.pu_update(message.to_bytes())
        shard_id = self.router.route_pu_update(message)
        if self.store is not None:
            # Persist *after* the shard accepted it (ownership checked),
            # keyed by owning shard so a cold start can restore one
            # shard without scanning the fleet's rows.
            self.store.put_pu_update(shard_id, message.pu_id, message.to_bytes())
        self.stats.pu_updates += 1

    # -- Figure 5 phase 1 --------------------------------------------------------

    def start_request(
        self, request: SURequestMessage, span=None
    ) -> SignExtractionRequest:
        """Scatter phase 1 and reassemble the exact single-SDC ``Ṽ``.

        ``span`` (optional :class:`repro.telemetry.Span`) becomes the
        parent of the per-shard scatter spans; tracing draws no protocol
        randomness, so traced and untraced transcripts stay identical.
        """
        env = self.environment
        if span is not None:
            span.set_attribute("blocks", len(request.region_blocks))
        if len(request.matrix) != env.num_channels:
            raise ProtocolError("request must carry one row per channel")
        if not self.directory.has_su_key(request.su_id):
            raise ProtocolError(f"SU {request.su_id!r} has no registered key")
        for block in request.region_blocks:
            if not 0 <= block < env.num_blocks:
                raise ProtocolError(f"disclosed block {block} outside the area")
        factory = BlindingFactory(self.blinding_parameters(), rng=self._rng)
        pk = self.group_public_key
        # All randomness, drawn centrally in the single-SDC cell order
        # (row-major: blinding triple, then obfuscator nonce) — the
        # shards never touch the RNG, so the transcript cannot depend on
        # how the map is partitioned.
        blinding_rows = []
        obfuscator_rows = []
        for row in request.matrix:
            blinding_row = []
            obfuscator_row = []
            for f_ct in row:
                if f_ct.public_key != pk:
                    raise ProtocolError("request entry not under the group key")
                blinding_row.append(factory.draw())
                obfuscator_row.append(
                    pk.random_r(self._rng) if self._fresh_beta else None
                )
            blinding_rows.append(tuple(blinding_row))
            obfuscator_rows.append(tuple(obfuscator_row))
        round_id = f"round-{next(self._round_counter)}"
        if self.journal is not None:
            # Every phase-1 random input is drawn; barrier before the
            # first message derived from it can leave the process.
            self.journal.phase1_committed(round_id)
        split = self.router.split_columns(request.region_blocks)
        subqueries = {}
        for shard_id, columns in split.items():
            subqueries[shard_id] = ShardPhase1Request(
                round_id=round_id,
                su_id=request.su_id,
                shard_id=shard_id,
                columns=columns,
                blocks=tuple(request.region_blocks[k] for k in columns),
                matrix=tuple(
                    tuple(row[k] for k in columns) for row in request.matrix
                ),
                blindings=tuple(
                    tuple(row[k] for k in columns) for row in blinding_rows
                ),
                obfuscators=tuple(
                    tuple(row[k] for k in columns) for row in obfuscator_rows
                ),
            )
        if span is not None:
            span.set_attribute("shards", len(subqueries))
        responses = self.router.scatter_phase1(subqueries, parent=span)
        # Gather: place each shard's columns back at their request
        # positions — the reassembled matrix is column-for-column the
        # matrix one SDC would have produced.
        width = len(request.region_blocks)
        grid: list[list[EncryptedNumber | None]] = [
            [None] * width for _ in range(env.num_channels)
        ]
        for response in responses.values():
            for j, k in enumerate(response.columns):
                for c in range(env.num_channels):
                    grid[c][k] = response.matrix[c][j]
        blinded_rows = tuple(tuple(row) for row in grid)
        self._pending[round_id] = PendingRound(
            round_id=round_id,
            su_id=request.su_id,
            region_blocks=request.region_blocks,
            blindings=tuple(blinding_rows),
            request_digest=TransmissionLicense.digest_of(request.digest_bytes()),
            channels=tuple(range(env.num_channels)),
        )
        self.stats.requests_started += 1
        return SignExtractionRequest(
            round_id=round_id, su_id=request.su_id, matrix=blinded_rows
        )

    # -- Figure 5 phase 2 --------------------------------------------------------

    def finish_request(
        self, response: SignExtractionResponse, span=None
    ) -> LicenseResponse:
        """Scatter the ``Q̃`` work, merge partial ``ΣQ̃``, issue the license."""
        pending = self._pending.get(response.round_id)
        if pending is None:
            raise ProtocolError(f"unknown round {response.round_id!r}")
        if response.su_id != pending.su_id:
            raise ProtocolError("sign-extraction response for the wrong SU")
        su_key = self.directory.su_key(pending.su_id)
        if len(response.matrix) != len(pending.blindings):
            raise ProtocolError("sign matrix shape mismatch")
        for x_row, blinding_row in zip(response.matrix, pending.blindings):
            if len(x_row) != len(blinding_row):
                raise ProtocolError("sign matrix shape mismatch")
            for x_ct in x_row:
                if x_ct.public_key != su_key:
                    raise ProtocolError("converted sign not under the SU's key")
        del self._pending[response.round_id]
        if self.journal is not None:
            # Pre-draw every phase-2 random input — signature obfuscator,
            # η, the license clock — in the single-SDC order, and put a
            # durability barrier under them *before* the scatter.  A
            # coordinator killed anywhere past this point replays the
            # round byte-identically from the journal alone.  The draw
            # *order* (r, then η) matches the unjournaled path below, so
            # journaling never shifts the transcript.
            sig_r = su_key.random_r(self._rng)
            eta = BlindingFactory(
                self.blinding_parameters(), rng=self._rng
            ).draw_eta()
            issued_at = int(self._clock())
            self.journal.phase2_committed(response.round_id)
        else:
            sig_r = None
            eta = None
            issued_at = None
        # Phase 2 is block-state-free (pure X̃/ε arithmetic), so the
        # *current* ring decides who computes what — a round that spans
        # a membership change still completes.
        split = self.router.split_columns(pending.region_blocks)
        subqueries = {}
        for shard_id, columns in split.items():
            subqueries[shard_id] = ShardPhase2Request(
                round_id=response.round_id,
                shard_id=shard_id,
                columns=columns,
                matrix=tuple(
                    tuple(row[k] for k in columns) for row in response.matrix
                ),
                epsilons=tuple(
                    tuple(row[k].epsilon for k in columns)
                    for row in pending.blindings
                ),
            )
        if span is not None:
            span.set_attribute("shards", len(subqueries))
        partials = self.router.scatter_phase2(subqueries, parent=span)
        # Merge order is fixed (sorted shard id) for determinism, though
        # mod-n² multiplication makes any order produce the same integer.
        q_sum = hom_sum(
            [partials[shard_id].partial_q for shard_id in sorted(partials)]
        )
        license_body = TransmissionLicense(
            su_id=pending.su_id,
            issuer_id=self.issuer_id,
            request_digest=pending.request_digest,
            channels=pending.channels,
            issued_at=(
                issued_at if issued_at is not None else int(self._clock())
            ),
        )
        signature = license_body.sign(self.signer, max_value=su_key.n)
        encrypted_signature = EncryptedNumber(
            su_key,
            (
                su_key.raw_encrypt(signature, r=sig_r)
                if sig_r is not None
                else su_key.raw_encrypt(signature, rng=self._rng)
            ),
        )
        # eq. (17): G̃ = SG̃ ⊕ (η ⊗ ΣQ̃) — same RNG order as the single
        # SDC (signature nonce, then η).
        if eta is None:  # audit-ok: SEC002 — None-sentinel on the pre-draw slot, not a value branch
            eta = BlindingFactory(
                self.blinding_parameters(), rng=self._rng
            ).draw_eta()
        self.last_q_sum = q_sum
        g_ct = encrypted_signature.add(q_sum.scalar_mul(eta))
        self.stats.requests_completed += 1
        return LicenseResponse(license=license_body, encrypted_signature=g_ct)

    # -- epoch control -----------------------------------------------------------

    def commit_epoch(self, epoch_id: int, snapshot: bool = True) -> None:
        """Commit on every shard; snapshot each primary at the new epoch."""
        self.router.commit_epoch(epoch_id, snapshot=snapshot)

    @property
    def pending_rounds(self) -> int:
        return len(self._pending)


class ClusterCoordinator:
    """Builds and drives a complete sharded PISA deployment.

    Construction draws randomness in exactly
    :class:`~repro.pisa.protocol.PisaCoordinator`'s order (group keypair,
    then signing keypair; shards draw nothing), so the same seed yields
    the same keys — the precondition of the transcript-equivalence test.
    """

    def __init__(
        self,
        environment: SpectrumEnvironment,
        num_shards: int = 2,
        key_bits: int = 2048,
        signature_bits: int | None = None,
        rng: RandomSource | None = None,
        transport: MultiplexedTransport | None = None,
        fresh_beta_encryption: bool = True,
        stp_executor=None,
        shard_executor_factory=None,
        heartbeat_timeout_s: float = 1.0,
        max_attempts: int = 2,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        scatter_threads: int | None = None,
        journal=None,
        clock=time.time,
        metrics=None,
        store=None,
    ) -> None:
        if num_shards < 1:
            raise ProtocolError("num_shards must be positive")
        if signature_bits is None:
            signature_bits = max(32, key_bits // 2)
        if signature_bits >= key_bits:
            raise ProtocolError(
                "signature modulus must be smaller than the Paillier modulus"
            )
        self.environment = environment
        self.key_bits = key_bits
        self._rng = default_rng(rng)
        self.journal = journal
        if journal is not None:
            # Journal the shared draw stream at the root: key generation,
            # blinding triples, obfuscator nonces, client randomness —
            # everything the deployment ever draws goes through this one
            # wrapper, so one journal replays the whole deployment.
            self._rng = JournalingRandomSource(self._rng, journal)
            clock = JournaledClock(journal, base=clock)
        self._clock = clock
        self.transport: InMemoryTransport = (
            transport if transport is not None else MultiplexedTransport()
        )
        self.stp = self._build_stp(key_bits, stp_executor)
        _, signing_private = generate_rsa_keypair(signature_bits, rng=self._rng)
        # Control plane — deterministic, no RNG draws from here on.
        self._shard_executor_factory = shard_executor_factory
        self._shard_executors: list = []
        self._heartbeat_timeout_s = heartbeat_timeout_s
        #: Optional durable :class:`~repro.store.base.StateStore` —
        #: epoch snapshots, PU rows, and the key directory are mirrored
        #: into it, making the whole deployment cold-startable.
        self.store = store
        self.snapshots = SnapshotStore(store=store)
        shard_ids = tuple(f"shard-{i}" for i in range(num_shards))
        self.membership = ClusterMembership(shard_ids, virtual_nodes=virtual_nodes)
        self.replica_sets: dict[str, ShardReplicaSet] = {
            shard_id: self._build_replica_set(shard_id) for shard_id in shard_ids
        }
        assignment = self.membership.ring.assignment(
            tuple(range(environment.num_blocks))
        )
        for shard_id, blocks in assignment.items():
            self.replica_sets[shard_id].assign_blocks(blocks)
        #: The deployment's single lease issuer.  Durable through the
        #: store (tokens survive kill9-and-coldstart) and journaled, so
        #: the exactly-one-writer audit can reconstruct every handover.
        self.fencing = LeaseAuthority(store=store, journal=journal, metrics=metrics)
        self.router = ShardRouter(
            self.membership,
            self.replica_sets,
            # Unwrap decorator transports (sanitizer, chaos recorder) so
            # link accounting and fault handling reach the multiplexed
            # layer regardless of stacking order.
            transport=resolve_multiplexed(self.transport),
            max_attempts=max_attempts,
            scatter_threads=scatter_threads,
            metrics=metrics,
            fencing=self.fencing,
        )
        # A durable store may already hold fenced leases from a previous
        # incarnation; replicas must adopt them before serving.
        for shard_id in shard_ids:
            token = self.fencing.token(shard_id)
            if token:
                self.replica_sets[shard_id].install_fence(token)
                self.membership.record_lease(shard_id, token)
        if metrics is not None:
            self.transport.attach_metrics(metrics)
        self.sdc = ClusterSdc(
            environment,
            directory=self.stp.directory,
            signer=RsaFdhSigner(signing_private),
            router=self.router,
            rng=self._rng,
            fresh_beta_encryption=fresh_beta_encryption,
            clock=self._clock,
            journal=journal,
            store=store,
        )
        self._pu_clients: dict[str, PUClient] = {}
        self._su_clients: dict[str, SUClient] = {}
        self._persist_directory()

    def _build_stp(self, key_bits: int, stp_executor) -> StpServer:
        """Build the STP; the socket plane overrides this with a remote
        proxy that draws the group keypair at this exact position."""
        return StpServer(key_bits=key_bits, rng=self._rng, executor=stp_executor)

    def _build_replica_set(self, shard_id: str) -> ShardReplicaSet:
        executor = (
            self._shard_executor_factory(shard_id)
            if self._shard_executor_factory is not None
            else None
        )
        if executor is not None:
            self._shard_executors.append(executor)

        def factory(role: str) -> SdcShard:
            return SdcShard(
                shard_id,
                self.environment,
                self.stp.group_public_key,
                executor=executor,
            )

        return ShardReplicaSet(
            shard_id,
            shard_factory=factory,
            snapshots=self.snapshots,
            heartbeat_timeout_s=self._heartbeat_timeout_s,
            journal=self.journal,
        )

    def close(self) -> None:
        """Release the scatter threads and any shard worker processes."""
        self.router.close()
        for executor in self._shard_executors:
            closer = getattr(executor, "close", None)
            if closer is not None:
                closer()

    # -- enrolment (mirrors PisaCoordinator) ---------------------------------------

    def enroll_pu(self, pu: PUReceiver) -> PUClient:
        """Create a PU client and route its initial encrypted update."""
        client = PUClient(
            pu, self.environment, self.stp.group_public_key, rng=self._rng
        )
        self._pu_clients[pu.receiver_id] = client
        update = client.build_update()
        self.transport.send(update, sender=pu.receiver_id, receiver="sdc")
        self.sdc.handle_pu_update(update)
        return client

    def enroll_su(
        self,
        su: SUTransmitter,
        region: PrivacyRegion | None = None,
        keypair: PaillierKeypair | None = None,
    ) -> SUClient:
        """Create an SU client, generate/register its personal key pair."""
        keypair = keypair or generate_keypair(self.key_bits, rng=self._rng)
        client = SUClient(
            su,
            self.environment,
            self.stp.group_public_key,
            keypair,
            region=region,
            rng=self._rng,
        )
        self.stp.register_su(su.su_id, client.public_key)
        self._su_clients[su.su_id] = client
        self._persist_directory()
        return client

    def _persist_directory(self) -> None:
        """Mirror the key directory into the durable store."""
        if self.store is not None:
            self.store.put_directory(serialize_directory(self.stp.directory))

    def pu_client(self, pu_id: str) -> PUClient:
        return self._pu_clients[pu_id]

    def su_client(self, su_id: str) -> SUClient:
        return self._su_clients[su_id]

    # -- protocol rounds -------------------------------------------------------------

    def pu_switch_channel(
        self, pu_id: str, channel_slot: int | None, signal_strength_mw: float = 0.0
    ) -> bool:
        """Run Figure 4 for a channel switch; returns True if an update flowed."""
        client = self._pu_clients[pu_id]
        update = client.switch_channel(channel_slot, signal_strength_mw)
        if update is None:
            return False
        self.transport.send(update, sender=pu_id, receiver="sdc")
        self.sdc.handle_pu_update(update)
        return True

    def run_request_round(
        self, su_id: str, reuse_cached_request: bool = False
    ) -> RoundReport:
        """Run Figure 5 end to end through the cluster, with cost accounting."""
        client = self._su_clients[su_id]

        t0 = time.perf_counter()
        if reuse_cached_request:
            request = client.refresh_request()
        else:
            request = client.prepare_request()
        t1 = time.perf_counter()
        self.transport.send(request, sender=su_id, receiver="sdc")

        sign_request = self.sdc.start_request(request)
        t2 = time.perf_counter()
        self.transport.send(sign_request, sender="sdc", receiver="stp")

        sign_response = self.stp.handle_sign_extraction(sign_request)
        t3 = time.perf_counter()
        self.transport.send(sign_response, sender="stp", receiver="sdc")

        response = self.sdc.finish_request(sign_response)
        t4 = time.perf_counter()
        self.transport.send(response, sender="sdc", receiver=su_id)

        outcome = client.process_response(response, self.stp.directory)
        t5 = time.perf_counter()

        return RoundReport(
            su_id=su_id,
            granted=outcome.granted,
            outcome=outcome,
            timings=RoundTimings(
                request_preparation=t1 - t0,
                sdc_phase1=t2 - t1,
                stp_conversion=t3 - t2,
                sdc_phase2=t4 - t3,
                su_decryption=t5 - t4,
            ),
            request_bytes=request.wire_size(),
            sign_extraction_bytes=sign_request.wire_size(),
            conversion_bytes=sign_response.wire_size(),
            response_bytes=response.wire_size(),
        )

    # -- cluster operations ------------------------------------------------------------

    def kill_shard(self, shard_id: str) -> None:
        """Crash a shard's primary and cut its wire (failover drill)."""
        self.replica_sets[shard_id].kill_primary()
        mux = resolve_multiplexed(self.transport)
        if mux is not None:
            mux.fail_endpoint(shard_id)

    def cold_start_shard(self, shard_id: str, tail=None) -> int:
        """Rebuild a shard replica set from the durable store alone.

        The disaster path ``kill9-then-coldstart`` drills: both replicas
        of ``shard_id`` are gone (SIGKILL — nothing in memory survives),
        so a fresh set is built and both replicas are restored from the
        store's latest epoch snapshot plus the unconsumed journal
        ``tail`` (a :class:`~repro.resilience.journal.JournalReadResult`
        from :func:`repro.store.checkpoint.recover`).  Returns the
        number of tail records applied to the new primary.
        """
        if self.store is None:
            raise ProtocolError("cold_start_shard needs a durable store")
        replica_set = self._build_replica_set(shard_id)
        # Ring ownership first, so a store without a snapshot (crash
        # before the first epoch commit) can still replay its PU rows;
        # a snapshot restore *replaces* ownership with the snapshot's.
        assignment = self.membership.ring.assignment(
            tuple(range(self.environment.num_blocks))
        )
        replica_set.assign_blocks(assignment.get(shard_id, ()))
        applied = restore_shard_from_store(replica_set.primary, self.store, tail)
        restore_shard_from_store(replica_set.standby, self.store, tail)
        # A cold start is a new writer generation: re-adopt the persisted
        # lease (which survived the kill) and bump past it, so anything
        # the dead incarnation still has in flight is fenced out.
        self.fencing.register(shard_id)
        lease = self.fencing.bump(shard_id, "cold-start")
        replica_set.install_fence(lease.token)
        self.membership.record_lease(shard_id, lease.token)
        self.replica_sets[shard_id] = replica_set
        self.router.add_replica_set(shard_id, replica_set)
        replica_set.record_heartbeat()
        if self.journal is not None:
            self.journal.note(f"cold-start:{shard_id}")
        return applied

    def join_shard(self, shard_id: str) -> HandoffPlan:
        """Admit a new shard mid-epoch: ring swap + block handoff."""
        old_ring = self.membership.ring
        replica_set = self._build_replica_set(shard_id)
        self.replica_sets[shard_id] = replica_set
        self.router.add_replica_set(shard_id, replica_set)
        new_ring = self.membership.join(shard_id)
        plan = plan_handoff(old_ring, new_ring, self.environment.num_blocks)
        execute_handoff(plan, self.replica_sets)
        return plan

    def leave_shard(self, shard_id: str) -> HandoffPlan:
        """Retire a shard: ring swap + handoff of its blocks to survivors."""
        old_ring = self.membership.ring
        new_ring = self.membership.leave(shard_id)
        plan = plan_handoff(old_ring, new_ring, self.environment.num_blocks)
        execute_handoff(plan, self.replica_sets)
        self.router.remove_replica_set(shard_id)
        del self.replica_sets[shard_id]
        return plan
