"""Consistent-hash ring mapping geographic block ids to SDC shards.

The 600-block spectrum map partitions across shards by *block id*, the
unit every per-cell homomorphic term already decomposes over: a PU
update touches one block, an SU request's matrix columns each name one
disclosed block.  Consistent hashing with virtual nodes gives the two
properties the cluster needs:

* **balance** — each shard owns ≈ ``B / N`` blocks (virtual nodes smooth
  the variance of raw hash partitioning);
* **stable rebalancing** — adding a shard moves blocks only *onto* the
  new shard, removing one moves blocks only *off* it.  No unrelated
  block changes owner, so a membership change hands off a bounded slice
  of encrypted PU state instead of reshuffling the whole map
  (:mod:`repro.cluster.rebalance` relies on this, and a test asserts it).

Hash points come from :func:`repro.crypto.hashing.sha256`, so placement
is stable across processes and Python versions (no ``hash()``
randomisation) — a promoted replica or a restarted router re-derives the
identical block→shard map from the member list alone.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

from repro.crypto.hashing import sha256
from repro.errors import ClusterError

__all__ = ["ConsistentHashRing", "DEFAULT_VIRTUAL_NODES"]

#: Virtual nodes per shard.  64 keeps the largest/smallest shard load
#: within ~2x at small member counts, at negligible ring-build cost.
DEFAULT_VIRTUAL_NODES = 64


def _point(label: str) -> int:
    """A stable 64-bit ring coordinate for ``label``."""
    return int.from_bytes(sha256(label.encode("utf-8"))[:8], "big")


class ConsistentHashRing:
    """Block-id → shard-id placement with virtual nodes.

    The ring is rebuilt (sorted point list) on membership change and
    read-only between changes; lookups are ``O(log(N · vnodes))``.
    """

    def __init__(
        self,
        nodes: Iterable[str] = (),
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> None:
        if virtual_nodes < 1:
            raise ClusterError("virtual_nodes must be positive")
        self.virtual_nodes = virtual_nodes
        self._nodes: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add_node(node)

    # -- membership ------------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def add_node(self, node_id: str) -> None:
        if node_id in self._nodes:
            raise ClusterError(f"shard {node_id!r} is already on the ring")
        self._nodes.add(node_id)
        self._rebuild()

    def remove_node(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise ClusterError(f"shard {node_id!r} is not on the ring")
        self._nodes.remove(node_id)
        self._rebuild()

    def _rebuild(self) -> None:
        pairs: list[tuple[int, str]] = []
        for node in self._nodes:
            for vnode in range(self.virtual_nodes):
                pairs.append((_point(f"{node}#{vnode}"), node))
        pairs.sort()
        self._points = [point for point, _ in pairs]
        self._owners = [owner for _, owner in pairs]

    # -- placement -------------------------------------------------------------

    def node_for(self, key: int | str) -> str:
        """The shard owning ``key`` (a block id or any stable label)."""
        if not self._nodes:
            raise ClusterError("ring has no shards")
        label = f"block:{key}" if isinstance(key, int) else key
        index = bisect_right(self._points, _point(label))
        if index == len(self._points):
            index = 0  # wrap past the highest point
        return self._owners[index]

    def assignment(self, blocks: Sequence[int]) -> dict[str, tuple[int, ...]]:
        """``{shard_id: sorted block ids}`` over every shard (empty ones too)."""
        table: dict[str, list[int]] = {node: [] for node in self._nodes}
        for block in blocks:
            table[self.node_for(block)].append(block)
        return {node: tuple(sorted(owned)) for node, owned in table.items()}

    def moved_keys(
        self, other: "ConsistentHashRing", keys: Sequence[int]
    ) -> tuple[int, ...]:
        """Keys whose owner differs between this ring and ``other``."""
        return tuple(
            key for key in keys if self.node_for(key) != other.node_for(key)
        )

    def clone(self) -> "ConsistentHashRing":
        return ConsistentHashRing(self._nodes, virtual_nodes=self.virtual_nodes)

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(shards={len(self._nodes)}, "
            f"vnodes={self.virtual_nodes})"
        )
