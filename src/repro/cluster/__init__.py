"""repro.cluster — the sharded SDC plane.

Partitions the spectrum map's blocks across N SDC shards behind a
consistent-hash ring, scatter-gathers each request's homomorphic work,
and merges the encrypted partials into a transcript byte-identical to
one SDC's.  Each shard gets a warm standby with heartbeat-based
failover; membership changes hand blocks off between epochs.

Layering (all trust-domain-internal to the SDC):

* :mod:`repro.cluster.ring` — block → shard placement;
* :mod:`repro.cluster.shard` — the per-partition worker;
* :mod:`repro.cluster.compute` — one dedicated worker process per shard;
* :mod:`repro.cluster.router` — scatter-gather + bounded-retry failover;
* :mod:`repro.cluster.replica` — warm standby, snapshots, promotion;
* :mod:`repro.cluster.membership` / :mod:`repro.cluster.rebalance` —
  join/leave and block handoff;
* :mod:`repro.cluster.coordinator` — the drop-in SDC facade and the
  deployment builder.

See ``docs/cluster.md`` for the architecture and failure model.
"""

from repro.cluster.compute import DedicatedProcessExecutor
from repro.cluster.coordinator import ClusterCoordinator, ClusterSdc
from repro.cluster.fencing import FenceLease, LeaseAuthority
from repro.cluster.membership import ClusterMembership
from repro.cluster.rebalance import HandoffPlan, execute_handoff, plan_handoff
from repro.cluster.replica import ShardReplicaSet, SnapshotStore
from repro.cluster.ring import ConsistentHashRing
from repro.cluster.router import ShardRouter, SuspectPolicy
from repro.cluster.shard import SdcShard

__all__ = [
    "ClusterCoordinator",
    "ClusterSdc",
    "ClusterMembership",
    "ConsistentHashRing",
    "DedicatedProcessExecutor",
    "FenceLease",
    "HandoffPlan",
    "LeaseAuthority",
    "SdcShard",
    "ShardReplicaSet",
    "ShardRouter",
    "SnapshotStore",
    "SuspectPolicy",
    "execute_handoff",
    "plan_handoff",
]
