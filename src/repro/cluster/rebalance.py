"""Block handoff between two ring versions (shard join/leave).

A membership change produces a new ring; the delta between the old and
new rings is a set of *block moves*.  Because the ring is a consistent
hash, that delta is bounded — a join only pulls blocks onto the new
shard, a leave only pushes the leaver's blocks out — and the handoff is
a pure state transfer of each moved block's encrypted PU contributions:

1. plan: diff the two rings over the full block universe;
2. for every PU whose block moves, detach its latest update from the
   source replica set (``⊖`` from the aggregate) and re-apply it on the
   target (``⊕``) — the same audited eq. (9) maintenance path that built
   the aggregate in the first place;
3. swap the block ownership sets.

Handoff runs *between epochs*: the coordinator finishes in-flight
rounds against the old ring, executes the plan, then routes the next
epoch with the new ring.  Nothing here touches per-round state, so a
mid-epoch join/leave can never strand a pending round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.replica import ShardReplicaSet
from repro.cluster.ring import ConsistentHashRing
from repro.errors import ClusterError

__all__ = ["BlockMove", "HandoffPlan", "plan_handoff", "execute_handoff"]


@dataclass(frozen=True)
class BlockMove:
    """One block changing owner between ring versions."""

    block: int
    source: str
    target: str


@dataclass(frozen=True)
class HandoffPlan:
    """Every move a membership change requires, plus audit totals."""

    moves: tuple[BlockMove, ...]

    @property
    def blocks_moved(self) -> int:
        return len(self.moves)

    def moves_from(self, shard_id: str) -> tuple[BlockMove, ...]:
        return tuple(move for move in self.moves if move.source == shard_id)

    def moves_to(self, shard_id: str) -> tuple[BlockMove, ...]:
        return tuple(move for move in self.moves if move.target == shard_id)


def plan_handoff(
    old_ring: ConsistentHashRing,
    new_ring: ConsistentHashRing,
    num_blocks: int,
) -> HandoffPlan:
    """Diff two rings over blocks ``0..num_blocks-1``."""
    moves = []
    for block in range(num_blocks):
        source = old_ring.node_for(block)
        target = new_ring.node_for(block)
        if source != target:
            moves.append(BlockMove(block=block, source=source, target=target))
    return HandoffPlan(moves=tuple(moves))


def execute_handoff(
    plan: HandoffPlan,
    replica_sets: dict[str, ShardReplicaSet],
) -> int:
    """Apply a plan: transfer PU state and ownership; returns PUs moved.

    Both replicas of the source release the block and both replicas of
    the target receive the PU updates, so a failover during *or after*
    the handoff still finds consistent state on whichever replica wins.
    """
    pus_moved = 0
    for move in plan.moves:
        source = replica_sets.get(move.source)
        target = replica_sets.get(move.target)
        if target is None:
            raise ClusterError(
                f"handoff target {move.target!r} has no replica set"
            )
        # Grant ownership before transferring so re-applied updates pass
        # the target's ownership check.
        target.assign_blocks((move.block,))
        if source is not None:
            block_tuple = (move.block,)
            for pu_id in source.primary.pus_on_blocks(block_tuple):
                update = source.primary.remove_pu(pu_id)
                source.standby.remove_pu(pu_id)
                if update is not None:
                    target.apply_pu_update(update)
                    pus_moved += 1
            source.release_blocks(block_tuple)
    return pus_moved
