"""The cluster membership table: who is on the ring, and since when.

Membership is the control plane of the sharded SDC: the router reads it
to build the consistent-hash ring, the rebalancer reads two successive
versions of it to plan block handoff, and the heartbeat monitor writes
into it from scatter threads.  The table is therefore *versioned* — each
join/leave bumps ``version`` and re-derives the ring — and every
mutation is lock-guarded (the audit's SVC001 rule covers this module).

States are deliberately minimal: a shard is ``ACTIVE`` (owns blocks,
serves sub-queries) or ``LEFT`` (historical record only).  Joining and
leaving are atomic with the ring swap; the *data* handoff between the
two ring versions is :mod:`repro.cluster.rebalance`'s job and runs
between epochs, never mid-round.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.cluster.ring import DEFAULT_VIRTUAL_NODES, ConsistentHashRing
from repro.errors import MembershipError

__all__ = ["MemberRecord", "ClusterMembership", "STATUS_ACTIVE", "STATUS_LEFT"]

STATUS_ACTIVE = "active"
STATUS_LEFT = "left"


@dataclass(frozen=True)
class MemberRecord:
    """One shard's entry in the membership table."""

    shard_id: str
    status: str
    joined_version: int
    left_version: int | None = None


class ClusterMembership:
    """Versioned member table + the ring derived from it."""

    def __init__(
        self,
        members: tuple[str, ...] = (),
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> None:
        self._lock = threading.Lock()
        self._virtual_nodes = virtual_nodes
        self._records: dict[str, MemberRecord] = {}
        #: shard_id → last fencing token observed by the control plane.
        #: Advisory (the shards enforce; the store persists) — this is
        #: the operator-visible record of who holds which lease.
        self._leases: dict[str, int] = {}
        self.version = 0
        self._ring = ConsistentHashRing(virtual_nodes=virtual_nodes)
        for shard_id in members:
            self.join(shard_id)

    # -- reads ---------------------------------------------------------------------

    @property
    def ring(self) -> ConsistentHashRing:
        """The current ring (rebuilt atomically on every change)."""
        with self._lock:
            return self._ring

    def active_members(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(
                sorted(
                    shard_id
                    for shard_id, record in self._records.items()
                    if record.status == STATUS_ACTIVE
                )
            )

    def record(self, shard_id: str) -> MemberRecord:
        with self._lock:
            record = self._records.get(shard_id)
        if record is None:
            raise MembershipError(f"shard {shard_id!r} was never a member")
        return record

    def is_active(self, shard_id: str) -> bool:
        with self._lock:
            record = self._records.get(shard_id)
            return record is not None and record.status == STATUS_ACTIVE

    def lease_token(self, shard_id: str) -> int:
        """The last fencing token recorded for ``shard_id`` (0 = none)."""
        with self._lock:
            return self._leases.get(shard_id, 0)

    def leases(self) -> dict[str, int]:
        """Snapshot of every recorded lease, for operators and audits."""
        with self._lock:
            return dict(self._leases)

    def __len__(self) -> int:
        return len(self.active_members())

    # -- mutations -----------------------------------------------------------------

    def join(self, shard_id: str) -> ConsistentHashRing:
        """Admit a shard; returns the *new* ring (old one stays valid).

        A shard id is permanent: a member that left cannot rejoin under
        the same id (its historical record would become ambiguous — spin
        up a successor id instead).
        """
        with self._lock:
            existing = self._records.get(shard_id)
            if existing is not None:
                if existing.status == STATUS_ACTIVE:
                    raise MembershipError(f"shard {shard_id!r} is already active")
                raise MembershipError(
                    f"shard {shard_id!r} left at version "
                    f"{existing.left_version}; ids are not reusable"
                )
            self.version += 1
            self._records[shard_id] = MemberRecord(
                shard_id=shard_id,
                status=STATUS_ACTIVE,
                joined_version=self.version,
            )
            new_ring = self._ring.clone()
            new_ring.add_node(shard_id)
            self._ring = new_ring
            return new_ring

    def record_lease(self, shard_id: str, token: int) -> None:
        """Note a lease handover; tokens only ratchet forward."""
        if token < 0:
            raise MembershipError("fencing tokens are non-negative")
        with self._lock:
            if token > self._leases.get(shard_id, 0):
                self._leases[shard_id] = token

    def leave(self, shard_id: str) -> ConsistentHashRing:
        """Retire a shard; returns the new ring. The last member cannot leave."""
        with self._lock:
            record = self._records.get(shard_id)
            if record is None or record.status != STATUS_ACTIVE:
                raise MembershipError(f"shard {shard_id!r} is not an active member")
            active = sum(
                1 for r in self._records.values() if r.status == STATUS_ACTIVE
            )
            if active == 1:
                raise MembershipError("the last shard cannot leave the cluster")
            self.version += 1
            self._records[shard_id] = MemberRecord(
                shard_id=shard_id,
                status=STATUS_LEFT,
                joined_version=record.joined_version,
                left_version=self.version,
            )
            new_ring = self._ring.clone()
            new_ring.remove_node(shard_id)
            self._ring = new_ring
            return new_ring

    def __repr__(self) -> str:
        return (
            f"ClusterMembership(active={len(self)}, version={self.version})"
        )
