"""One SDC shard: a block-partition of the spectrum controller.

A shard owns a subset of the map's block ids and holds exactly the SDC
state that decomposes over blocks: the incremental encrypted PU
aggregate ``W̃'(c, b)`` for its blocks and each contributing PU's latest
update.  Everything *cross-block* — randomness, round bookkeeping, the
license — stays on the coordinator (:mod:`repro.cluster.coordinator`).

The division of labour is chosen so the cluster's transcript is
**byte-identical** to one SDC's:

* the coordinator draws every ``(α, β, ε)`` and obfuscator nonce ``r``
  centrally, in the single-SDC cell order, and hands them down inside
  the sub-query;
* the shard performs only *deterministic* homomorphic arithmetic — the
  per-cell indicator (eqs. (10)-(12)) and blinding (eq. (14)) in phase
  1, the ``Q̃`` gadget and a partial ``ΣQ̃`` (eq. (16)) in phase 2.
  Paillier addition is ciphertext multiplication mod ``n²``, which is
  commutative and associative, so partial sums merge into exactly the
  integer the unsharded loop would have produced.

What a shard learns is strictly a projection of what the single SDC
learns (its own blocks' ciphertexts and blinding material, never a
decryption key) — see ``docs/cluster.md`` for the threat-model mapping.

Sub-query messages implement ``wire_size()`` arithmetically (via
:func:`~repro.crypto.serialization.encoded_int_size`) so the modelled
transport accounts coordinator↔shard traffic without serialising
big-int payloads on the hot path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.crypto.paillier import EncryptedNumber, PaillierPublicKey, hom_sum
from repro.crypto.parallel import Executor, default_executor
from repro.crypto.serialization import ciphertext_wire_size, encoded_int_size
from repro.errors import FencedError, ProtocolError, ShardDownError
from repro.pisa.blinding import CellBlinding
from repro.pisa.messages import PUUpdateMessage
from repro.watch.environment import SpectrumEnvironment

__all__ = [
    "ShardPhase1Request",
    "ShardPhase1Response",
    "ShardPhase2Request",
    "ShardPhase2Response",
    "ShardStats",
    "SdcShard",
]


def _str_size(value: str) -> int:
    return 4 + len(value.encode("utf-8"))


@dataclass(frozen=True)
class ShardPhase1Request:
    """Coordinator → shard: one round's columns owned by this shard.

    ``matrix``/``blindings``/``obfuscators`` are channels × columns,
    column ``k`` of this sub-query being column ``columns[k]`` (block
    ``blocks[k]``) of the full request.  The blinding material is SDC
    randomness in transit between parts of the SDC trust domain — it is
    never visible to the STP or any client.
    """

    round_id: str
    su_id: str
    shard_id: str
    columns: tuple[int, ...]
    blocks: tuple[int, ...]
    matrix: tuple[tuple[EncryptedNumber, ...], ...]
    blindings: tuple[tuple[CellBlinding, ...], ...]
    obfuscators: tuple[tuple[int | None, ...], ...]
    #: Router's current lease for this shard; 0 = fencing not in force.
    fence_token: int = 0

    def wire_size(self) -> int:
        size = _str_size(self.round_id) + _str_size(self.su_id)
        size += _str_size(self.shard_id)
        size += encoded_int_size(self.fence_token)
        size += sum(encoded_int_size(c) for c in self.columns)
        size += sum(encoded_int_size(b) for b in self.blocks)
        for row, blinding_row, obf_row in zip(
            self.matrix, self.blindings, self.obfuscators
        ):
            for ct, cell, r in zip(row, blinding_row, obf_row):
                size += ciphertext_wire_size(ct.public_key)
                size += encoded_int_size(cell.alpha)
                size += encoded_int_size(cell.beta)
                # ε travels as a one-byte sign flag; both values encode to
                # the same width, so size it without branching on the sign.
                size += encoded_int_size(1)
                if r is not None:
                    size += encoded_int_size(r)
        return size


@dataclass(frozen=True)
class ShardPhase1Response:
    """Shard → coordinator: the blinded ``Ṽ`` cells for its columns."""

    round_id: str
    shard_id: str
    columns: tuple[int, ...]
    matrix: tuple[tuple[EncryptedNumber, ...], ...]

    def wire_size(self) -> int:
        size = _str_size(self.round_id) + _str_size(self.shard_id)
        size += sum(encoded_int_size(c) for c in self.columns)
        for row in self.matrix:
            for ct in row:
                size += ciphertext_wire_size(ct.public_key)
        return size


@dataclass(frozen=True)
class ShardPhase2Request:
    """Coordinator → shard: converted signs ``X̃`` plus each cell's ε."""

    round_id: str
    shard_id: str
    columns: tuple[int, ...]
    matrix: tuple[tuple[EncryptedNumber, ...], ...]
    epsilons: tuple[tuple[int, ...], ...]
    #: Router's current lease for this shard; 0 = fencing not in force.
    fence_token: int = 0

    def wire_size(self) -> int:
        size = _str_size(self.round_id) + _str_size(self.shard_id)
        size += encoded_int_size(self.fence_token)
        size += sum(encoded_int_size(c) for c in self.columns)
        for row in self.matrix:
            for ct in row:
                size += ciphertext_wire_size(ct.public_key)
                # ε sign flag, sized without branching on the sign.
                size += encoded_int_size(1)
        return size


@dataclass(frozen=True)
class ShardPhase2Response:
    """Shard → coordinator: the partial ``ΣQ̃`` over its columns."""

    round_id: str
    shard_id: str
    cell_count: int
    partial_q: EncryptedNumber

    def wire_size(self) -> int:
        return (
            _str_size(self.round_id)
            + _str_size(self.shard_id)
            + encoded_int_size(self.cell_count)
            + ciphertext_wire_size(self.partial_q.public_key)
        )


@dataclass
class ShardStats:
    """Per-shard operation counters for the evaluation harness."""

    pu_updates: int = 0
    phase1_subqueries: int = 0
    phase2_subqueries: int = 0
    cells_blinded: int = 0
    hom_operations: int = 0


class SdcShard:
    """The per-block-partition worker of the sharded SDC plane."""

    def __init__(
        self,
        shard_id: str,
        environment: SpectrumEnvironment,
        group_public_key: PaillierPublicKey,
        blocks: tuple[int, ...] = (),
        executor: Executor | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.environment = environment
        self.group_public_key = group_public_key
        self._executor = default_executor(executor)
        self.stats = ShardStats()
        self.alive = True
        self.last_committed_epoch = -1
        #: Highest fencing token ever observed; lower-token writes die.
        self.fence_token = 0
        # Ownership, PU state, and the counters are mutated from router
        # scatter threads and the rebalancer; all writes take the lock.
        self._lock = threading.Lock()
        self._blocks: set[int] = set(blocks)
        #: pu_id → (block, per-channel cts) — latest update per PU.
        self._pu_updates: dict[str, tuple[int, tuple[EncryptedNumber, ...]]] = {}
        #: Incrementally maintained W̃'(c, b) for owned cells.
        self._w_sum: dict[tuple[int, int], EncryptedNumber] = {}

    # -- lifecycle / ownership ---------------------------------------------------

    @property
    def blocks(self) -> tuple[int, ...]:
        return tuple(sorted(self._blocks))

    def owns(self, block: int) -> bool:
        return block in self._blocks

    def assign_blocks(self, blocks: tuple[int, ...]) -> None:
        with self._lock:
            self._blocks.update(blocks)

    def release_blocks(self, blocks: tuple[int, ...]) -> None:
        with self._lock:
            self._blocks.difference_update(blocks)

    def kill(self) -> None:
        """Simulated crash: every subsequent sub-query raises."""
        self.alive = False

    def _check_alive(self) -> None:
        if not self.alive:
            raise ShardDownError(f"shard {self.shard_id!r} is down")

    def observe_fence(self, token: int) -> None:
        """Ratchet the shard's lease; reject anything older.

        Tokens only move forward — a request stamped below the highest
        token this replica has *ever* seen comes from a deposed writer
        and raises :class:`~repro.errors.FencedError` before any state
        is touched.  Token 0 means fencing is not in force (legacy
        callers and unfenced deployments) and always passes.
        """
        if token == 0:
            return
        with self._lock:
            if token < self.fence_token:
                raise FencedError(
                    f"shard {self.shard_id!r} is fenced at token "
                    f"{self.fence_token}; request carried stale token {token}"
                )
            self.fence_token = token

    def commit_epoch(self, epoch_id: int, fence_token: int = 0) -> None:
        """Record that every round of ``epoch_id`` has completed."""
        self._check_alive()
        self.observe_fence(fence_token)
        with self._lock:
            if epoch_id > self.last_committed_epoch:
                self.last_committed_epoch = epoch_id

    # -- Figure 4 step 4, restricted to owned blocks -------------------------------

    def handle_pu_update(
        self, message: PUUpdateMessage, fence_token: int = 0
    ) -> None:
        """Fold one PU's encrypted update into this shard's aggregate.

        Same incremental ``⊖ old ⊕ new`` maintenance as the single SDC
        (eq. (9)); the shard additionally refuses updates for blocks it
        does not own — a routing bug must fail loudly, not corrupt a
        sibling's budget.  ``fence_token`` travels beside the message
        (not inside it — ``PUUpdateMessage`` is a protocol message whose
        bytes the transcript fingerprints) and is checked first.
        """
        self._check_alive()
        self.observe_fence(fence_token)
        env = self.environment
        if len(message.ciphertexts) != env.num_channels:
            raise ProtocolError("PU update must carry one ciphertext per channel")
        for ct in message.ciphertexts:
            if ct.public_key != self.group_public_key:
                raise ProtocolError("PU update not under the group key")
        with self._lock:
            if message.block_index not in self._blocks:
                raise ProtocolError(
                    f"shard {self.shard_id!r} does not own block "
                    f"{message.block_index}"
                )
            previous = self._pu_updates.get(message.pu_id)
            if previous is not None:
                old_block, old_cts = previous
                for c, old_ct in enumerate(old_cts):
                    cell = (c, old_block)
                    self._w_sum[cell] = self._w_sum[cell].subtract(old_ct)
                    self.stats.hom_operations += 1
            for c, ct in enumerate(message.ciphertexts):
                cell = (c, message.block_index)
                if cell in self._w_sum:
                    self._w_sum[cell] = self._w_sum[cell].add(ct)
                else:
                    self._w_sum[cell] = ct
                self.stats.hom_operations += 1
            self._pu_updates[message.pu_id] = (
                message.block_index,
                message.ciphertexts,
            )
            self.stats.pu_updates += 1

    def remove_pu(self, pu_id: str) -> PUUpdateMessage | None:
        """Detach one PU's contribution (block handoff); returns its update."""
        with self._lock:
            previous = self._pu_updates.pop(pu_id, None)
            if previous is None:
                return None
            block, cts = previous
            for c, ct in enumerate(cts):
                cell = (c, block)
                self._w_sum[cell] = self._w_sum[cell].subtract(ct)
                self.stats.hom_operations += 1
            return PUUpdateMessage(pu_id=pu_id, block_index=block, ciphertexts=cts)

    def pus_on_blocks(self, blocks: tuple[int, ...]) -> tuple[str, ...]:
        """PU ids whose latest update sits on one of ``blocks``."""
        wanted = set(blocks)
        with self._lock:
            return tuple(
                sorted(
                    pu_id
                    for pu_id, (block, _) in self._pu_updates.items()
                    if block in wanted
                )
            )

    def pu_update_messages(self) -> tuple[PUUpdateMessage, ...]:
        """Every tracked PU's latest update (snapshots and mirroring)."""
        with self._lock:
            return tuple(
                PUUpdateMessage(pu_id=pu_id, block_index=block, ciphertexts=cts)
                for pu_id, (block, cts) in sorted(self._pu_updates.items())
            )

    @property
    def num_tracked_pus(self) -> int:
        return len(self._pu_updates)

    # -- Figure 5 phase 1, this shard's columns -------------------------------------

    def _indicator_cell(
        self, f_ct: EncryptedNumber, channel: int, block: int
    ) -> EncryptedNumber:
        """``Ĩ(c, i)`` for one owned cell — same math as the single SDC."""
        params = self.environment.params
        r_ct = f_ct.scalar_mul(params.sinr_plus_redn_int)  # eq. (11)
        e_value = int(self.environment.e_matrix[channel, block])
        indicator = r_ct.scalar_mul(-1).add_plain(e_value)  # E − R
        w_ct = self._w_sum.get((channel, block))
        if w_ct is not None:
            indicator = indicator.add(w_ct)  # + (T − E) where a PU sits
        return indicator

    def process_phase1(self, request: ShardPhase1Request) -> ShardPhase1Response:
        """Blind this shard's cells (eq. (14)) with handed-down randomness."""
        self._check_alive()
        self.observe_fence(request.fence_token)
        pk = self.group_public_key
        with self._lock:
            for block in request.blocks:
                if block not in self._blocks:
                    raise ProtocolError(
                        f"shard {self.shard_id!r} does not own block {block}"
                    )
            prepared_rows: list[
                list[tuple[EncryptedNumber, CellBlinding, int | None]]
            ] = []
            for c, (row, blinding_row, obf_row) in enumerate(
                zip(request.matrix, request.blindings, request.obfuscators)
            ):
                prepared_row = []
                for k, (f_ct, cell, r) in enumerate(
                    zip(row, blinding_row, obf_row)
                ):
                    if f_ct.public_key != pk:
                        raise ProtocolError("request entry not under the group key")
                    indicator = self._indicator_cell(f_ct, c, request.blocks[k])
                    prepared_row.append((indicator, cell, r))
                    self.stats.hom_operations += 3
                prepared_rows.append(prepared_row)
        jobs = []
        for prepared_row in prepared_rows:
            for indicator, cell, r in prepared_row:
                jobs.append((indicator.ciphertext, cell.alpha, pk.n_sq))  # α ⊗ Ĩ
                if r is not None:
                    jobs.append(pk.obfuscator_job(r))
        powers = iter(self._executor.pow_many(jobs))
        blinded_rows: list[tuple[EncryptedNumber, ...]] = []
        for prepared_row in prepared_rows:
            blinded_row = []
            for indicator, cell, r in prepared_row:
                blinded = EncryptedNumber(pk, next(powers))
                if r is not None:
                    blinded = blinded.subtract(
                        pk.encrypt_with_obfuscator(cell.beta, next(powers))
                    )
                else:
                    blinded = blinded.add_plain(-cell.beta)
                blinded = blinded.scalar_mul(cell.epsilon)  # ε ⊗ (…)
                blinded_row.append(blinded)
            blinded_rows.append(tuple(blinded_row))
        with self._lock:
            self.stats.phase1_subqueries += 1
            self.stats.cells_blinded += sum(len(row) for row in blinded_rows)
        return ShardPhase1Response(
            round_id=request.round_id,
            shard_id=self.shard_id,
            columns=request.columns,
            matrix=tuple(blinded_rows),
        )

    # -- Figure 5 phase 2, partial aggregation --------------------------------------

    def process_phase2(self, request: ShardPhase2Request) -> ShardPhase2Response:
        """``Q̃`` gadgets for this shard's cells and their partial sum.

        The partial is a plain homomorphic sum; the coordinator's merge
        of all partials equals the unsharded ``ΣQ̃`` exactly (mod-``n²``
        multiplication is grouping-independent).
        """
        self._check_alive()
        self.observe_fence(request.fence_token)
        q_cells: list[EncryptedNumber] = []
        for x_row, eps_row in zip(request.matrix, request.epsilons):
            for x_ct, epsilon in zip(x_row, eps_row):
                # eq. (16): Q̃ = (ε ⊗ X̃) ⊖ 1̃.
                q_cells.append(x_ct.scalar_mul(epsilon).add_plain(-1))
        if not q_cells:
            raise ProtocolError("empty phase-2 sub-query")
        partial = hom_sum(q_cells)
        with self._lock:
            self.stats.phase2_subqueries += 1
            self.stats.hom_operations += 3 * len(q_cells) - 1
        return ShardPhase2Response(
            round_id=request.round_id,
            shard_id=self.shard_id,
            cell_count=len(q_cells),
            partial_q=partial,
        )

    def __repr__(self) -> str:
        return (
            f"SdcShard({self.shard_id!r}, blocks={len(self._blocks)}, "
            f"alive={self.alive})"
        )
