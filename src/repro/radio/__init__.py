"""Radio-propagation substrate.

WATCH's interference computations (§III-A, §IV-A1) rest on a propagation
stack: unit conversions, path-loss models (including the Extended Hata
sub-urban model the paper cites for the initialisation step and the
Longley–Rice irregular terrain model used for mean TV signal strength),
terrain data, antenna/EIRP arithmetic, and UHF/WiFi channel maps.  This
subpackage implements all of it from scratch.
"""

from repro.radio.antenna import Antenna, eirp_dbm
from repro.radio.channel import ChannelPlan, TvChannel, WifiChannel
from repro.radio.pathloss import (
    ExtendedHataModel,
    FreeSpaceModel,
    HataModel,
    LogDistanceModel,
    PathLossModel,
    TwoRayGroundModel,
)
from repro.radio.terrain import SyntheticTerrain
from repro.radio.units import db_to_linear, dbm_to_mw, linear_to_db, mw_to_dbm

__all__ = [
    "Antenna",
    "eirp_dbm",
    "ChannelPlan",
    "TvChannel",
    "WifiChannel",
    "PathLossModel",
    "FreeSpaceModel",
    "LogDistanceModel",
    "HataModel",
    "ExtendedHataModel",
    "TwoRayGroundModel",
    "SyntheticTerrain",
    "db_to_linear",
    "dbm_to_mw",
    "linear_to_db",
    "mw_to_dbm",
]
