"""Synthetic terrain.

The paper treats terrain as *public* data pulled from government
databases (USGS/SRTM3, §III-D).  Those are unavailable offline, so we
substitute a deterministic fractal terrain generated with the
diamond–square algorithm.  The terrain feeds only the public path-loss
precomputation (the ``E`` matrix and mean TV signal strengths), so any
plausible elevation field preserves the protocol behaviour.

The API mimics a tile of a terrain database: elevations on a regular
grid, bilinear sampling at arbitrary coordinates, and elevation profiles
between two points (used by the simplified ITM in :mod:`repro.radio.itm`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import RadioError

__all__ = ["SyntheticTerrain"]


class SyntheticTerrain:
    """A deterministic square elevation tile.

    Parameters
    ----------
    size_m:
        Side length of the tile in metres.
    resolution:
        Number of grid points per side (diamond–square needs ``2**k + 1``;
        the constructor rounds up to the next such value).
    roughness:
        Amplitude decay factor per subdivision, in (0, 1).  Higher is
        rougher terrain.
    base_elevation_m / relief_m:
        Mean elevation and peak-to-valley scale.
    seed:
        Seed for the internal :class:`numpy.random.Generator`.
    """

    def __init__(
        self,
        size_m: float = 10_000.0,
        resolution: int = 129,
        roughness: float = 0.55,
        base_elevation_m: float = 120.0,
        relief_m: float = 80.0,
        seed: int = 0,
    ) -> None:
        if size_m <= 0:
            raise RadioError("terrain size must be positive")
        if not 0.0 < roughness < 1.0:
            raise RadioError("roughness must be in (0, 1)")
        k = 1
        while (1 << k) + 1 < resolution:
            k += 1
        self.grid_points = (1 << k) + 1
        self.size_m = float(size_m)
        self.roughness = roughness
        self.base_elevation_m = base_elevation_m
        self.relief_m = relief_m
        self.seed = seed
        self.elevations = self._generate(np.random.default_rng(seed), k)

    def _generate(self, rng: np.random.Generator, k: int) -> np.ndarray:
        """Diamond–square fractal heightmap, normalised to the relief scale."""
        n = self.grid_points
        grid = np.zeros((n, n), dtype=float)
        corners = rng.uniform(-1.0, 1.0, size=4)
        grid[0, 0], grid[0, -1], grid[-1, 0], grid[-1, -1] = corners
        step = n - 1
        amplitude = 1.0
        while step > 1:
            half = step // 2
            # Diamond step: centres of squares.
            for y in range(half, n, step):
                for x in range(half, n, step):
                    avg = (
                        grid[y - half, x - half]
                        + grid[y - half, x + half]
                        + grid[y + half, x - half]
                        + grid[y + half, x + half]
                    ) / 4.0
                    grid[y, x] = avg + rng.uniform(-amplitude, amplitude)
            # Square step: edge midpoints.
            for y in range(0, n, half):
                x_start = half if (y // half) % 2 == 0 else 0
                for x in range(x_start, n, step):
                    total = 0.0
                    count = 0
                    for dy, dx in ((-half, 0), (half, 0), (0, -half), (0, half)):
                        yy, xx = y + dy, x + dx
                        if 0 <= yy < n and 0 <= xx < n:
                            total += grid[yy, xx]
                            count += 1
                    grid[y, x] = total / count + rng.uniform(-amplitude, amplitude)
            step = half
            amplitude *= self.roughness
        # Normalise to [-1, 1] then scale to the requested relief.
        peak = np.max(np.abs(grid))
        if peak > 0:
            grid /= peak
        return self.base_elevation_m + grid * (self.relief_m / 2.0)

    # -- sampling ----------------------------------------------------------

    def elevation_at(self, x_m: float, y_m: float) -> float:
        """Bilinear elevation sample at metric coordinates inside the tile."""
        if not (0.0 <= x_m <= self.size_m and 0.0 <= y_m <= self.size_m):
            raise RadioError("coordinates outside the terrain tile")
        scale = (self.grid_points - 1) / self.size_m
        fx, fy = x_m * scale, y_m * scale
        x0, y0 = int(fx), int(fy)
        x1 = min(x0 + 1, self.grid_points - 1)
        y1 = min(y0 + 1, self.grid_points - 1)
        tx, ty = fx - x0, fy - y0
        e = self.elevations
        return float(
            e[y0, x0] * (1 - tx) * (1 - ty)
            + e[y0, x1] * tx * (1 - ty)
            + e[y1, x0] * (1 - tx) * ty
            + e[y1, x1] * tx * ty
        )

    def profile(
        self, start: tuple[float, float], end: tuple[float, float], samples: int = 64
    ) -> np.ndarray:
        """Elevation profile along the segment ``start → end``."""
        if samples < 2:
            raise RadioError("a profile needs at least 2 samples")
        xs = np.linspace(start[0], end[0], samples)
        ys = np.linspace(start[1], end[1], samples)
        return np.array([self.elevation_at(x, y) for x, y in zip(xs, ys)])

    def mean_elevation(self) -> float:
        """Tile-wide mean elevation in metres."""
        return float(np.mean(self.elevations))

    def terrain_irregularity(self) -> float:
        """Δh irregularity parameter: interdecile elevation range (m)."""
        lo, hi = np.percentile(self.elevations, [10.0, 90.0])
        return float(hi - lo)
