"""Simplified irregular-terrain (Longley–Rice flavoured) model.

WATCH computes the mean TV signal strength ``S^PU_{c,i}`` at each
receiver with "the L-R irregular terrain model" (§III-A, citing the
SenseLess whitespace database).  The reference ITM implementation is a
large Fortran-derived program keyed to proprietary terrain data; we
substitute a simplified model that keeps the three behaviours that
matter for the protocol:

1. free-space behaviour at short range;
2. additional median loss that grows with the terrain irregularity
   parameter Δh along the path (sampled from our synthetic terrain);
3. knife-edge diffraction loss when the direct path is blocked by an
   intermediate ridge.

This is *not* a metrology-grade ITM; it produces a plausible,
deterministic, terrain-dependent field strength surface, which is all
the protocol's public precomputation consumes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import RadioError
from repro.radio.pathloss import FreeSpaceModel, PathLossModel
from repro.radio.terrain import SyntheticTerrain

__all__ = ["IrregularTerrainModel"]

_SPEED_OF_LIGHT = 299_792_458.0


class IrregularTerrainModel(PathLossModel):
    """Terrain-aware point-to-point path loss.

    Unlike the distance-only models, this model is evaluated between two
    named endpoints on a terrain tile via :meth:`loss_between_db`; the
    :meth:`loss_db` interface falls back to a median Δh correction so the
    model can still be used where only a distance is known.
    """

    def __init__(
        self,
        frequency_hz: float,
        terrain: SyntheticTerrain,
        tx_height_m: float = 100.0,
        rx_height_m: float = 10.0,
        climate_loss_db: float = 0.0,
    ) -> None:
        if tx_height_m <= 0 or rx_height_m <= 0:
            raise RadioError("antenna heights must be positive")
        self.frequency_hz = frequency_hz
        self.terrain = terrain
        self.tx_height_m = tx_height_m
        self.rx_height_m = rx_height_m
        self.climate_loss_db = climate_loss_db
        self._free_space = FreeSpaceModel(frequency_hz)
        self._wavelength_m = _SPEED_OF_LIGHT / frequency_hz

    # -- distance-only interface -------------------------------------------

    def loss_db(self, distance_m: float) -> float:
        """Median loss at ``distance_m`` using the tile-wide Δh statistic."""
        d = self._clamp(distance_m)
        return (
            self._free_space.loss_db(d)
            + self._irregularity_loss_db(self.terrain.terrain_irregularity(), d)
            + self.climate_loss_db
        )

    # -- point-to-point interface -------------------------------------------

    def loss_between_db(
        self, tx: tuple[float, float], rx: tuple[float, float], samples: int = 64
    ) -> float:
        """Path loss between two metric coordinates on the terrain tile."""
        distance = math.dist(tx, rx)
        d = self._clamp(distance)
        profile = self.terrain.profile(tx, rx, samples=samples)
        delta_h = float(np.percentile(profile, 90) - np.percentile(profile, 10))
        loss = (
            self._free_space.loss_db(d)
            + self._irregularity_loss_db(delta_h, d)
            + self._diffraction_loss_db(profile, d)
            + self.climate_loss_db
        )
        return loss

    def gain_between(
        self, tx: tuple[float, float], rx: tuple[float, float], samples: int = 64
    ) -> float:
        """Linear gain between two points (``10^(−loss/10)``)."""
        return 10.0 ** (-self.loss_between_db(tx, rx, samples=samples) / 10.0)

    # -- components ----------------------------------------------------------

    @staticmethod
    def _irregularity_loss_db(delta_h_m: float, distance_m: float) -> float:
        """Median terrain-roughness loss.

        Empirical ITM behaviour: loss grows roughly logarithmically with
        Δh and with distance; calibrated so Δh = 90 m (ITM's "hilly")
        adds ≈ 10 dB at 10 km.
        """
        if delta_h_m <= 0 or distance_m <= 0:
            return 0.0
        return (
            4.0
            * math.log10(1.0 + delta_h_m / 10.0)
            * math.log10(1.0 + distance_m / 100.0)
        )

    def _diffraction_loss_db(self, profile: np.ndarray, distance_m: float) -> float:
        """Single knife-edge diffraction over the dominant obstruction.

        The line-of-sight ray runs from the transmit antenna tip to the
        receive antenna tip above the terrain endpoints; the worst
        Fresnel parameter ``v`` along the profile sets the loss via the
        standard approximation ``6.9 + 20·log10(√((v−0.1)²+1) + v − 0.1)``.
        """
        samples = len(profile)
        if samples < 3 or distance_m <= 0:
            return 0.0
        tx_alt = profile[0] + self.tx_height_m
        rx_alt = profile[-1] + self.rx_height_m
        worst_v = -math.inf
        for idx in range(1, samples - 1):
            frac = idx / (samples - 1)
            d1 = frac * distance_m
            d2 = distance_m - d1
            if d1 <= 0 or d2 <= 0:
                continue
            los_alt = tx_alt + (rx_alt - tx_alt) * frac
            clearance = profile[idx] - los_alt
            v = clearance * math.sqrt(2.0 * distance_m / (self._wavelength_m * d1 * d2))
            worst_v = max(worst_v, v)
        if worst_v <= -0.78:
            return 0.0
        return 6.9 + 20.0 * math.log10(
            math.sqrt((worst_v - 0.1) ** 2 + 1.0) + worst_v - 0.1
        )
