"""Antennas and EIRP arithmetic.

§III-D: "For SU, we quantize its transmitter power PT, antenna gain GA
and line-loss LS, and compute EIRP = PT + GA − LS" (all in dB terms).
This module provides that arithmetic plus a small antenna abstraction
with height and gain used by the SDR testbed and the WATCH entities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RadioError
from repro.radio.units import dbm_to_mw

__all__ = ["Antenna", "eirp_dbm", "eirp_mw"]


@dataclass(frozen=True)
class Antenna:
    """An antenna with gain, height, and feed-line loss.

    Attributes
    ----------
    gain_dbi:
        Antenna gain relative to isotropic, in dBi (``GA``).
    height_m:
        Height above ground, in metres — one of the SU parameters the
        paper calls out as privacy-sensitive (§I).
    line_loss_db:
        Cable/connector loss between transmitter and antenna (``LS``).
    """

    gain_dbi: float = 0.0
    height_m: float = 1.5
    line_loss_db: float = 0.0

    def __post_init__(self) -> None:
        if self.height_m <= 0:
            raise RadioError("antenna height must be positive")
        if self.line_loss_db < 0:
            raise RadioError("line loss cannot be negative")

    def eirp_dbm(self, tx_power_dbm: float) -> float:
        """EIRP in dBm for a given transmitter output power."""
        return eirp_dbm(tx_power_dbm, self.gain_dbi, self.line_loss_db)


def eirp_dbm(tx_power_dbm: float, antenna_gain_dbi: float, line_loss_db: float = 0.0) -> float:
    """``EIRP = PT + GA − LS`` (paper §III-D), all in dB units."""
    if line_loss_db < 0:
        raise RadioError("line loss cannot be negative")
    return tx_power_dbm + antenna_gain_dbi - line_loss_db


def eirp_mw(tx_power_dbm: float, antenna_gain_dbi: float, line_loss_db: float = 0.0) -> float:
    """EIRP converted to linear milliwatts (the paper's integer unit)."""
    return dbm_to_mw(eirp_dbm(tx_power_dbm, antenna_gain_dbi, line_loss_db))
