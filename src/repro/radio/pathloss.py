"""Path-loss models.

WATCH needs two path-loss functions (§III-A):

* ``h(d)`` — expected path *gain* of secondary signals over distance ``d``
  (eq. (2), (5));
* ``h_max(d)`` — the maximum path gain over distance ``d`` (eq. (1)),
  i.e. the most favourable propagation that could carry SU interference
  into a PU receiver, used to size the exclusion distance ``d^c``.

We model path loss in dB and expose linear gains.  Implemented models:

* :class:`FreeSpaceModel` — Friis free-space loss, the optimistic bound
  used for ``h_max``;
* :class:`LogDistanceModel` — generic exponent-``γ`` model;
* :class:`TwoRayGroundModel` — two-ray ground reflection (far field);
* :class:`HataModel` — classic Okumura–Hata (urban);
* :class:`ExtendedHataModel` — the Extended Hata model (sub-urban
  correction) cited by §IV-A1 for the SDC's initialisation precompute.

All models share the :class:`PathLossModel` interface:
``loss_db(distance_m)`` and ``gain_linear(distance_m)``; frequency and
antenna heights are constructor state.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import RadioError
from repro.radio.units import db_to_linear

__all__ = [
    "PathLossModel",
    "FreeSpaceModel",
    "LogDistanceModel",
    "TwoRayGroundModel",
    "HataModel",
    "Cost231HataModel",
    "ExtendedHataModel",
]

_SPEED_OF_LIGHT = 299_792_458.0


class PathLossModel(ABC):
    """Interface shared by every propagation model."""

    #: Minimum distance (m) below which the far-field model is invalid;
    #: queries closer than this are clamped to it.
    min_distance_m: float = 1.0

    @abstractmethod
    def loss_db(self, distance_m: float) -> float:
        """Path loss in dB (positive number) at ``distance_m`` metres."""

    def gain_linear(self, distance_m: float) -> float:
        """Linear path gain ``h(d) = 10^(−loss/10)`` — always in (0, 1]."""
        return db_to_linear(-self.loss_db(distance_m))

    def _clamp(self, distance_m: float) -> float:
        if distance_m < 0:
            raise RadioError("distance must be non-negative")
        return max(distance_m, self.min_distance_m)

    def solve_distance_for_gain(
        self, target_gain: float, d_low: float = 1.0, d_high: float = 1e7
    ) -> float:
        """Invert the model: smallest ``d`` with ``gain(d) ≤ target_gain``.

        Used to solve eq. (1) for the exclusion distance ``d^c``.  Gains
        are monotone non-increasing in distance for every model here, so a
        bisection over ``[d_low, d_high]`` suffices.
        """
        if target_gain <= 0:
            raise RadioError("target gain must be positive")
        if self.gain_linear(d_low) <= target_gain:
            return d_low
        if self.gain_linear(d_high) > target_gain:
            raise RadioError("target gain unreachable within the search range")
        for _ in range(200):
            mid = math.sqrt(d_low * d_high)
            if self.gain_linear(mid) > target_gain:
                d_low = mid
            else:
                d_high = mid
            if d_high / d_low < 1.0 + 1e-12:
                break
        return d_high


class FreeSpaceModel(PathLossModel):
    """Friis free-space path loss.

    ``L(d) = 20·log10(4πd/λ)``.  This is the most optimistic propagation
    and therefore the natural ``h_max`` when sizing exclusion zones.
    """

    def __init__(self, frequency_hz: float) -> None:
        if frequency_hz <= 0:
            raise RadioError("frequency must be positive")
        self.frequency_hz = frequency_hz
        self._wavelength_m = _SPEED_OF_LIGHT / frequency_hz

    def loss_db(self, distance_m: float) -> float:
        d = self._clamp(distance_m)
        return 20.0 * math.log10(4.0 * math.pi * d / self._wavelength_m)


class LogDistanceModel(PathLossModel):
    """Log-distance model: free-space up to ``d0`` then exponent ``gamma``.

    ``L(d) = L_fs(d0) + 10·γ·log10(d/d0)``.
    """

    def __init__(self, frequency_hz: float, exponent: float = 3.0, d0_m: float = 1.0) -> None:
        if exponent < 1.0:
            raise RadioError("path-loss exponent below 1 is unphysical")
        if d0_m <= 0:
            raise RadioError("reference distance must be positive")
        self.exponent = exponent
        self.d0_m = d0_m
        self._free_space = FreeSpaceModel(frequency_hz)
        self._l0_db = self._free_space.loss_db(d0_m)

    def loss_db(self, distance_m: float) -> float:
        d = self._clamp(distance_m)
        if d <= self.d0_m:
            return self._free_space.loss_db(d)
        return self._l0_db + 10.0 * self.exponent * math.log10(d / self.d0_m)


class TwoRayGroundModel(PathLossModel):
    """Two-ray ground-reflection model (far-field approximation).

    ``L(d) = 40·log10(d) − 20·log10(h_t·h_r)`` beyond the crossover
    distance; free space before it.
    """

    def __init__(self, frequency_hz: float, tx_height_m: float, rx_height_m: float) -> None:
        if tx_height_m <= 0 or rx_height_m <= 0:
            raise RadioError("antenna heights must be positive")
        self.tx_height_m = tx_height_m
        self.rx_height_m = rx_height_m
        self._free_space = FreeSpaceModel(frequency_hz)
        wavelength = _SPEED_OF_LIGHT / frequency_hz
        self.crossover_m = 4.0 * math.pi * tx_height_m * rx_height_m / wavelength

    def loss_db(self, distance_m: float) -> float:
        d = self._clamp(distance_m)
        if d < self.crossover_m:
            return self._free_space.loss_db(d)
        return 40.0 * math.log10(d) - 20.0 * math.log10(
            self.tx_height_m * self.rx_height_m
        )


class HataModel(PathLossModel):
    """Okumura–Hata model for urban macro cells (150–1500 MHz).

    ``L = 69.55 + 26.16·log10(f) − 13.82·log10(h_b) − a(h_m)
    + (44.9 − 6.55·log10(h_b))·log10(d_km)``
    with the small/medium-city mobile-antenna correction ``a(h_m)``.
    """

    min_distance_m = 10.0

    def __init__(
        self,
        frequency_hz: float,
        base_height_m: float = 30.0,
        mobile_height_m: float = 1.5,
    ) -> None:
        f_mhz = frequency_hz / 1e6
        if not 100.0 <= f_mhz <= 2000.0:
            raise RadioError(f"Hata model is calibrated for 100-2000 MHz, got {f_mhz} MHz")
        if not 1.0 <= base_height_m <= 300.0:
            raise RadioError("base-station height must be in 1-300 m")
        if not 0.5 <= mobile_height_m <= 20.0:
            raise RadioError("mobile height must be in 0.5-20 m")
        self.frequency_mhz = f_mhz
        self.base_height_m = base_height_m
        self.mobile_height_m = mobile_height_m

    def _mobile_correction_db(self) -> float:
        f = self.frequency_mhz
        h = self.mobile_height_m
        return (1.1 * math.log10(f) - 0.7) * h - (1.56 * math.log10(f) - 0.8)

    def loss_db(self, distance_m: float) -> float:
        d_km = self._clamp(distance_m) / 1000.0
        d_km = max(d_km, 0.01)
        f = self.frequency_mhz
        hb = self.base_height_m
        return (
            69.55
            + 26.16 * math.log10(f)
            - 13.82 * math.log10(hb)
            - self._mobile_correction_db()
            + (44.9 - 6.55 * math.log10(hb)) * math.log10(d_km)
        )


class Cost231HataModel(HataModel):
    """COST-231 extension of Hata for 1500-2000 MHz.

    ``L = 46.3 + 33.9·log10(f) − 13.82·log10(h_b) − a(h_m)
    + (44.9 − 6.55·log10(h_b))·log10(d_km) + C_m``
    with ``C_m = 0`` dB for medium cities/suburbs and 3 dB for
    metropolitan centres.  Used for links near the 2.4 GHz ISM band
    (formally specified to 2 GHz; we allow up to 2.5 GHz with the usual
    engineering caveat) such as the §VI-B WiFi testbed.
    """

    def __init__(
        self,
        frequency_hz: float,
        base_height_m: float = 30.0,
        mobile_height_m: float = 1.5,
        metropolitan: bool = False,
    ) -> None:
        f_mhz = frequency_hz / 1e6
        if not 1500.0 <= f_mhz <= 2500.0:
            raise RadioError(
                f"COST-231 Hata is specified for 1500-2000 MHz "
                f"(accepted to 2500), got {f_mhz} MHz"
            )
        # Bypass HataModel's 100-2000 MHz check; share its corrections.
        self.frequency_mhz = f_mhz
        if not 1.0 <= base_height_m <= 300.0:
            raise RadioError("base-station height must be in 1-300 m")
        if not 0.5 <= mobile_height_m <= 20.0:
            raise RadioError("mobile height must be in 0.5-20 m")
        self.base_height_m = base_height_m
        self.mobile_height_m = mobile_height_m
        self.metropolitan = metropolitan

    def loss_db(self, distance_m: float) -> float:
        d_km = max(self._clamp(distance_m) / 1000.0, 0.01)
        f = self.frequency_mhz
        hb = self.base_height_m
        c_m = 3.0 if self.metropolitan else 0.0
        return (
            46.3
            + 33.9 * math.log10(f)
            - 13.82 * math.log10(hb)
            - self._mobile_correction_db()
            + (44.9 - 6.55 * math.log10(hb)) * math.log10(d_km)
            + c_m
        )


class ExtendedHataModel(HataModel):
    """Extended Hata model with environment corrections.

    §IV-A1 cites "the Extended Hata sub-urban model" (CEPT SE21/SEAMCAT
    extension of Okumura–Hata) for the SDC's precomputation of maximum SU
    EIRP per block.  Relative to urban Hata:

    * ``suburban``: ``L −= 2·(log10(f/28))² + 5.4``
    * ``rural`` (open): ``L −= 4.78·(log10 f)² − 18.33·log10 f + 40.94``
    * ``urban``: no correction (reduces to :class:`HataModel`).
    """

    ENVIRONMENTS = ("urban", "suburban", "rural")

    def __init__(
        self,
        frequency_hz: float,
        base_height_m: float = 30.0,
        mobile_height_m: float = 1.5,
        environment: str = "suburban",
    ) -> None:
        super().__init__(frequency_hz, base_height_m, mobile_height_m)
        if environment not in self.ENVIRONMENTS:
            raise RadioError(f"unknown environment {environment!r}")
        self.environment = environment

    def _environment_correction_db(self) -> float:
        f = self.frequency_mhz
        if self.environment == "suburban":
            return 2.0 * math.log10(f / 28.0) ** 2 + 5.4
        if self.environment == "rural":
            return 4.78 * math.log10(f) ** 2 - 18.33 * math.log10(f) + 40.94
        return 0.0

    def loss_db(self, distance_m: float) -> float:
        return super().loss_db(distance_m) - self._environment_correction_db()
