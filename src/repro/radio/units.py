"""Power and ratio unit conversions.

The WATCH equations mix linear power (mW) with logarithmic quantities
(dB, dBm).  Getting the conversions wrong flips interference decisions,
so they live in one audited module:

* dBm ↔ mW:      ``P_dBm = 10·log10(P_mW)``
* dB  ↔ linear:  ``X_dB  = 10·log10(x)``
* watts helpers for transmitter-level quantities.
"""

from __future__ import annotations

import math

__all__ = [
    "dbm_to_mw",
    "mw_to_dbm",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "NOISE_FLOOR_DBM_PER_HZ",
    "thermal_noise_dbm",
]

#: Thermal noise density at 290 K: −174 dBm/Hz.
NOISE_FLOOR_DBM_PER_HZ = -174.0


def dbm_to_mw(power_dbm: float) -> float:
    """Convert a power in dBm to milliwatts."""
    return 10.0 ** (power_dbm / 10.0)


def mw_to_dbm(power_mw: float) -> float:
    """Convert a power in milliwatts to dBm; requires ``power_mw > 0``."""
    if power_mw <= 0:
        raise ValueError("power must be positive to express in dBm")
    return 10.0 * math.log10(power_mw)


def db_to_linear(value_db: float) -> float:
    """Convert a ratio in dB to its linear value."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a positive linear ratio to dB."""
    if value <= 0:
        raise ValueError("ratio must be positive to express in dB")
    return 10.0 * math.log10(value)


def dbm_to_watts(power_dbm: float) -> float:
    """Convert dBm to watts."""
    return dbm_to_mw(power_dbm) / 1000.0


def watts_to_dbm(power_w: float) -> float:
    """Convert watts to dBm."""
    return mw_to_dbm(power_w * 1000.0)


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise power over ``bandwidth_hz`` with a receiver noise figure."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    return NOISE_FLOOR_DBM_PER_HZ + 10.0 * math.log10(bandwidth_hz) + noise_figure_db
