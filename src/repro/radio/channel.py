"""TV and WiFi channel plans.

Two channel maps appear in the paper:

* the UHF TV band the protocol allocates (§I; US channels 14–51,
  6 MHz each, 470–698 MHz), including the physical/virtual channel
  distinction of §VI-A (PUs only notify the SDC when the *physical*
  channel changes);
* the 2.4 GHz IEEE 802.11g plan used in the real-world experiment
  (§VI-B; channel 6, centre 2.437 GHz, 22 MHz bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RadioError

__all__ = ["TvChannel", "WifiChannel", "ChannelPlan", "WIFI_CHANNEL_6"]


@dataclass(frozen=True)
class TvChannel:
    """A physical UHF TV channel."""

    number: int
    center_frequency_hz: float
    bandwidth_hz: float = 6e6

    @property
    def low_edge_hz(self) -> float:
        return self.center_frequency_hz - self.bandwidth_hz / 2.0

    @property
    def high_edge_hz(self) -> float:
        return self.center_frequency_hz + self.bandwidth_hz / 2.0


@dataclass(frozen=True)
class WifiChannel:
    """An IEEE 802.11 2.4 GHz channel."""

    number: int
    center_frequency_hz: float
    bandwidth_hz: float = 22e6


#: §VI-B: "We choose channel 6 (Center frequency 2.437GHz, bandwidth 22MHz)".
WIFI_CHANNEL_6 = WifiChannel(number=6, center_frequency_hz=2.437e9)


def us_wifi_channel(number: int) -> WifiChannel:
    """US 2.4 GHz plan: channels 1-11, 5 MHz spacing from 2.412 GHz."""
    if not 1 <= number <= 11:
        raise RadioError("US 2.4 GHz WiFi channels are 1-11")
    return WifiChannel(number=number, center_frequency_hz=2.412e9 + (number - 1) * 5e6)


class ChannelPlan:
    """The UHF TV channel plan the SDC allocates over.

    The paper's simulation uses ``C = 100`` channel *slots* (Table I),
    which exceeds the 38 physical US UHF channels — slots map onto
    *virtual* channels multiplexed into physical ones (§VI-A).  The plan
    therefore takes an arbitrary slot count and distributes slots
    round-robin over physical channels.
    """

    #: US post-2009 UHF TV: channels 14-51, 470 MHz lower edge, 6 MHz wide.
    FIRST_PHYSICAL = 14
    LAST_PHYSICAL = 51
    BAND_START_HZ = 470e6
    CHANNEL_WIDTH_HZ = 6e6

    def __init__(self, num_slots: int = 100) -> None:
        if num_slots < 1:
            raise RadioError("a channel plan needs at least one slot")
        self.num_slots = num_slots
        self._physical = [
            TvChannel(
                number=number,
                center_frequency_hz=self.BAND_START_HZ
                + (number - self.FIRST_PHYSICAL + 0.5) * self.CHANNEL_WIDTH_HZ,
                bandwidth_hz=self.CHANNEL_WIDTH_HZ,
            )
            for number in range(self.FIRST_PHYSICAL, self.LAST_PHYSICAL + 1)
        ]

    @property
    def physical_channels(self) -> list[TvChannel]:
        """All physical UHF channels in the plan."""
        return list(self._physical)

    def physical_for_slot(self, slot: int) -> TvChannel:
        """Map a virtual channel slot to its physical channel (round-robin)."""
        if not 0 <= slot < self.num_slots:
            raise RadioError(f"slot {slot} outside [0, {self.num_slots})")
        return self._physical[slot % len(self._physical)]

    def frequency_for_slot(self, slot: int) -> float:
        """Centre frequency (Hz) of the physical channel carrying ``slot``."""
        return self.physical_for_slot(slot).center_frequency_hz

    def same_physical(self, slot_a: int, slot_b: int) -> bool:
        """True when two virtual slots share a physical channel.

        §VI-A: a PU switching between virtual channels on the same
        physical channel does *not* need to notify the SDC.
        """
        return (
            self.physical_for_slot(slot_a).number
            == self.physical_for_slot(slot_b).number
        )
