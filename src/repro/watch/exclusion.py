"""Exclusion-distance computation (eq. (1)).

Whenever a TV receiver becomes active on channel ``c``, WATCH computes
the distance ``d^c`` within which SU EIRPs must be re-examined:

.. math::

    Δ_{TV\\_SINR} + Δ_{redn} = \\frac{S^{PU}_{sv\\_min}}{S^{SU}_{max} · h_{max}(d^c)}

i.e. the distance at which even a maximum-power SU, under the most
favourable propagation ``h_max`` (free space), can no longer push the
worst-case victim below its protection threshold.  Solving for the path
gain,

.. math::

    h_{max}(d^c) = \\frac{S^{PU}_{sv\\_min}}{S^{SU}_{max} · (Δ_{TV\\_SINR} + Δ_{redn})}

and ``d^c`` is the inverse of ``h_max`` at that gain, found by bisection
(all our models are monotone in distance).
"""

from __future__ import annotations

from repro.radio.pathloss import FreeSpaceModel, PathLossModel
from repro.radio.units import dbm_to_mw
from repro.watch.params import WatchParameters

__all__ = ["exclusion_distance_m", "required_gain"]


def required_gain(params: WatchParameters) -> float:
    """The path gain ``h_max(d^c)`` that eq. (1) pins down."""
    s_min_mw = dbm_to_mw(params.min_tv_signal_dbm)
    s_max_su_mw = dbm_to_mw(params.max_su_eirp_dbm)
    return s_min_mw / (s_max_su_mw * params.sinr_plus_redn_linear)


def exclusion_distance_m(
    params: WatchParameters,
    channel_frequency_hz: float,
    hmax_model: PathLossModel | None = None,
) -> float:
    """Solve eq. (1) for ``d^c`` on the channel at ``channel_frequency_hz``.

    ``hmax_model`` defaults to free space at the channel frequency — the
    maximum path gain over a distance, as the paper's ``h_max`` denotes.
    ``d^c`` depends only on the channel (frequency), not on any private
    data, so the SDC computes it publicly.
    """
    model = hmax_model if hmax_model is not None else FreeSpaceModel(channel_frequency_hz)
    return model.solve_distance_for_gain(required_gain(params))
