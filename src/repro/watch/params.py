"""WATCH/PISA system parameters.

Collects every tunable the equations of §III-A and §IV-A use, with
defaults drawn from the paper (Table I, ATSC DTV standard values) and
documented provenance.  :class:`PaperSettings` reproduces Table I
verbatim for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.encoding import PAPER_VALUE_BITS, FixedPointEncoder
from repro.errors import ConfigurationError
from repro.radio.units import db_to_linear

__all__ = ["WatchParameters", "PaperSettings"]


@dataclass(frozen=True)
class WatchParameters:
    """Physical-layer parameters of the WATCH computation.

    Attributes
    ----------
    num_channels:
        Number of channel slots ``C`` the SDC allocates.
    tv_sinr_db:
        ``Δ_TV_SINR`` — required TV signal-to-interference ratio.  The
        ATSC DTV standard's threshold is ≈ 15 dB (§III-A cites [2]).
    redn_db:
        ``Δ_redn`` — additional margin representing aggregate interference
        from multiple SUs (eq. (1)).
    min_tv_signal_dbm:
        ``S^PU_sv_min`` — minimum required TV signal strength at a
        receiver inside the service contour (ATSC planning: −84 dBm).
    max_su_eirp_dbm:
        ``S^SU_max`` — regulatory cap on secondary EIRP (FCC TVWS: 4 W
        EIRP ≈ 36 dBm for fixed devices).
    power_decimals:
        Fixed-point scale for quantising mW power values into integers.
        12 decimals keeps received TV signal strengths (≈ 1e-6 mW) well
        above the quantisation floor while 60-bit values still cover
        multi-watt EIRPs.
    value_bits:
        Integer representation width (Table I: 60).
    """

    num_channels: int = 100
    tv_sinr_db: float = 15.0
    redn_db: float = 1.0
    min_tv_signal_dbm: float = -84.0
    max_su_eirp_dbm: float = 36.0
    power_decimals: int = 12
    value_bits: int = PAPER_VALUE_BITS

    def __post_init__(self) -> None:
        if self.num_channels < 1:
            raise ConfigurationError("need at least one channel")
        if self.power_decimals < 0:
            raise ConfigurationError("power_decimals must be non-negative")
        if self.value_bits < 8:
            raise ConfigurationError("value_bits too small")

    # -- derived quantities ----------------------------------------------------

    @property
    def sinr_plus_redn_linear(self) -> float:
        """``Δ_TV_SINR + Δ_redn`` as a linear ratio (the ``X`` of eq. (11))."""
        return db_to_linear(self.tv_sinr_db) + db_to_linear(self.redn_db)

    @property
    def sinr_plus_redn_int(self) -> int:
        """Integer form of ``X`` used for homomorphic scalar multiplication.

        Scalar multiplication needs an integer constant; the ratio is
        rounded up so the protected margin never shrinks by quantisation.
        """
        import math

        return math.ceil(self.sinr_plus_redn_linear)

    @property
    def encoder(self) -> FixedPointEncoder:
        """Shared fixed-point quantiser for mW power values."""
        return FixedPointEncoder(decimals=self.power_decimals)

    @property
    def max_quantised_value(self) -> int:
        """Largest integer the configured ``value_bits`` can hold."""
        return (1 << self.value_bits) - 1


@dataclass(frozen=True)
class PaperSettings:
    """Table I of the paper, verbatim.

    ========================================  =====
    Number of PUs                               100
    Number of blocks                            600
    Number of channels                          100
    Bit length of integer representation         60
    ========================================  =====

    plus the §VI-A crypto setting: 2048-bit Paillier modulus (112-bit
    security per NIST SP 800-57).
    """

    num_pus: int = 100
    num_blocks: int = 600
    num_channels: int = 100
    value_bits: int = 60
    paillier_bits: int = 2048

    #: Grid factorisation used for the 600 blocks (20 rows x 30 cols of
    #: 10 m blocks; the paper does not specify the aspect ratio).
    grid_rows: int = 20
    grid_cols: int = 30

    def as_table_rows(self) -> list[tuple[str, str]]:
        """Rows for rendering Table I in benchmark output."""
        return [
            ("Number of PUs", str(self.num_pus)),
            ("Number of blocks", str(self.num_blocks)),
            ("Number of channels", str(self.num_channels)),
            ("Bit length of integer representation", str(self.value_bits)),
            ("Paillier modulus bits", str(self.paillier_bits)),
        ]

    def watch_parameters(self) -> WatchParameters:
        """The :class:`WatchParameters` matching this scale."""
        return WatchParameters(num_channels=self.num_channels, value_bits=self.value_bits)
