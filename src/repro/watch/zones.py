"""Dynamic exclusion zones — WATCH's headline concept, made inspectable.

The paper's introduction contrasts two models:

* **TV white space**: exclusion zones derived from *transmitter*
  locations — secondary power is zero across the whole protected
  contour, whether or not anyone is watching;
* **WATCH**: "a dynamically computed exclusion zone characterized as
  the union of locations where secondary user transmit power must be
  reduced in order to protect *active* TV receivers."

This module computes both zones over a
:class:`~repro.watch.environment.SpectrumEnvironment` so the win can be
measured and drawn:

* the *static* zone: blocks whose precomputed cap ``E(c, b)`` falls
  below the regulatory maximum (tower coverage forces a reduction
  everywhere a receiver *could* be);
* the *dynamic* zone: blocks where a maximum-power SU would violate the
  budget of some currently *active* PU — exactly the eq. (7) test run
  for a probe SU at every block.

The spatial-reuse gain WATCH claims is the ratio of the two areas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.radio.units import dbm_to_mw
from repro.watch.entities import PUReceiver, SUTransmitter
from repro.watch.environment import SpectrumEnvironment
from repro.watch.sdc import PlaintextSDC

__all__ = ["ChannelZones", "compute_zones", "render_zone_map"]


@dataclass(frozen=True)
class ChannelZones:
    """Exclusion analysis for one channel slot."""

    channel_slot: int
    #: Blocks statically capped below the regulatory max by tower coverage.
    static_blocks: frozenset[int]
    #: Blocks where a max-power SU is denied given the ACTIVE PUs.
    dynamic_blocks: frozenset[int]
    num_blocks: int

    @property
    def static_fraction(self) -> float:
        return len(self.static_blocks) / self.num_blocks

    @property
    def dynamic_fraction(self) -> float:
        return len(self.dynamic_blocks) / self.num_blocks

    @property
    def reuse_gain(self) -> float:
        """Blocks freed by the dynamic model, as a fraction of the grid.

        Positive when the dynamic zone is smaller than the static one —
        the WATCH claim for under-watched channels.
        """
        return self.static_fraction - self.dynamic_fraction


def compute_zones(
    environment: SpectrumEnvironment,
    active_pus: list[PUReceiver],
    channel_slot: int,
    probe_power_dbm: float | None = None,
) -> ChannelZones:
    """Compute static and dynamic exclusion zones for one channel.

    ``probe_power_dbm`` is the SU power whose admissibility defines the
    dynamic zone (default: the regulatory maximum ``S^SU_max``).
    """
    env = environment
    params = env.params
    probe_power = (
        params.max_su_eirp_dbm if probe_power_dbm is None else probe_power_dbm
    )
    max_cap = params.encoder.encode(dbm_to_mw(params.max_su_eirp_dbm))
    static = frozenset(
        b for b in range(env.num_blocks)
        if env.e_matrix[channel_slot, b] < max_cap
    )
    sdc = PlaintextSDC(env)
    for pu in active_pus:
        sdc.pu_update(pu)
    dynamic = []
    for block in range(env.num_blocks):
        probe = SUTransmitter(
            su_id=f"probe-{block}", block_index=block, tx_power_dbm=probe_power
        )
        decision = sdc.process_request(probe, channels=[channel_slot])
        if not decision.granted:
            dynamic.append(block)
    return ChannelZones(
        channel_slot=channel_slot,
        static_blocks=static,
        dynamic_blocks=frozenset(dynamic),
        num_blocks=env.num_blocks,
    )


def render_zone_map(
    environment: SpectrumEnvironment,
    zones: ChannelZones,
    active_pus: list[PUReceiver] | None = None,
) -> str:
    """An ASCII map of the service area for one channel.

    Legend: ``#`` dynamic exclusion (SU denied now), ``-`` static-only
    reduction (capped but usable), ``.`` free, ``P`` an active PU on
    this channel (overrides the cell marker).
    """
    grid = environment.grid
    pu_blocks = {
        pu.block_index
        for pu in (active_pus or [])
        if pu.is_active and pu.channel_slot == zones.channel_slot
    }
    lines = []
    for row in range(grid.rows - 1, -1, -1):  # north at the top
        cells = []
        for col in range(grid.cols):
            block = grid.index_of(row, col)
            if block in pu_blocks:
                cells.append("P")
            elif block in zones.dynamic_blocks:
                cells.append("#")
            elif block in zones.static_blocks:
                cells.append("-")
            else:
                cells.append(".")
        lines.append(" ".join(cells))
    return "\n".join(lines)
