"""Multi-SU admission and the Δ_redn feedback loop (§IV-A validation).

The paper handles aggregate interference from multiple SUs with a fixed
margin ``Δ_redn`` added to the SINR requirement, and asserts that "the
feedback loop ensures that the PUs are finally protected and N becomes
stable".  This module validates that claim physically:

:class:`AdmissionSimulator` admits SUs one at a time through the (real)
WATCH decision engine, accumulates the *actual* aggregate interference
each admitted SU contributes at every PU, and checks the resulting PU
SINRs against the protection threshold.  The experiment behind
``benchmarks/bench_feedback.py`` shows both halves of the paper's claim:

* a *fixed* small margin (the deployment default Δ_redn ≈ 1 dB) protects
  against ≈1 simultaneous borderline SU; under a dense population, each
  SU passes its per-SU test yet the aggregate drives PUs below the SINR
  floor — the reason the margin must adapt;
* :class:`FeedbackController` closes the loop: widen Δ_redn, make every
  SU re-request against the tightened budget, repeat until the worst PU
  SINR clears the threshold — after which the budget matrix ``N`` stops
  changing between rounds ("N becomes stable").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.radio.units import linear_to_db
from repro.watch.entities import PUReceiver, SUTransmitter
from repro.watch.environment import SpectrumEnvironment
from repro.watch.sdc import Decision, PlaintextSDC

__all__ = ["PuProtectionState", "AdmissionOutcome", "AdmissionSimulator"]


@dataclass
class PuProtectionState:
    """Physical interference bookkeeping for one PU."""

    pu: PUReceiver
    aggregate_interference_mw: float = 0.0

    @property
    def sinr_db(self) -> float:
        """Signal-to-(secondary-)interference ratio, ignoring noise."""
        if self.aggregate_interference_mw <= 0:
            return float("inf")
        return linear_to_db(
            self.pu.signal_strength_mw / self.aggregate_interference_mw
        )


@dataclass(frozen=True)
class AdmissionOutcome:
    """Result of one SU admission attempt."""

    su_id: str
    decision: Decision
    #: Worst PU SINR (dB) after this admission step.
    worst_sinr_db: float


class AdmissionSimulator:
    """Sequential SU admission with physical interference accounting.

    Every admission decision runs through the real
    :class:`~repro.watch.sdc.PlaintextSDC`; on grant, the SU's exact
    interference contribution (EIRP × path gain) is added to each PU's
    aggregate.  ``worst_sinr_db`` then tells whether the Δ_redn margin
    actually protected the PUs against the *sum* of admitted SUs.
    """

    def __init__(self, environment: SpectrumEnvironment, pus: list[PUReceiver]) -> None:
        self.environment = environment
        self.sdc = PlaintextSDC(environment)
        self.states: dict[str, PuProtectionState] = {}
        for pu in pus:
            self.sdc.pu_update(pu)
            if pu.is_active:
                self.states[pu.receiver_id] = PuProtectionState(pu=pu)
        self.admitted: list[SUTransmitter] = []
        self.outcomes: list[AdmissionOutcome] = []

    def _interference_at(self, su: SUTransmitter, pu: PUReceiver) -> float:
        """The SU's physical interference power (mW) at a PU."""
        env = self.environment
        gain = env.su_pathloss(pu.channel_slot).gain_linear(
            env.grid.distance_m(su.block_index, pu.block_index)
        )
        return su.eirp_mw * gain

    def worst_sinr_db(self) -> float:
        """Minimum protection SINR across all active PUs."""
        if not self.states:
            return float("inf")
        return min(state.sinr_db for state in self.states.values())

    def attempt(self, su: SUTransmitter) -> AdmissionOutcome:
        """Run one admission: decide via WATCH, account physics on grant."""
        decision = self.sdc.process_request(su)
        if decision.granted:
            self.admitted.append(su)
            for state in self.states.values():
                state.aggregate_interference_mw += self._interference_at(
                    su, state.pu
                )
        outcome = AdmissionOutcome(
            su_id=su.su_id, decision=decision, worst_sinr_db=self.worst_sinr_db()
        )
        self.outcomes.append(outcome)
        return outcome

    def run(self, sus: list[SUTransmitter]) -> list[AdmissionOutcome]:
        """Admit a population sequentially; returns per-step outcomes."""
        return [self.attempt(su) for su in sus]

    @property
    def num_admitted(self) -> int:
        return len(self.admitted)

    def all_pus_protected(self, required_sinr_db: float) -> bool:
        """True when every active PU keeps at least ``required_sinr_db``."""
        return self.worst_sinr_db() >= required_sinr_db

    def budget_is_stationary(self) -> bool:
        """The budget N must not change across admissions (§IV-A:
        "the interference budgets stay the same" — Δ_redn absorbs the
        multi-SU effect instead of mutating N)."""
        import numpy as np

        before = self.sdc.budget
        # Re-derive N from scratch; identical object content expected.
        rebuilt = PlaintextSDC(self.environment)
        for state in self.states.values():
            rebuilt.pu_update(state.pu)
        after = rebuilt.budget
        return all(
            before[c, b] == after[c, b]
            for c in range(self.environment.num_channels)
            for b in range(self.environment.num_blocks)
        )


@dataclass(frozen=True)
class FeedbackReport:
    """Outcome of the adaptive Δ_redn loop."""

    iterations: int
    final_redn_db: float
    num_admitted: int
    worst_sinr_db: float
    protected: bool
    budget_stable: bool
    #: (redn_db, admitted, worst_sinr_db) per iteration, for the bench.
    trajectory: tuple[tuple[float, int, float], ...]


class FeedbackController:
    """The §IV-A feedback loop, made concrete.

    WATCH absorbs multi-SU aggregation into the margin ``Δ_redn``; when
    the deployed margin under-estimates the simultaneous-SU population,
    PUs dip below their SINR floor.  The controller closes the loop the
    way the paper sketches: observe the worst PU SINR, widen the margin,
    and re-run admission (every SU re-requests against the tightened
    budget) until all PUs are protected.  Once protected, the budget
    matrix ``N`` no longer changes between rounds — the paper's
    "N becomes stable".
    """

    def __init__(
        self,
        grid,
        towers,
        pus: list[PUReceiver],
        base_params,
        step_db: float = 3.0,
        max_iterations: int = 12,
    ) -> None:
        from dataclasses import replace

        self.grid = grid
        self.towers = towers
        self.pus = pus
        self.base_params = base_params
        self.step_db = step_db
        self.max_iterations = max_iterations
        self._replace = replace

    def _simulator(self, redn_db: float) -> AdmissionSimulator:
        params = self._replace(self.base_params, redn_db=redn_db)
        environment = SpectrumEnvironment(self.grid, params, transmitters=self.towers)
        # PU signal strengths are physical facts, independent of Δ_redn;
        # reuse the provided receivers directly.
        return AdmissionSimulator(environment, self.pus)

    def converge(self, sus: list[SUTransmitter]) -> FeedbackReport:
        """Iterate admission rounds, widening Δ_redn until protected."""
        redn_db = self.base_params.redn_db
        trajectory = []
        previous_budget = None
        budget_stable = False
        simulator = None
        for iteration in range(1, self.max_iterations + 1):
            simulator = self._simulator(redn_db)
            simulator.run(sus)
            worst = simulator.worst_sinr_db()
            trajectory.append((redn_db, simulator.num_admitted, worst))
            protected = worst >= self.base_params.tv_sinr_db
            budget = simulator.sdc.budget
            if previous_budget is not None:
                budget_stable = all(
                    budget[c, b] == previous_budget[c, b]
                    for c in range(budget.shape[0])
                    for b in range(budget.shape[1])
                )
            previous_budget = budget
            if protected:
                return FeedbackReport(
                    iterations=iteration,
                    final_redn_db=redn_db,
                    num_admitted=simulator.num_admitted,
                    worst_sinr_db=worst,
                    protected=True,
                    budget_stable=budget_stable or iteration == 1,
                    trajectory=tuple(trajectory),
                )
            redn_db += self.step_db
        return FeedbackReport(
            iterations=self.max_iterations,
            final_redn_db=redn_db - self.step_db,
            num_admitted=simulator.num_admitted if simulator else 0,
            worst_sinr_db=trajectory[-1][2],
            protected=False,
            budget_stable=budget_stable,
            trajectory=tuple(trajectory),
        )


__all__.extend(["FeedbackReport", "FeedbackController"])
