"""Deterministic scenario generation for tests, examples, and benchmarks.

Generates populations of TV towers, PUs, and SUs over a service area,
seeded for reproducibility.  The default magnitudes follow the paper's
setting (Table I: 100 PUs, 600 blocks, 100 channels) scaled down by the
caller where pure-Python crypto makes full scale impractical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.geo.grid import BlockGrid
from repro.radio.antenna import Antenna
from repro.watch.entities import PUReceiver, SUTransmitter, TVTransmitter
from repro.watch.environment import SpectrumEnvironment
from repro.watch.params import WatchParameters
from repro.watch.system import received_tv_signal_mw

__all__ = ["ScenarioConfig", "Scenario", "build_scenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs for :func:`build_scenario`.

    The defaults produce a small, fast scenario; pass
    ``ScenarioConfig.paper_scale()`` for Table I magnitudes.
    """

    grid_rows: int = 4
    grid_cols: int = 6
    block_size_m: float = 10.0
    num_channels: int = 5
    num_towers: int = 2
    num_pus: int = 3
    num_sus: int = 2
    #: 16 dBm sits near the grant/deny boundary of the default dense
    #: grid, so generated populations exercise both outcomes.
    su_tx_power_dbm: float = 16.0
    seed: int = 0

    @classmethod
    def paper_scale(cls, seed: int = 0) -> "ScenarioConfig":
        """Table I: 600 blocks (20x30), 100 channels, 100 PUs."""
        return cls(
            grid_rows=20,
            grid_cols=30,
            num_channels=100,
            num_towers=8,
            num_pus=100,
            num_sus=10,
            seed=seed,
        )

    def __post_init__(self) -> None:
        if self.num_pus > self.grid_rows * self.grid_cols:
            raise ConfigurationError("more PUs than blocks (one PU per block here)")


@dataclass
class Scenario:
    """A generated deployment: substrate plus entity populations."""

    config: ScenarioConfig
    environment: SpectrumEnvironment
    towers: list[TVTransmitter]
    pus: list[PUReceiver]
    sus: list[SUTransmitter]

    @property
    def grid(self) -> BlockGrid:
        return self.environment.grid

    @property
    def params(self) -> WatchParameters:
        return self.environment.params


def build_scenario(config: ScenarioConfig | None = None) -> Scenario:
    """Build a deterministic scenario from a config.

    * Towers sit just outside the service area (TV towers serve a city
      from its periphery) on distinct channel slots, with 100 kW-class
      EIRP.
    * Each PU occupies a distinct block (the paper assumes at most one
      PU per block for notation simplicity, §IV-A2) and tunes to a slot
      served by some tower; its mean signal strength comes from the
      coverage model.
    * SUs are placed uniformly at random with the configured power.
    """
    config = config or ScenarioConfig()
    rng = np.random.default_rng(config.seed)
    grid = BlockGrid(
        rows=config.grid_rows, cols=config.grid_cols, block_size_m=config.block_size_m
    )
    params = WatchParameters(num_channels=config.num_channels)

    towers = []
    for t in range(config.num_towers):
        angle = 2.0 * np.pi * t / max(1, config.num_towers) + rng.uniform(0, 0.3)
        # Broadcast towers serve the area from kilometres away; the
        # received TV signal then lands in the realistic -40..-25 dBm
        # range under the Extended Hata coverage model.
        radius = float(rng.uniform(5_000.0, 15_000.0))
        towers.append(
            TVTransmitter(
                transmitter_id=f"tower-{t}",
                x_m=grid.width_m / 2 + radius * float(np.cos(angle)),
                y_m=grid.height_m / 2 + radius * float(np.sin(angle)),
                channel_slot=int(rng.integers(0, config.num_channels)),
                eirp_dbm=float(rng.uniform(75.0, 85.0)),
            )
        )

    environment = SpectrumEnvironment(grid, params, transmitters=towers)

    tower_slots = sorted({tower.channel_slot for tower in towers})
    pu_blocks = rng.choice(grid.num_blocks, size=config.num_pus, replace=False)
    pus = []
    for index, block in enumerate(pu_blocks):
        slot = int(tower_slots[int(rng.integers(0, len(tower_slots)))])
        signal = received_tv_signal_mw(environment, int(block), slot)
        pus.append(
            PUReceiver(
                receiver_id=f"pu-{index}",
                block_index=int(block),
                channel_slot=slot,
                signal_strength_mw=signal,
            )
        )

    sus = [
        SUTransmitter(
            su_id=f"su-{index}",
            block_index=int(rng.integers(0, grid.num_blocks)),
            tx_power_dbm=config.su_tx_power_dbm,
            antenna=Antenna(gain_dbi=2.0, height_m=2.0 + float(rng.uniform(0, 8))),
        )
        for index in range(config.num_sus)
    ]

    return Scenario(
        config=config, environment=environment, towers=towers, pus=pus, sus=sus
    )
