"""The plaintext WATCH Spectrum Database Controller.

This is the system the paper starts from (§III-A, Figure 1a): PUs and
SUs send *raw* operation data to the SDC, which decides transmission
requests by the interference-budget test of eqs. (3)-(7).  It doubles as
the correctness oracle for PISA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ProtocolError
from repro.geo.region import PrivacyRegion
from repro.watch.entities import PUReceiver, SUTransmitter
from repro.watch.environment import SpectrumEnvironment
from repro.watch.matrices import (
    aggregate,
    budget_matrix,
    indicator_matrix,
    pu_update_matrix,
    scaled_interference_matrix,
    su_request_matrix,
    zeros_matrix,
)

__all__ = ["Decision", "PlaintextSDC"]


@dataclass(frozen=True)
class Decision:
    """Outcome of a transmission request.

    ``violations`` lists the (channel, block) cells whose interference
    budget would be exceeded — available only in the plaintext system;
    PISA by design reveals nothing beyond the single grant bit, and that
    only to the SU.
    """

    su_id: str
    granted: bool
    violations: tuple[tuple[int, int], ...] = ()

    @property
    def num_violations(self) -> int:
        return len(self.violations)


class PlaintextSDC:
    """WATCH's central controller operating on raw (plaintext) data.

    State machine:

    1. construction precomputes ``E`` via the environment (§IV-A1);
    2. :meth:`pu_update` records a PU's ``W_i`` and rebuilds the budget
       matrix ``N`` (eqs. (3)/(4) via the (9)/(10) formulation);
    3. :meth:`process_request` evaluates eqs. (5)-(7) for an SU and
       returns a :class:`Decision`.
    """

    def __init__(self, environment: SpectrumEnvironment) -> None:
        self.environment = environment
        self._pu_updates: dict[str, np.ndarray] = {}
        self._n_matrix: np.ndarray | None = None

    # -- PU update (Figure 4, plaintext domain) ---------------------------------

    def pu_update(self, pu: PUReceiver) -> None:
        """Record PU ``pu``'s current channel reception and rebuild ``N``.

        Called "every time a PU receiver is turned off or switched to
        another channel" (§IV-A2).  Re-submitting for the same receiver
        replaces its previous contribution.
        """
        env = self.environment
        self._pu_updates[pu.receiver_id] = pu_update_matrix(
            pu, env.e_matrix, env.params
        )
        self._rebuild_budget()

    def _rebuild_budget(self) -> None:
        env = self.environment
        if self._pu_updates:
            w_sum = aggregate(self._pu_updates.values())
        else:
            w_sum = zeros_matrix(env.num_channels, env.num_blocks)
        self._n_matrix = budget_matrix(w_sum, env.e_matrix)

    @property
    def budget(self) -> np.ndarray:
        """The current interference-budget matrix ``N``."""
        if self._n_matrix is None:
            self._rebuild_budget()
        return self._n_matrix

    @property
    def num_active_pus(self) -> int:
        """PUs whose last update carried a non-zero matrix."""
        return sum(
            1
            for matrix in self._pu_updates.values()
            if any(value != 0 for value in matrix.flat)
        )

    # -- SU request (Figure 5, plaintext domain) -----------------------------------

    def build_request(
        self,
        su: SUTransmitter,
        region: PrivacyRegion | None = None,
        channels: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Client-side eq. (5): the ``F_j`` matrix an SU would submit."""
        env = self.environment
        return su_request_matrix(
            su,
            env.grid,
            env.params,
            pathloss_for_channel=lambda c: env.su_pathloss_for(su, c),
            exclusion_distance_for_channel=env.exclusion_distance,
            region=region,
            channels=channels,
        )

    def decide(self, su_id: str, f_matrix: np.ndarray) -> Decision:
        """Server-side eqs. (6)-(7): decide a prepared request matrix."""
        env = self.environment
        if f_matrix.shape != (env.num_channels, env.num_blocks):
            raise ProtocolError("request matrix shape does not match the area")
        r_matrix = scaled_interference_matrix(f_matrix, env.params)
        i_matrix = indicator_matrix(self.budget, r_matrix)
        violations = tuple(
            (c, b)
            for c in range(env.num_channels)
            for b in range(env.num_blocks)
            if i_matrix[c, b] <= 0
        )
        return Decision(su_id=su_id, granted=not violations, violations=violations)

    def process_request(
        self,
        su: SUTransmitter,
        region: PrivacyRegion | None = None,
        channels: Sequence[int] | None = None,
    ) -> Decision:
        """End-to-end plaintext request: build eq. (5) then decide."""
        return self.decide(su.su_id, self.build_request(su, region=region, channels=channels))
