"""Plaintext WATCH matrices (eqs. (3)-(7) and the §IV-B W-variant).

All protocol state is a ``C × B`` integer matrix (channels × blocks).
Values are quantised mW fixed-point integers (see
:class:`repro.watch.params.WatchParameters.encoder`), held in numpy
``object`` arrays so entries are exact Python big-ints — 60-bit values
multiplied by the SINR constant would overflow ``int64``.

Matrix glossary (paper notation):

========  ==========================================================
``T_i``   PU *i*'s private input: mean TV signal strength at its
          (channel, block), zero elsewhere.
``W_i``   The §IV-B variant ``T_i − E`` at the PU's cell, zero
          elsewhere — this is what the PU actually submits, so the
          SDC can build N without secure comparisons.
``E``     Max SU EIRP per (channel, block), precomputed publicly.
``N``     Interference budget: ``Σ W_i + E``  (= T where a PU is
          present, = E elsewhere) — eq. (4) via eqs. (9)/(10).
``F_j``   SU *j*'s request: ``EIRP · h(d_{i,j})`` per (channel,
          block) within the exclusion distance — eq. (5).
``R_j``   ``F_j · (Δ_SINR + Δ_redn)`` — eq. (6).
``I_j``   ``N − R_j`` — eq. (7); grant iff all entries > 0.
========  ==========================================================
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, GridError
from repro.geo.grid import BlockGrid
from repro.geo.region import PrivacyRegion
from repro.radio.pathloss import PathLossModel
from repro.radio.units import dbm_to_mw
from repro.watch.entities import PUReceiver, SUTransmitter, TVTransmitter
from repro.watch.params import WatchParameters

__all__ = [
    "zeros_matrix",
    "pu_signal_matrix",
    "pu_update_matrix",
    "aggregate",
    "budget_matrix",
    "su_request_matrix",
    "scaled_interference_matrix",
    "indicator_matrix",
    "initialize_e_matrix",
    "all_positive",
]


def zeros_matrix(num_channels: int, num_blocks: int) -> np.ndarray:
    """A ``C × B`` matrix of exact integer zeros."""
    matrix = np.empty((num_channels, num_blocks), dtype=object)
    matrix[:] = 0
    return matrix


def _check_shape(matrix: np.ndarray, params: WatchParameters, num_blocks: int) -> None:
    expected = (params.num_channels, num_blocks)
    if matrix.shape != expected:
        raise ConfigurationError(f"matrix shape {matrix.shape} != expected {expected}")


# -- PU side -------------------------------------------------------------------


def pu_signal_matrix(
    pu: PUReceiver, params: WatchParameters, num_blocks: int
) -> np.ndarray:
    """``T_i``: the PU's quantised signal strength at its (channel, block)."""
    if pu.block_index >= num_blocks:
        raise GridError("PU block outside the service area")
    matrix = zeros_matrix(params.num_channels, num_blocks)
    if pu.is_active:
        if pu.channel_slot >= params.num_channels:
            raise ConfigurationError("PU channel outside the channel plan")
        quantised = params.encoder.encode(pu.signal_strength_mw)
        if quantised > params.max_quantised_value:
            raise ConfigurationError("PU signal exceeds the integer representation")
        matrix[pu.channel_slot, pu.block_index] = quantised
    return matrix


def pu_update_matrix(
    pu: PUReceiver, e_matrix: np.ndarray, params: WatchParameters
) -> np.ndarray:
    """``W_i = T_i − E`` at the PU's cell, zero elsewhere (§IV-B, eq. (9) input).

    Submitting ``W`` instead of ``T`` is the paper's trick for building
    the budget matrix without a secure equality test on ``T'(c,b) = 0``.
    An inactive PU submits an all-zero matrix (its previous contribution
    is superseded because the SDC re-aggregates from scratch).
    """
    num_blocks = e_matrix.shape[1]
    matrix = zeros_matrix(params.num_channels, num_blocks)
    if pu.is_active:
        t = pu_signal_matrix(pu, params, num_blocks)
        c, b = pu.channel_slot, pu.block_index
        matrix[c, b] = t[c, b] - e_matrix[c, b]
    return matrix


def aggregate(matrices: Iterable[np.ndarray]) -> np.ndarray:
    """Entry-wise sum of matrices — eq. (3)/(9)'s Σ over all PUs."""
    iterator = iter(matrices)
    try:
        total = next(iterator).copy()
    except StopIteration:
        raise ConfigurationError("aggregate needs at least one matrix") from None
    for matrix in iterator:
        total = total + matrix
    return total


def budget_matrix(w_sum: np.ndarray, e_matrix: np.ndarray) -> np.ndarray:
    """``N = Σ W_i + E`` — eq. (10), realising eq. (4).

    Where a PU receives channel ``c`` in block ``b``, ``W`` cancels the
    ``E`` term and the budget is the TV signal strength ``T'(c,b)``;
    elsewhere the budget is the precomputed max SU EIRP ``E(c,b)``.
    """
    if w_sum.shape != e_matrix.shape:
        raise ConfigurationError("W and E shapes differ")
    return w_sum + e_matrix


# -- SU side --------------------------------------------------------------------


def su_request_matrix(
    su: SUTransmitter,
    grid: BlockGrid,
    params: WatchParameters,
    pathloss_for_channel: Callable[[int], PathLossModel],
    exclusion_distance_for_channel: Callable[[int], float],
    region: PrivacyRegion | None = None,
    channels: Sequence[int] | None = None,
) -> np.ndarray:
    """``F_j(c, i) = S^SU_{c,j} · h(d^c_{i,j})`` — eq. (5).

    ``F`` holds the SU's interference (quantised mW) at every block ``i``
    within the exclusion distance ``d^c`` of the SU's block; entries
    beyond ``d^c``, outside the disclosed ``region``, or on channels the
    SU is not requesting are zero.

    Parameters
    ----------
    pathloss_for_channel:
        Maps a channel slot to the secondary-signal path-loss model
        ``h(·)`` at that channel's frequency.
    exclusion_distance_for_channel:
        Maps a channel slot to ``d^c`` from eq. (1).
    region:
        The disclosed privacy region; ``None`` means full privacy (all
        blocks).  The matrix keeps full ``B`` width — the region only
        limits which entries are non-zero here; the PISA layer shrinks
        the transmitted matrix itself.
    channels:
        Channel slots the SU requests; default all.
    """
    if su.block_index >= grid.num_blocks:
        raise GridError("SU block outside the service area")
    matrix = zeros_matrix(params.num_channels, grid.num_blocks)
    eirp_quantised = params.encoder.encode(su.eirp_mw)
    if eirp_quantised > params.max_quantised_value:
        raise ConfigurationError("SU EIRP exceeds the integer representation")
    requested = range(params.num_channels) if channels is None else channels
    eirp_mw = su.eirp_mw
    for c in requested:
        if not 0 <= c < params.num_channels:
            raise ConfigurationError(f"channel slot {c} outside the plan")
        model = pathloss_for_channel(c)
        d_c = exclusion_distance_for_channel(c)
        for i in grid.blocks_within(su.block_index, d_c):
            if region is not None and i not in region:
                continue
            gain = model.gain_linear(grid.distance_m(su.block_index, i))
            matrix[c, i] = params.encoder.encode(eirp_mw * gain)
    return matrix


def scaled_interference_matrix(f_matrix: np.ndarray, params: WatchParameters) -> np.ndarray:
    """``R_j = F_j · (Δ_TV_SINR + Δ_redn)`` — eq. (6), integer scalar."""
    return f_matrix * params.sinr_plus_redn_int


def indicator_matrix(n_matrix: np.ndarray, r_matrix: np.ndarray) -> np.ndarray:
    """``I_j = N − R_j`` — eq. (7)."""
    if n_matrix.shape != r_matrix.shape:
        raise ConfigurationError("N and R shapes differ")
    return n_matrix - r_matrix


def all_positive(i_matrix: np.ndarray) -> bool:
    """Grant criterion: every entry of ``I`` strictly positive."""
    return bool(all(value > 0 for value in i_matrix.flat))


# -- initialisation ---------------------------------------------------------------


def initialize_e_matrix(
    grid: BlockGrid,
    transmitters: Sequence[TVTransmitter],
    params: WatchParameters,
    tv_pathloss_for_channel: Callable[[int], PathLossModel],
    su_pathloss_for_channel: Callable[[int], PathLossModel],
    channel_of_slot: Callable[[int], int] | None = None,
) -> np.ndarray:
    """Precompute ``E(c, b)``: max SU EIRP per block and channel (§IV-A1).

    Public computation using public data only.  For every channel slot
    and block, a *hypothetical* TV receiver co-located with the block is
    assumed wherever the strongest tower on that slot's physical channel
    still delivers at least the protection threshold ``S^PU_sv_min``.
    Inside such coverage, eq. (2) caps the SU EIRP at

    ``E = S_tv(c, b) / ((Δ_SINR + Δ_redn) · h(d_block))``

    with ``d_block`` one block size (nearest distinct victim site);
    outside all coverage, the cap is the regulatory ``S^SU_max``.

    ``channel_of_slot`` maps virtual slots to a physical channel id so
    slots sharing a physical channel share tower coverage; identity by
    default.
    """
    e_matrix = zeros_matrix(params.num_channels, grid.num_blocks)
    encoder = params.encoder
    s_max_mw = dbm_to_mw(params.max_su_eirp_dbm)
    s_min_mw = dbm_to_mw(params.min_tv_signal_dbm)
    x_linear = params.sinr_plus_redn_linear
    slot_to_physical = channel_of_slot if channel_of_slot is not None else (lambda s: s)

    towers_by_physical: dict[int, list[TVTransmitter]] = {}
    for tower in transmitters:
        towers_by_physical.setdefault(slot_to_physical(tower.channel_slot), []).append(tower)

    max_quantised = encoder.encode(s_max_mw)
    for c in range(params.num_channels):
        physical = slot_to_physical(c)
        towers = towers_by_physical.get(physical, [])
        tv_model = tv_pathloss_for_channel(c)
        su_model = su_pathloss_for_channel(c)
        victim_gain = su_model.gain_linear(grid.block_size_m)
        for block in grid.blocks():
            strongest_mw = 0.0
            for tower in towers:
                distance = math.hypot(
                    tower.x_m - block.center_x_m, tower.y_m - block.center_y_m
                )
                received = dbm_to_mw(tower.eirp_dbm) * tv_model.gain_linear(distance)
                strongest_mw = max(strongest_mw, received)
            if strongest_mw >= s_min_mw:
                cap_mw = min(s_max_mw, strongest_mw / (x_linear * victim_gain))
                quantised = max(1, encoder.encode(cap_mw))
            else:
                quantised = max(1, max_quantised)
            e_matrix[c, block.index] = min(quantised, params.max_quantised_value)
    return e_matrix
