"""Aggregate spectrum-capacity accounting: TVWS vs WATCH.

The paper's introduction motivates WATCH with under-utilisation: "the
number of viewers watching TV via UHF is dwarfed ... vast regions in
the range of TV transmitters having no active TV receivers on multiple
channels even at peak TV viewing times."  The WATCH paper's headline is
the resulting capacity multiple.

This module aggregates the per-channel exclusion-zone analysis of
:mod:`repro.watch.zones` into service-area-wide numbers:

* **TVWS model** — a (channel, block) cell is usable only when the
  channel is white space at that block (no tower coverage at all);
* **WATCH model** — a cell is usable whenever a probe SU would be
  *granted* there given the currently active receivers.

``capacity_report`` returns both usable-cell fractions and their ratio
— the spectrum-reuse multiple — as a function of how many receivers are
actually watching.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.watch.entities import PUReceiver
from repro.watch.environment import SpectrumEnvironment
from repro.watch.zones import ChannelZones, compute_zones

__all__ = ["CapacityReport", "capacity_report"]


@dataclass(frozen=True)
class CapacityReport:
    """Usable (channel, block) cells under each sharing model."""

    total_cells: int
    #: Cells usable under the static TVWS rule (channel unused at block).
    tvws_usable: int
    #: Cells usable under WATCH given the active receiver population.
    watch_usable: int
    active_pus: int
    per_channel: tuple[ChannelZones, ...]

    @property
    def tvws_fraction(self) -> float:
        return self.tvws_usable / self.total_cells

    @property
    def watch_fraction(self) -> float:
        return self.watch_usable / self.total_cells

    @property
    def reuse_multiple(self) -> float:
        """WATCH capacity as a multiple of TVWS capacity.

        Infinite when TVWS offers nothing (every channel covered) while
        WATCH still admits — the paper's strongest case.
        """
        if self.tvws_usable == 0:
            return float("inf") if self.watch_usable > 0 else 1.0
        return self.watch_usable / self.tvws_usable

    def as_table_rows(self) -> list[tuple[str, str]]:
        multiple = (
            "∞" if self.reuse_multiple == float("inf")
            else f"{self.reuse_multiple:.1f}x"
        )
        return [
            ("service-area cells (C × B)", str(self.total_cells)),
            ("active TV receivers", str(self.active_pus)),
            ("usable under TVWS (idle channels only)",
             f"{self.tvws_usable} ({self.tvws_fraction:.0%})"),
            ("usable under WATCH (active receivers only)",
             f"{self.watch_usable} ({self.watch_fraction:.0%})"),
            ("spectrum-reuse multiple", multiple),
        ]


def capacity_report(
    environment: SpectrumEnvironment,
    active_pus: list[PUReceiver],
    probe_power_dbm: float,
) -> CapacityReport:
    """Sweep every channel and aggregate both models' usable cells.

    ``probe_power_dbm`` defines "usable": the power a representative SU
    wants to transmit at.
    """
    env = environment
    per_channel = []
    tvws_usable = 0
    watch_usable = 0
    for channel in range(env.num_channels):
        pus_on_channel = [
            pu for pu in active_pus
            if pu.is_active and pu.channel_slot == channel
        ]
        zones = compute_zones(
            env, pus_on_channel, channel, probe_power_dbm=probe_power_dbm
        )
        per_channel.append(zones)
        # TVWS: the whole channel is off limits wherever towers cover it;
        # "white space" cells are exactly those without a static cap.
        tvws_usable += env.num_blocks - len(zones.static_blocks)
        watch_usable += env.num_blocks - len(zones.dynamic_blocks)
    return CapacityReport(
        total_cells=env.num_channels * env.num_blocks,
        tvws_usable=tvws_usable,
        watch_usable=watch_usable,
        active_pus=sum(1 for pu in active_pus if pu.is_active),
        per_channel=tuple(per_channel),
    )
