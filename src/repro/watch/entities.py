"""WATCH entities: TV transmitters, PU receivers, SU transmitters.

§III-A/§III-D define three physical roles besides the SDC:

* **TV transmitter** — public knowledge (power, location, channel);
* **PU receiver** — an *active TV receiver*; its location is fixed and
  registered (public), but the channel it currently receives is private;
* **SU transmitter** — a secondary WiFi device; its EIRP parameters
  (PT, GA, LS) and location are private.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.radio.antenna import Antenna, eirp_mw

__all__ = ["TVTransmitter", "PUReceiver", "SUTransmitter"]


@dataclass(frozen=True)
class TVTransmitter:
    """A primary TV broadcast tower (public data).

    Attributes
    ----------
    transmitter_id:
        Stable identifier.
    x_m, y_m:
        Metric location (may lie outside the SDC service area).
    channel_slot:
        The channel slot the tower broadcasts on.
    eirp_dbm:
        Tower EIRP; US full-power UHF stations reach ~1 MW ERP (90 dBm),
        the default models a moderate 100 kW station.
    antenna_height_m:
        Radiation-centre height above ground.
    """

    transmitter_id: str
    x_m: float
    y_m: float
    channel_slot: int
    eirp_dbm: float = 80.0
    antenna_height_m: float = 200.0

    def __post_init__(self) -> None:
        if self.channel_slot < 0:
            raise ConfigurationError("channel_slot must be non-negative")
        if self.antenna_height_m <= 0:
            raise ConfigurationError("antenna height must be positive")


@dataclass(frozen=True)
class PUReceiver:
    """An active TV receiver (primary user).

    The *location* (block index) is public and registered (§III-D); the
    *channel being received* and the mean received signal strength are
    private inputs to the protocol.  ``channel_slot is None`` models a
    receiver that is switched off.
    """

    receiver_id: str
    block_index: int
    channel_slot: int | None
    #: Mean TV signal strength S^PU_{c,i} at this receiver in mW.  In
    #: deployments this is computed with the L-R irregular terrain model
    #: (§III-A); tests may set it directly.
    signal_strength_mw: float = 0.0

    def __post_init__(self) -> None:
        if self.block_index < 0:
            raise ConfigurationError("block_index must be non-negative")
        if self.channel_slot is not None and self.channel_slot < 0:
            raise ConfigurationError("channel_slot must be non-negative")
        if self.is_active and self.signal_strength_mw <= 0:
            raise ConfigurationError("an active PU needs a positive signal strength")

    @property
    def is_active(self) -> bool:
        """True when the receiver is on and tuned to a channel."""
        return self.channel_slot is not None

    def switched_to(self, channel_slot: int | None, signal_strength_mw: float = 0.0) -> "PUReceiver":
        """A copy of this receiver tuned to another channel (or off)."""
        return replace(
            self, channel_slot=channel_slot, signal_strength_mw=signal_strength_mw
        )


@dataclass(frozen=True)
class SUTransmitter:
    """A secondary WiFi transmitter (private operation data).

    EIRP follows §III-D: ``EIRP = PT + GA − LS`` with transmitter power
    ``PT`` (dBm), antenna gain ``GA`` (dBi), and line loss ``LS`` (dB).
    """

    su_id: str
    block_index: int
    tx_power_dbm: float = 20.0
    antenna: Antenna = field(default_factory=Antenna)

    def __post_init__(self) -> None:
        if self.block_index < 0:
            raise ConfigurationError("block_index must be non-negative")

    @property
    def eirp_dbm(self) -> float:
        """EIRP in dBm."""
        return self.antenna.eirp_dbm(self.tx_power_dbm)

    @property
    def eirp_mw(self) -> float:
        """EIRP in linear milliwatts (the protocol's integer unit)."""
        return eirp_mw(self.tx_power_dbm, self.antenna.gain_dbi, self.antenna.line_loss_db)

    def with_power(self, tx_power_dbm: float) -> "SUTransmitter":
        """A copy transmitting at a different power."""
        return replace(self, tx_power_dbm=tx_power_dbm)
