"""The shared public substrate of a WATCH/PISA deployment.

Everything in this module is *public data* in the paper's sense
(§III-D): the block grid, the channel plan, propagation models, the
exclusion distances ``d^c`` (eq. (1)), and the precomputed max-SU-EIRP
matrix ``E`` (§IV-A1).  Both the plaintext WATCH SDC and the
privacy-preserving PISA servers operate over one
:class:`SpectrumEnvironment`, which is what makes the two systems
decision-equivalent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.geo.grid import BlockGrid
from repro.radio.channel import ChannelPlan
from repro.radio.pathloss import ExtendedHataModel, FreeSpaceModel, LogDistanceModel, PathLossModel
from repro.watch.entities import TVTransmitter
from repro.watch.exclusion import exclusion_distance_m
from repro.watch.matrices import initialize_e_matrix
from repro.watch.params import WatchParameters

__all__ = ["SpectrumEnvironment"]


class SpectrumEnvironment:
    """Public state shared by every party of the protocol.

    Parameters
    ----------
    grid:
        The service-area block grid (``B`` blocks).
    params:
        Physical-layer parameters (``C`` channels, thresholds, encoder).
    transmitters:
        Public TV tower registry used for the ``E`` precompute.
    su_pathloss_exponent:
        Path-loss exponent of the secondary-signal model ``h(·)``
        (log-distance; 3.0 models suburban clutter).
    tv_environment:
        Extended-Hata environment for tower coverage ("suburban" per the
        paper's §IV-A1 citation).
    terrain:
        Optional :class:`~repro.radio.terrain.SyntheticTerrain` tile.
        When given, tower coverage (and therefore the ``E`` precompute
        and PU signal strengths) uses the simplified Longley–Rice
        irregular-terrain model over it — the §III-A "L-R irregular
        terrain model" path — instead of distance-only Extended Hata.
    """

    def __init__(
        self,
        grid: BlockGrid,
        params: WatchParameters,
        transmitters: Sequence[TVTransmitter] = (),
        su_pathloss_exponent: float = 3.0,
        tv_environment: str = "suburban",
        height_aware_su_model: bool = False,
        terrain=None,
    ) -> None:
        self.grid = grid
        self.params = params
        self.transmitters = list(transmitters)
        self.plan = ChannelPlan(num_slots=params.num_channels)
        self._su_exponent = su_pathloss_exponent
        self._tv_environment = tv_environment
        self.height_aware_su_model = height_aware_su_model
        self.terrain = terrain
        self._su_models: dict[int, PathLossModel] = {}
        self._su_height_models: dict[tuple[int, float], PathLossModel] = {}
        self._tv_models: dict[int, PathLossModel] = {}
        self._hmax_models: dict[int, PathLossModel] = {}
        self._exclusion: dict[int, float] = {}
        self._e_matrix: np.ndarray | None = None

    # -- propagation models ----------------------------------------------------

    def su_pathloss(self, channel_slot: int) -> PathLossModel:
        """``h(·)``: expected path loss of secondary signals on a slot."""
        if channel_slot not in self._su_models:
            self._su_models[channel_slot] = LogDistanceModel(
                self.plan.frequency_for_slot(channel_slot), exponent=self._su_exponent
            )
        return self._su_models[channel_slot]

    def su_pathloss_for(self, su, channel_slot: int) -> PathLossModel:
        """Height-aware ``h(·)`` for a specific SU's antenna.

        §I counts the SU's antenna height among the sensitive operation
        parameters precisely because it shapes propagation: a taller
        antenna clears ground clutter and carries interference further.
        With ``height_aware_su_model=True`` the secondary-signal model
        becomes two-ray ground reflection parameterised by the SU's
        antenna height (a 10 m victim antenna); the default keeps the
        height-independent log-distance model.

        Only the SU itself evaluates this — the height never leaves the
        client; the SDC sees the resulting ``F`` entries as ciphertext.
        """
        if not self.height_aware_su_model:
            return self.su_pathloss(channel_slot)
        from repro.radio.pathloss import TwoRayGroundModel

        key = (channel_slot, round(su.antenna.height_m, 3))
        if key not in self._su_height_models:
            self._su_height_models[key] = TwoRayGroundModel(
                self.plan.frequency_for_slot(channel_slot),
                tx_height_m=su.antenna.height_m,
                rx_height_m=10.0,
            )
        return self._su_height_models[key]

    def tv_pathloss(self, channel_slot: int) -> PathLossModel:
        """Tower-coverage model for a slot's frequency.

        Extended Hata (sub-urban) by default; the simplified irregular-
        terrain model when the environment carries a terrain tile.
        """
        if channel_slot not in self._tv_models:
            frequency = self.plan.frequency_for_slot(channel_slot)
            if self.terrain is not None:
                from repro.radio.itm import IrregularTerrainModel

                self._tv_models[channel_slot] = IrregularTerrainModel(
                    frequency, self.terrain,
                    tx_height_m=200.0, rx_height_m=10.0,
                )
            else:
                self._tv_models[channel_slot] = ExtendedHataModel(
                    frequency,
                    base_height_m=200.0,
                    mobile_height_m=10.0,
                    environment=self._tv_environment,
                )
        return self._tv_models[channel_slot]

    def hmax_pathloss(self, channel_slot: int) -> PathLossModel:
        """``h_max(·)``: the most favourable propagation (free space)."""
        if channel_slot not in self._hmax_models:
            self._hmax_models[channel_slot] = FreeSpaceModel(
                self.plan.frequency_for_slot(channel_slot)
            )
        return self._hmax_models[channel_slot]

    # -- public precomputation ---------------------------------------------------

    def exclusion_distance(self, channel_slot: int) -> float:
        """``d^c`` from eq. (1); cached per slot."""
        if channel_slot not in self._exclusion:
            self._exclusion[channel_slot] = exclusion_distance_m(
                self.params,
                self.plan.frequency_for_slot(channel_slot),
                hmax_model=self.hmax_pathloss(channel_slot),
            )
        return self._exclusion[channel_slot]

    @property
    def e_matrix(self) -> np.ndarray:
        """``E``: the §IV-A1 max-SU-EIRP precompute; built lazily once."""
        if self._e_matrix is None:
            self._e_matrix = initialize_e_matrix(
                self.grid,
                self.transmitters,
                self.params,
                tv_pathloss_for_channel=self.tv_pathloss,
                su_pathloss_for_channel=self.su_pathloss,
                channel_of_slot=lambda slot: self.plan.physical_for_slot(slot).number,
            )
        return self._e_matrix

    # -- convenience ---------------------------------------------------------------

    @property
    def num_channels(self) -> int:
        return self.params.num_channels

    @property
    def num_blocks(self) -> int:
        return self.grid.num_blocks

    def __repr__(self) -> str:
        return (
            f"SpectrumEnvironment(C={self.num_channels}, B={self.num_blocks}, "
            f"towers={len(self.transmitters)})"
        )
