"""The WATCH dynamic spectrum-sharing system (plaintext baseline).

Implements Zhang & Knightly's WATCH as described in §III-A and §IV-A of
the PISA paper: the SDC precomputes per-block maximum SU EIRP, PUs update
their channel reception, and SUs request transmission permission, decided
by the interference-budget comparison of eqs. (1)-(7).

This plaintext implementation serves two roles:

1. the *baseline* the paper compares against (no privacy, raw data at
   the SDC);
2. the *correctness oracle* for PISA — the encrypted protocol must reach
   exactly the same grant/deny decisions.
"""

from repro.watch.entities import PUReceiver, SUTransmitter, TVTransmitter
from repro.watch.environment import SpectrumEnvironment
from repro.watch.exclusion import exclusion_distance_m
from repro.watch.feedback import AdmissionSimulator, FeedbackController
from repro.watch.params import PaperSettings, WatchParameters
from repro.watch.scenario import Scenario, ScenarioConfig, build_scenario
from repro.watch.sdc import Decision, PlaintextSDC
from repro.watch.system import WatchSystem
from repro.watch.zones import ChannelZones, compute_zones, render_zone_map

__all__ = [
    "PUReceiver",
    "SUTransmitter",
    "TVTransmitter",
    "SpectrumEnvironment",
    "exclusion_distance_m",
    "AdmissionSimulator",
    "FeedbackController",
    "PaperSettings",
    "WatchParameters",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "Decision",
    "PlaintextSDC",
    "WatchSystem",
    "ChannelZones",
    "compute_zones",
    "render_zone_map",
]
