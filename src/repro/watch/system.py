"""WATCH system facade.

:class:`WatchSystem` ties the public substrate
(:class:`~repro.watch.environment.SpectrumEnvironment`), the plaintext
SDC, and the PU/SU population together — the "Figure 1a" system.  It also
computes physically derived quantities such as the mean TV signal
strength a PU would report (§III-A computes it with the L-R irregular
terrain model; we use the environment's tower-coverage model).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError, RadioError
from repro.geo.region import PrivacyRegion
from repro.radio.units import dbm_to_mw
from repro.watch.entities import PUReceiver, SUTransmitter, TVTransmitter
from repro.watch.environment import SpectrumEnvironment
from repro.watch.sdc import Decision, PlaintextSDC

__all__ = ["WatchSystem", "received_tv_signal_mw"]


def received_tv_signal_mw(
    environment: SpectrumEnvironment, block_index: int, channel_slot: int
) -> float:
    """Mean TV signal strength (mW) at a block on a channel slot.

    The strongest tower broadcasting the slot's physical channel,
    attenuated by the environment's tower-coverage path-loss model.
    Returns 0.0 when no tower serves the physical channel.
    """
    env = environment
    block = env.grid.block(block_index)
    physical = env.plan.physical_for_slot(channel_slot).number
    model = env.tv_pathloss(channel_slot)
    strongest = 0.0
    for tower in env.transmitters:
        if env.plan.physical_for_slot(tower.channel_slot).number != physical:
            continue
        distance = math.hypot(tower.x_m - block.center_x_m, tower.y_m - block.center_y_m)
        received = dbm_to_mw(tower.eirp_dbm) * model.gain_linear(distance)
        strongest = max(strongest, received)
    return strongest


class WatchSystem:
    """The full plaintext WATCH deployment.

    Typical use::

        system = WatchSystem(environment)
        system.tune_pu("pu-0", block_index=12, channel_slot=3)
        decision = system.request("su-0", block_index=40, tx_power_dbm=20.0)
    """

    def __init__(self, environment: SpectrumEnvironment) -> None:
        self.environment = environment
        self.sdc = PlaintextSDC(environment)
        self._pus: dict[str, PUReceiver] = {}
        self._sus: dict[str, SUTransmitter] = {}

    # -- PU management ----------------------------------------------------------

    def tune_pu(
        self,
        receiver_id: str,
        block_index: int,
        channel_slot: int | None,
        signal_strength_mw: float | None = None,
    ) -> PUReceiver:
        """Tune (or switch off, with ``channel_slot=None``) a TV receiver.

        The mean signal strength defaults to the physical model's
        prediction from the public tower registry; it may be overridden,
        e.g. when replaying measured data.
        """
        if channel_slot is not None and signal_strength_mw is None:
            signal_strength_mw = received_tv_signal_mw(
                self.environment, block_index, channel_slot
            )
            if signal_strength_mw <= 0:
                raise RadioError(
                    f"no tower covers slot {channel_slot}; pass an explicit "
                    "signal strength to model this receiver"
                )
        pu = PUReceiver(
            receiver_id=receiver_id,
            block_index=block_index,
            channel_slot=channel_slot,
            signal_strength_mw=signal_strength_mw or 0.0,
        )
        self._pus[receiver_id] = pu
        self.sdc.pu_update(pu)
        return pu

    def switch_off_pu(self, receiver_id: str) -> PUReceiver:
        """Turn a receiver off (§III-A "Switching")."""
        if receiver_id not in self._pus:
            raise ConfigurationError(f"unknown PU {receiver_id!r}")
        return self.tune_pu(receiver_id, self._pus[receiver_id].block_index, None)

    @property
    def pus(self) -> dict[str, PUReceiver]:
        return dict(self._pus)

    # -- SU management ------------------------------------------------------------

    def register_su(self, su: SUTransmitter) -> None:
        self._sus[su.su_id] = su

    def request(
        self,
        su_id: str,
        block_index: int | None = None,
        tx_power_dbm: float | None = None,
        region: PrivacyRegion | None = None,
        channels: Sequence[int] | None = None,
    ) -> Decision:
        """Process a transmission request for a registered or inline SU."""
        if su_id in self._sus:
            su = self._sus[su_id]
            if block_index is not None or tx_power_dbm is not None:
                raise ConfigurationError("registered SUs carry their own parameters")
        else:
            if block_index is None:
                raise ConfigurationError("unregistered SU needs a block_index")
            su = SUTransmitter(
                su_id=su_id,
                block_index=block_index,
                tx_power_dbm=20.0 if tx_power_dbm is None else tx_power_dbm,
            )
            self._sus[su_id] = su
        return self.sdc.process_request(su, region=region, channels=channels)

    @property
    def sus(self) -> dict[str, SUTransmitter]:
        return dict(self._sus)
