"""Packet waveform synthesis.

Figure 8 of the paper shows the PU's received trace: two WiFi packets of
different amplitudes (the two SUs sit at different distances), sampled
at 20 MHz over ≈0.35 ms.  We synthesise equivalent traces: each packet
is an OFDM-like burst — a band-limited random payload with a short
preamble ramp — scaled by the link's amplitude gain and summed onto a
noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RadioError

__all__ = ["PacketBurst", "packet_waveform", "received_trace"]


@dataclass(frozen=True)
class PacketBurst:
    """One packet on the air.

    Attributes
    ----------
    start_s:
        Transmission start time within the observation window.
    duration_s:
        Burst length (802.11g data frames are tens to hundreds of µs).
    amplitude:
        Received amplitude (linear, relative to a unit transmitter).
    source_id:
        Transmitting device.
    """

    start_s: float
    duration_s: float
    amplitude: float
    source_id: str

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise RadioError("packet duration must be positive")
        if self.amplitude < 0:
            raise RadioError("amplitude cannot be negative")


def packet_waveform(
    num_samples: int, rng: np.random.Generator, ramp_fraction: float = 0.05
) -> np.ndarray:
    """A unit-amplitude packet envelope of ``num_samples`` samples.

    Band-limited Gaussian payload with raised-cosine ramps at both ends
    (the preamble/tail shape visible in scope traces).
    """
    if num_samples < 4:
        raise RadioError("packet too short to synthesise")
    payload = rng.standard_normal(num_samples)
    # Cheap band-limiting: moving average over 4 samples.
    kernel = np.ones(4) / 4.0
    payload = np.convolve(payload, kernel, mode="same")
    peak = np.max(np.abs(payload))
    if peak > 0:
        payload /= peak
    ramp_len = max(2, int(num_samples * ramp_fraction))
    ramp = 0.5 * (1.0 - np.cos(np.linspace(0.0, np.pi, ramp_len)))
    envelope = np.ones(num_samples)
    envelope[:ramp_len] = ramp
    envelope[-ramp_len:] = ramp[::-1]
    return payload * envelope


def received_trace(
    bursts: list[PacketBurst],
    window_s: float,
    sample_rate_hz: float,
    noise_rms: float = 1e-3,
    seed: int = 0,
) -> np.ndarray:
    """Synthesise a receiver's sampled trace for an observation window.

    Matches the §VI-B monitoring setup: Figure 8 is this function with a
    0.35 ms window at 20 MHz and two bursts of unequal amplitude.
    """
    if window_s <= 0 or sample_rate_hz <= 0:
        raise RadioError("window and sample rate must be positive")
    rng = np.random.default_rng(seed)
    num_samples = int(window_s * sample_rate_hz)
    trace = rng.standard_normal(num_samples) * noise_rms
    for burst in bursts:
        start = int(burst.start_s * sample_rate_hz)
        length = int(burst.duration_s * sample_rate_hz)
        if start >= num_samples or start + length <= 0:
            continue
        shape = packet_waveform(max(4, length), rng)
        lo = max(0, start)
        hi = min(num_samples, start + length)
        trace[lo:hi] += burst.amplitude * shape[lo - start : hi - start]
    return trace
