"""Simulated USRP devices on a shared radio medium.

Models the §VI-B hardware: Ettus USRP N210 (the SUs) and X310 (the PU)
profiles with metric positions, a shared :class:`RadioMedium` carrying
packet bursts on WiFi channel 6, and free-space amplitude scaling so a
monitoring device observes distance-dependent amplitudes — the Figure 8
effect ("this difference stems from the fact that the distance of the
two SUs from PU is not equal").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import RadioError
from repro.radio.channel import WIFI_CHANNEL_6, WifiChannel
from repro.radio.pathloss import FreeSpaceModel
from repro.sdr.waveform import PacketBurst, received_trace

__all__ = ["UsrpProfile", "SimulatedUSRP", "RadioMedium", "USRP_N210", "USRP_X310"]


@dataclass(frozen=True)
class UsrpProfile:
    """Static capabilities of a USRP model."""

    model: str
    max_sample_rate_hz: float
    max_tx_power_dbm: float


#: The paper's SU hardware.
USRP_N210 = UsrpProfile(model="N210", max_sample_rate_hz=25e6, max_tx_power_dbm=20.0)
#: The paper's PU hardware.
USRP_X310 = UsrpProfile(model="X310", max_sample_rate_hz=200e6, max_tx_power_dbm=20.0)


class RadioMedium:
    """A shared wireless medium for one WiFi channel.

    Devices register themselves; transmissions append
    :class:`~repro.sdr.waveform.PacketBurst` entries per *receiver* with
    free-space amplitude scaling by the transmitter→receiver distance.
    """

    def __init__(self, channel: WifiChannel = WIFI_CHANNEL_6) -> None:
        self.channel = channel
        self._pathloss = FreeSpaceModel(channel.center_frequency_hz)
        self.devices: dict[str, "SimulatedUSRP"] = {}
        #: Per-receiver burst logs: device_id → list of bursts heard.
        self.heard: dict[str, list[PacketBurst]] = {}
        self.clock_s = 0.0

    def register(self, device: "SimulatedUSRP") -> None:
        if device.device_id in self.devices:
            raise RadioError(f"duplicate device id {device.device_id!r}")
        self.devices[device.device_id] = device
        self.heard[device.device_id] = []

    def advance(self, seconds: float) -> None:
        """Advance the medium clock."""
        if seconds < 0:
            raise RadioError("time only moves forward")
        self.clock_s += seconds

    def amplitude_between(self, tx_id: str, rx_id: str) -> float:
        """Received amplitude for a unit-amplitude transmitter.

        Power gain ``h(d)`` maps to amplitude as ``sqrt(h(d))``.
        """
        tx = self.devices[tx_id]
        rx = self.devices[rx_id]
        distance = math.hypot(tx.x_m - rx.x_m, tx.y_m - rx.y_m)
        return math.sqrt(self._pathloss.gain_linear(distance))

    def channel_busy(self, listener_id: str, threshold: float = 1e-4) -> bool:
        """Carrier sense: is another device's burst audible right now?

        802.11's CSMA/CA listens before transmitting; a burst whose
        received amplitude at the listener exceeds ``threshold`` and
        whose airtime covers the current clock makes the channel busy.
        """
        if listener_id not in self.devices:
            raise RadioError(f"unknown device {listener_id!r}")
        for burst in self.heard[listener_id]:
            if (
                burst.start_s <= self.clock_s < burst.start_s + burst.duration_s
                and burst.amplitude >= threshold
            ):
                return True
        return False

    def transmit(
        self, tx_id: str, duration_s: float, carrier_sense: bool = False
    ) -> PacketBurst | None:
        """Broadcast one packet; every other device logs what it hears.

        With ``carrier_sense=True`` the device defers (returns ``None``,
        transmitting nothing) when the channel is busy at its location —
        the 802.11g listen-before-talk behaviour of the testbed radios.
        """
        if tx_id not in self.devices:
            raise RadioError(f"unknown device {tx_id!r}")
        tx = self.devices[tx_id]
        if not tx.transmitting_allowed:
            raise RadioError(f"{tx_id!r} has no transmission permission")
        if carrier_sense and self.channel_busy(tx_id):
            return None
        sent = PacketBurst(
            start_s=self.clock_s, duration_s=duration_s, amplitude=1.0, source_id=tx_id
        )
        for rx_id in self.devices:
            if rx_id == tx_id:
                continue
            self.heard[rx_id].append(
                PacketBurst(
                    start_s=self.clock_s,
                    duration_s=duration_s,
                    amplitude=tx.tx_amplitude * self.amplitude_between(tx_id, rx_id),
                    source_id=tx_id,
                )
            )
        self.advance(duration_s)
        return sent


@dataclass
class SimulatedUSRP:
    """One radio device with a position and a transmit-permission flag.

    ``transmitting_allowed`` models the SDC's control loop: §VI-B
    scenario 2 has the SDC request SUs to stop, and scenario 4 grants
    permission back to the non-interfering SU.
    """

    device_id: str
    profile: UsrpProfile
    x_m: float
    y_m: float
    tx_power_dbm: float = 10.0
    transmitting_allowed: bool = True

    def __post_init__(self) -> None:
        if self.tx_power_dbm > self.profile.max_tx_power_dbm:
            raise RadioError(
                f"{self.profile.model} cannot transmit at {self.tx_power_dbm} dBm"
            )

    @property
    def tx_amplitude(self) -> float:
        """Transmit amplitude relative to a 0 dBm reference."""
        return math.sqrt(10.0 ** (self.tx_power_dbm / 10.0))

    def observe(
        self,
        medium: RadioMedium,
        window_s: float,
        sample_rate_hz: float = 20e6,
        since_s: float = 0.0,
        seed: int = 0,
        noise_rms: float = 1e-5,
    ) -> np.ndarray:
        """Render this device's received sample trace for a window.

        §VI-B monitors with 20 MHz sample rate; bursts heard before
        ``since_s`` are excluded and times are shifted to the window.
        ``noise_rms`` defaults well below free-space amplitudes at the
        testbed's tens-of-metres ranges (≈1e-4..1e-2), so packets stand
        out of the floor as in the paper's scope traces.
        """
        if sample_rate_hz > self.profile.max_sample_rate_hz:
            raise RadioError(
                f"{self.profile.model} caps at {self.profile.max_sample_rate_hz} S/s"
            )
        bursts = [
            PacketBurst(
                start_s=b.start_s - since_s,
                duration_s=b.duration_s,
                amplitude=b.amplitude,
                source_id=b.source_id,
            )
            for b in medium.heard[self.device_id]
            if b.start_s >= since_s
        ]
        return received_trace(
            bursts, window_s, sample_rate_hz, noise_rms=noise_rms, seed=seed
        )

    def heard_sources(self, medium: RadioMedium, since_s: float = 0.0) -> list[str]:
        """Source ids of bursts heard since ``since_s`` (in arrival order)."""
        return [
            b.source_id for b in medium.heard[self.device_id] if b.start_s >= since_s
        ]
