"""The §VI-B four-scenario experiment, driven through the real PISA stack.

The paper's testbed: PU (USRP X310) monitoring WiFi channel 6, SU1 and
SU2 (USRP N210) at *different distances* from the PU, and a laptop SDC.
The four scenarios:

1. PU idle; SU1 and SU2 transmit — the PU's monitor shows two packets of
   different amplitudes (Figure 8).
2. PU claims the channel: it updates the SDC, which tells both SUs to
   stop transmitting (Figure 10).
3. Both SUs send PISA transmission requests; the SDC acknowledges
   (Figure 11).
4. The SDC runs the privacy-preserving decision; only the SU whose
   interference stays under the PU's threshold is granted and resumes
   transmitting — in the paper's run, SU2, which then sends ≈11 packets
   in 20 ms (Figure 9).

Everything below scenario scripting is the production code path: the
requests are real encrypted PISA requests and the grant decision comes
out of the homomorphic protocol, not a shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto.rand import DeterministicRandomSource
from repro.geo.grid import BlockGrid
from repro.pisa.protocol import PisaCoordinator, RoundReport
from repro.radio.antenna import Antenna
from repro.sdr.devices import USRP_N210, USRP_X310, RadioMedium, SimulatedUSRP
from repro.watch.entities import PUReceiver, SUTransmitter
from repro.watch.environment import SpectrumEnvironment
from repro.watch.params import WatchParameters

__all__ = ["SdrTestbed", "ScenarioResult"]


@dataclass
class ScenarioResult:
    """Outcome of one scenario step."""

    name: str
    events: list[str]
    traces: dict[str, np.ndarray] = field(default_factory=dict)
    reports: dict[str, RoundReport] = field(default_factory=dict)


class SdrTestbed:
    """The simulated lab: one PU, two SUs, an SDC+STP pair, one channel.

    Geometry (defaults): a 100 m × 100 m lab area in 10 m blocks; the PU
    sits at (15, 15) m, SU1 adjacent at (25, 15) m — close enough that
    its interference breaks the PU's budget — and SU2 at (95, 85) m,
    far enough to be granted.  SU distances to the PU differ by design,
    producing Figure 8's two amplitudes.
    """

    #: Channel slot playing the role of "WiFi channel 6" in the plan.
    CHANNEL = 0

    def __init__(self, seed: int = 0, key_bits: int = 256) -> None:
        self.seed = seed
        grid = BlockGrid(rows=10, cols=10, block_size_m=10.0)
        params = WatchParameters(num_channels=2)
        # No TV towers: the PU reports its own measured signal strength,
        # exactly like the testbed's monitoring-based setup.
        self.environment = SpectrumEnvironment(grid, params, transmitters=())
        self.medium = RadioMedium()
        self.pu_device = SimulatedUSRP("pu", USRP_X310, x_m=15.0, y_m=15.0)
        self.su1_device = SimulatedUSRP("su1", USRP_N210, x_m=25.0, y_m=15.0,
                                        tx_power_dbm=16.0)
        self.su2_device = SimulatedUSRP("su2", USRP_N210, x_m=95.0, y_m=85.0,
                                        tx_power_dbm=10.0)
        for device in (self.pu_device, self.su1_device, self.su2_device):
            self.medium.register(device)

        rng = DeterministicRandomSource(seed)
        self.coordinator = PisaCoordinator(self.environment, key_bits=key_bits, rng=rng)
        #: The PU's measured mean signal strength on the channel (mW);
        #: ≈ −50 dBm, a strong near-field reception.
        self.pu_signal_mw = 1e-5
        self.pu = PUReceiver(
            receiver_id="pu",
            block_index=grid.block_at(self.pu_device.x_m, self.pu_device.y_m).index,
            channel_slot=None,
        )
        self.su1 = SUTransmitter(
            su_id="su1",
            block_index=grid.block_at(self.su1_device.x_m, self.su1_device.y_m).index,
            tx_power_dbm=self.su1_device.tx_power_dbm,
            antenna=Antenna(gain_dbi=0.0, height_m=1.5),
        )
        self.su2 = SUTransmitter(
            su_id="su2",
            block_index=grid.block_at(self.su2_device.x_m, self.su2_device.y_m).index,
            tx_power_dbm=self.su2_device.tx_power_dbm,
            antenna=Antenna(gain_dbi=0.0, height_m=1.5),
        )
        self.coordinator.enroll_pu(self.pu)
        self.coordinator.enroll_su(self.su1)
        self.coordinator.enroll_su(self.su2)

    # -- scenarios -------------------------------------------------------------

    def scenario_1_sus_transmit(self) -> ScenarioResult:
        """SUs occupy the idle channel; the PU monitors (Figure 8)."""
        events = []
        start = self.medium.clock_s
        self.medium.transmit("su1", duration_s=60e-6)
        self.medium.advance(100e-6)
        self.medium.transmit("su2", duration_s=60e-6)
        events.append("su1 and su2 each sent one packet on channel 6")
        trace = self.pu_device.observe(
            self.medium, window_s=0.35e-3, sample_rate_hz=20e6,
            since_s=start, seed=self.seed,
        )
        return ScenarioResult(
            name="scenario-1", events=events, traces={"pu": trace}
        )

    def scenario_2_pu_claims_channel(self) -> ScenarioResult:
        """PU starts using the channel; the SDC halts the SUs (Figure 10)."""
        events = []
        self.coordinator.pu_switch_channel(
            "pu", self.CHANNEL, signal_strength_mw=self.pu_signal_mw
        )
        events.append("pu sent encrypted channel-reception update to sdc")
        for device in (self.su1_device, self.su2_device):
            device.transmitting_allowed = False
        events.append("sdc requested su1 and su2 to stop transmitting")
        return ScenarioResult(name="scenario-2", events=events)

    def scenario_3_sus_request(self) -> ScenarioResult:
        """Both SUs prepare and send encrypted requests (Figure 11)."""
        events = []
        for su_id in ("su1", "su2"):
            request = self.coordinator.su_client(su_id).prepare_request()
            self.coordinator.transport.send(request, sender=su_id, receiver="sdc")
            events.append(
                f"{su_id} sent encrypted request ({request.wire_size()} bytes); "
                "sdc acknowledged"
            )
        return ScenarioResult(name="scenario-3", events=events)

    def scenario_4_decision(self) -> ScenarioResult:
        """The SDC decides privately; the granted SU resumes (Figure 9)."""
        events = []
        reports = {}
        for su_id, device in (("su1", self.su1_device), ("su2", self.su2_device)):
            report = self.coordinator.run_request_round(
                su_id, reuse_cached_request=True
            )
            reports[su_id] = report
            device.transmitting_allowed = report.granted
            events.append(
                f"{su_id}: {'granted' if report.granted else 'denied'} "
                "(learned only by the SU itself)"
            )
        traces = {}
        granted = [s for s, r in reports.items() if r.granted]
        if granted:
            start = self.medium.clock_s
            # The paper's granted SU sends ≈11 packets within 20 ms.
            for k in range(11):
                self.medium.transmit(granted[0], duration_s=60e-6)
                self.medium.advance(1.7e-3)
            traces["pu"] = self.pu_device.observe(
                self.medium, window_s=20e-3, sample_rate_hz=20e6,
                since_s=start, seed=self.seed + 1,
            )
            events.append(f"{granted[0]} sent 11 packets within 20 ms")
        return ScenarioResult(
            name="scenario-4", events=events, traces=traces, reports=reports
        )

    def run_all(self) -> list[ScenarioResult]:
        """Run the four scenarios in order and return their results."""
        return [
            self.scenario_1_sus_transmit(),
            self.scenario_2_pu_claims_channel(),
            self.scenario_3_sus_request(),
            self.scenario_4_decision(),
        ]
