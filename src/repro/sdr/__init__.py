"""Simulated software-defined-radio testbed (§VI-B substitution).

The paper's real-world experiment uses two Ettus USRP N210 devices as
SUs, a USRP X310 as the PU, and a laptop SDC, all on WiFi channel 6
(2.437 GHz, 22 MHz), monitored with GNU Radio.  No such hardware exists
offline, so this subpackage simulates the same testbed:

* :mod:`repro.sdr.waveform` — sampled packet bursts whose received
  amplitude scales with distance (Figure 8's two-amplitude trace);
* :mod:`repro.sdr.devices` — USRP-profile radio devices that transmit
  and observe packets over a shared medium;
* :mod:`repro.sdr.testbed` — the four §VI-B scenarios driven end-to-end
  through the *actual PISA protocol stack*, reproducing Figures 8-11
  qualitatively.
"""

from repro.sdr.devices import RadioMedium, SimulatedUSRP, UsrpProfile
from repro.sdr.testbed import ScenarioResult, SdrTestbed
from repro.sdr.waveform import PacketBurst, packet_waveform

__all__ = [
    "RadioMedium",
    "SimulatedUSRP",
    "UsrpProfile",
    "ScenarioResult",
    "SdrTestbed",
    "PacketBurst",
    "packet_waveform",
]
