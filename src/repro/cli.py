"""Command-line interface: ``python -m repro`` / ``pisa-repro``.

Gives downstream users one entry point into the reproduction:

=============  =================================================
``demo``       one end-to-end PISA round on a small scenario
``testbed``    the §VI-B four-scenario SDR experiment
``zones``      TVWS vs WATCH exclusion-zone maps
``tradeoff``   the §VI-A location-privacy/latency sweep
``simulate``   a deployment-capacity simulation (paper-hardware
               cost model, configurable load and packing)
``profile``    Table II Paillier micro-benchmarks at any key size
``serve-loadtest``  drive the async service broker with synthetic
               open-loop load and report throughput/latency
               (``--plane socket`` runs shards + STP as subprocesses)
``cluster-up`` materialise a cluster spec file as real processes and
               run its seeded workload end to end
``trace``      run a traced loadtest and print the span tree plus
               a per-phase latency breakdown
``metrics-dump``  run a loadtest and dump the unified metrics
               registry (Prometheus text or JSON)
``store``      inspect a durable SQLite state store (row counts,
               snapshot epochs, checkpoint metadata)
``audit``      crypto-hygiene static analyzer (CRY/SEC/ORD/SVC/TEL
               rules) with baseline-gated exit status
=============  =================================================
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pisa-repro",
        description="PISA (ICDCS'17) reproduction — privacy-preserving "
        "fine-grained spectrum access",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one end-to-end PISA round")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--key-bits", type=int, default=256,
                      help="Paillier modulus size (2048 = paper setting)")
    demo.add_argument("--packed", action="store_true",
                      help="use the packed-request extension")
    demo.add_argument("--two-server", action="store_true",
                      help="use the STP-free two-server extension")

    testbed = sub.add_parser("testbed", help="the §VI-B four scenarios")
    testbed.add_argument("--seed", type=int, default=1)

    zones = sub.add_parser("zones", help="exclusion-zone maps")
    zones.add_argument("--seed", type=int, default=5)
    zones.add_argument("--probe-dbm", type=float, default=16.0)

    tradeoff = sub.add_parser("tradeoff", help="privacy vs latency sweep")
    tradeoff.add_argument("--seed", type=int, default=3)

    simulate = sub.add_parser("simulate", help="deployment capacity simulation")
    simulate.add_argument("--hours", type=float, default=24.0)
    simulate.add_argument("--rate", type=float, default=1.0,
                          help="SU requests per hour")
    simulate.add_argument("--packing", type=int, default=1,
                          help="packed-mode slots per ciphertext (1 = baseline)")
    simulate.add_argument("--seed", type=int, default=42)
    simulate.add_argument("--workload", type=str, default="",
                          help="named traffic shape (repro.sim.traffic; "
                               "default: legacy homogeneous Poisson)")
    simulate.add_argument("--no-bench", dest="bench", action="store_false",
                          help="skip BENCH_service.json calibration and use "
                               "the paper's Table II constants as-is")

    profile = sub.add_parser("profile", help="Table II micro-benchmarks")
    profile.add_argument("--key-bits", type=int, default=1024)
    profile.add_argument("--iterations", type=int, default=10)

    negotiate = sub.add_parser(
        "negotiate", help="privately find an SU's max admissible power"
    )
    negotiate.add_argument("--seed", type=int, default=4)
    negotiate.add_argument("--block", type=int, default=None,
                           help="SU block index (default: scenario SU 0)")
    negotiate.add_argument("--resolution-db", type=float, default=1.0)

    capacity = sub.add_parser(
        "capacity", help="TVWS vs WATCH usable-spectrum accounting"
    )
    capacity.add_argument("--seed", type=int, default=5)
    capacity.add_argument("--probe-dbm", type=float, default=16.0)

    serve = sub.add_parser(
        "serve-loadtest",
        help="drive the async service broker with synthetic open-loop load",
    )
    serve.add_argument("--plane", choices=("memory", "socket"), default="memory",
                       help="deployment plane: in-process transport, or SDC "
                            "shards + STP as subprocesses over TCP frames")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--requests", type=int, default=12,
                       help="SU request arrivals to fire")
    serve.add_argument("--rate", type=float, default=50.0,
                       help="mean arrivals per second (open loop)")
    serve.add_argument("--sus", type=int, default=3,
                       help="distinct SUs cycling through arrivals")
    serve.add_argument("--scenario", type=str, default="uhf",
                       help="named scenario from the registry (uhf, "
                            "cbrs-tiered)")
    serve.add_argument("--workload", type=str, default="",
                       help="named traffic shape driving the open-loop "
                            "schedule (steady, diurnal, flash-crowd, "
                            "pu-churn-storm, mobility; default: legacy "
                            "Poisson driver)")
    serve.add_argument("--tier-capacity", type=int, default=0,
                       help="GAA channel budget for cbrs-tiered "
                            "(0 = derive from WATCH capacity)")
    serve.add_argument("--pu-switches", type=int, default=2,
                       help="physical PU channel switches to interleave "
                            "with the arrivals")
    serve.add_argument("--window-ms", type=float, default=50.0,
                       help="epoch batching window")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="requests per epoch before early dispatch")
    serve.add_argument("--workers", type=int, default=0,
                       help="worker processes for Paillier batches "
                            "(0 = serial in-process executor)")
    serve.add_argument("--key-bits", type=int, default=512,
                       help="Paillier modulus (packed mode needs >= 512)")
    serve.add_argument("--shards", type=int, default=0,
                       help="SDC shards behind the cluster facade "
                            "(0 = single packed SDC)")
    serve.add_argument("--kill-shard", type=int, default=0, metavar="N",
                       help="kill a shard primary after N request "
                            "submissions (failover chaos probe; needs "
                            "--shards)")
    serve.add_argument("--store", type=str, default=None, metavar="PATH",
                       help="durable SQLite state store (needs --shards; "
                            "memory plane: one DB file; socket plane: a "
                            "directory holding one DB per shard worker)")
    serve.add_argument("--json", type=str, default=None, metavar="PATH",
                       help="also write the full report as JSON")

    cluster_up = sub.add_parser(
        "cluster-up",
        help="materialise a cluster spec as real processes and run its "
             "workload (broker, SDC shards, and STP over TCP frames)",
    )
    cluster_up.add_argument("--spec", type=str,
                            default="examples/cluster_spec.json",
                            metavar="PATH",
                            help="cluster spec JSON "
                                 "(default: examples/cluster_spec.json)")
    cluster_up.add_argument("--output", type=str, default=None, metavar="PATH",
                            help="write the loadtest report as JSON")
    cluster_up.add_argument("--metrics", type=str, default=None, metavar="PATH",
                            help="write the metrics registry as Prometheus "
                                 "text exposition")
    cluster_up.add_argument("--timeout", type=float, default=300.0,
                            help="seconds to wait for the workload")

    def add_loadtest_args(p, requests_default: int) -> None:
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--requests", type=int, default=requests_default,
                       help="SU request arrivals to fire")
        p.add_argument("--rate", type=float, default=50.0,
                       help="mean arrivals per second (open loop)")
        p.add_argument("--sus", type=int, default=3,
                       help="distinct SUs cycling through arrivals")
        p.add_argument("--key-bits", type=int, default=512,
                       help="Paillier modulus (packed mode needs >= 512)")
        p.add_argument("--shards", type=int, default=0,
                       help="SDC shards behind the cluster facade "
                            "(0 = single packed SDC)")
        p.add_argument("--scenario", type=str, default="uhf",
                       help="named scenario from the registry (uhf, "
                            "cbrs-tiered)")
        p.add_argument("--workload", type=str, default="",
                       help="named traffic shape (default: legacy Poisson "
                            "driver)")
        p.add_argument("--tier-capacity", type=int, default=0,
                       help="GAA channel budget for cbrs-tiered "
                            "(0 = derive from WATCH capacity)")

    trace = sub.add_parser(
        "trace",
        help="run a traced loadtest and print the span tree",
    )
    add_loadtest_args(trace, requests_default=4)
    trace.add_argument("--json", type=str, default=None, metavar="PATH",
                       help="also write the span trees as JSON")

    metrics_dump = sub.add_parser(
        "metrics-dump",
        help="run a loadtest and dump the unified metrics registry",
    )
    add_loadtest_args(metrics_dump, requests_default=8)
    metrics_dump.add_argument("--format", choices=("prom", "json"),
                              default="prom",
                              help="exposition format (default: prom)")
    metrics_dump.add_argument("--output", type=str, default=None,
                              metavar="PATH",
                              help="write the dump to PATH instead of stdout")

    chaos = sub.add_parser(
        "chaos",
        help="run seeded fault plans and check transcript/license survival",
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--plan", type=str, default="kill-shard",
                       help="comma-separated fault plans composed into one "
                            "schedule, or 'all' to run every plan singly; "
                            "'proc-kill-shard' SIGKILLs a real shard "
                            "subprocess on the socket plane, and "
                            "'proc-split-brain' / 'proc-gray-slow' run the "
                            "partition drills there (each runs alone)")
    chaos.add_argument("--shards", type=int, default=2)
    chaos.add_argument("--rounds", type=int, default=2,
                       help="protocol rounds per run")
    chaos.add_argument("--key-bits", type=int, default=256,
                       help="Paillier modulus for the paired deployments")
    chaos.add_argument("--workload", type=str, default="",
                       help="compose the fault schedule with a named "
                            "traffic shape (flash-crowd, pu-churn-storm, "
                            "...); simulated-transport plans only")
    chaos.add_argument("--json", type=str, default=None, metavar="PATH",
                       help="also write the results as JSON")
    chaos.add_argument("--metrics-dump", type=str, default=None,
                       metavar="PATH",
                       help="write the runs' unified metrics registry as "
                            "Prometheus text to PATH (CI greps the fencing "
                            "families from it)")

    store_cmd = sub.add_parser(
        "store",
        help="inspect a durable SQLite state store (rows, snapshots, "
             "checkpoint meta)",
    )
    store_cmd.add_argument("path", help="SQLite state-store file")
    store_cmd.add_argument("--json", type=str, default=None, metavar="PATH",
                           help="also write the inspection as JSON")

    audit = sub.add_parser(
        "audit",
        help="run the crypto-hygiene static analyzer over the source tree",
    )
    audit.add_argument("paths", nargs="*", default=["src/repro"],
                       help="files/directories to analyze (default: src/repro)")
    audit.add_argument("--baseline", type=str, default="audit-baseline.json",
                       metavar="PATH",
                       help="grandfathered-findings file (default: "
                            "audit-baseline.json; missing file = empty)")
    audit.add_argument("--update-baseline", action="store_true",
                       help="rewrite the baseline to the current finding set")
    audit.add_argument("--json", type=str, default=None, metavar="PATH",
                       help="also write the full report as JSON")
    audit.add_argument("--sarif", type=str, default=None, metavar="PATH",
                       help="also write the report as SARIF 2.1.0 "
                            "(GitHub code scanning)")
    audit.add_argument("--format", choices=("text", "json", "sarif"),
                       default="text", help="stdout report format")
    audit.add_argument("--select", action="append", default=None,
                       metavar="RULE",
                       help="run only this rule id (repeatable)")
    audit.add_argument("--cache", type=str, default=None, metavar="PATH",
                       help="incremental summary cache file — warm runs "
                            "skip re-parsing unchanged files")
    audit.add_argument("--explain", type=str, default=None, metavar="RULEID",
                       help="print the rule's rationale, bad/good example, "
                            "and waiver syntax, then exit")
    audit.add_argument("--verbose", action="store_true",
                       help="also list grandfathered findings")

    return parser


def _cmd_demo(args) -> int:
    from repro.crypto.rand import DeterministicRandomSource
    from repro.watch.scenario import ScenarioConfig, build_scenario

    scenario = build_scenario(ScenarioConfig(seed=args.seed))
    rng = DeterministicRandomSource(args.seed)
    if args.packed and args.two_server:
        print("choose at most one of --packed / --two-server", file=sys.stderr)
        return 2
    if args.packed:
        from repro.pisa.packed import PackedCoordinator as Coordinator

        key_bits = max(args.key_bits, 512)  # packing needs slot room
    elif args.two_server:
        from repro.pisa.two_server import TwoServerCoordinator as Coordinator

        key_bits = args.key_bits
    else:
        from repro.pisa.protocol import PisaCoordinator as Coordinator

        key_bits = args.key_bits
    coordinator = Coordinator(scenario.environment, key_bits=key_bits, rng=rng)
    for pu in scenario.pus:
        coordinator.enroll_pu(pu)
    su = scenario.sus[0]
    coordinator.enroll_su(su)
    report = coordinator.run_request_round(su.su_id)
    variant = "packed" if args.packed else ("two-server" if args.two_server else "stp")
    print(f"variant={variant} key_bits={key_bits}")
    print(f"decision for {su.su_id}: {'GRANTED' if report.granted else 'DENIED'}")
    print(f"request {report.request_bytes} B, response {report.response_bytes} B, "
          f"round {report.timings.total:.2f} s")
    return 0


def _cmd_testbed(args) -> int:
    from repro.sdr.testbed import SdrTestbed

    for result in SdrTestbed(seed=args.seed).run_all():
        print(f"[{result.name}]")
        for event in result.events:
            print(f"  {event}")
    return 0


def _cmd_zones(args) -> int:
    from repro.watch.scenario import ScenarioConfig, build_scenario
    from repro.watch.zones import compute_zones, render_zone_map

    scenario = build_scenario(ScenarioConfig(
        seed=args.seed, grid_rows=8, grid_cols=12, num_channels=4,
        num_towers=2, num_pus=4, num_sus=0,
    ))
    slot = scenario.pus[0].channel_slot
    active = [p for p in scenario.pus if p.channel_slot == slot]
    zones = compute_zones(
        scenario.environment, active, slot, probe_power_dbm=args.probe_dbm
    )
    print(render_zone_map(scenario.environment, zones, active))
    print(f"static {zones.static_fraction:.0%} | dynamic "
          f"{zones.dynamic_fraction:.0%} | reuse gain {zones.reuse_gain:+.0%}")
    return 0


def _cmd_tradeoff(args) -> int:
    import runpy
    import pathlib

    script = pathlib.Path(__file__).resolve().parents[2] / "examples" / "privacy_tradeoff.py"
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    print("examples/privacy_tradeoff.py not found", file=sys.stderr)
    return 1


def _cmd_simulate(args) -> int:
    from repro.analysis.reporting import format_table
    from repro.sim import (
        DeploymentSimulator,
        ServiceCostModel,
        WorkloadConfig,
        load_measured_round,
        paper_profile,
    )
    from repro.watch.scenario import ScenarioConfig, build_scenario

    profile = paper_profile()
    calibration = 1.0
    provenance = "paper Table II constants"
    measured = load_measured_round() if args.bench else None
    if measured is not None:
        calibration = ServiceCostModel.calibration_from(profile, measured)
        provenance = (
            f"calibrated x{calibration:.4f} to measured "
            f"{measured.seconds_per_request:.3f} s/req "
            f"({measured.key_bits}-bit bench, {measured.source})"
        )
    model = ServiceCostModel(
        profile, num_channels=100, num_blocks=600,
        packing_factor=args.packing, calibration=calibration,
    )
    scenario = build_scenario(ScenarioConfig(seed=4, num_sus=3))
    simulator = DeploymentSimulator(
        scenario, model,
        WorkloadConfig(su_requests_per_hour=args.rate, seed=args.seed),
        traffic=args.workload or None,
    )
    report = simulator.run(args.hours * 3600)
    shape = f", workload {args.workload}" if args.workload else ""
    print(format_table(
        f"{args.hours:.0f} h @ {args.rate:g} req/h, "
        f"packing k={args.packing}{shape}",
        report.as_table_rows(),
    ))
    print(f"phase costs: {provenance}")
    return 0


def _cmd_profile(args) -> int:
    from repro.analysis.reporting import format_table
    from repro.analysis.scaling import measure_cost_profile

    profile = measure_cost_profile(
        key_bits=args.key_bits, iterations=args.iterations
    )
    print(format_table(
        f"Paillier @ n = {args.key_bits} bits", profile.as_table_rows()
    ))
    return 0


def _cmd_negotiate(args) -> int:
    from repro.crypto.rand import DeterministicRandomSource
    from repro.pisa.negotiation import PowerNegotiator
    from repro.pisa.protocol import PisaCoordinator
    from repro.watch.entities import SUTransmitter
    from repro.watch.scenario import ScenarioConfig, build_scenario

    scenario = build_scenario(ScenarioConfig(seed=args.seed))
    coordinator = PisaCoordinator(
        scenario.environment, key_bits=256,
        rng=DeterministicRandomSource(args.seed),
    )
    for pu in scenario.pus:
        coordinator.enroll_pu(pu)
    block = scenario.sus[0].block_index if args.block is None else args.block
    su = SUTransmitter("cli-su", block_index=block)
    result = PowerNegotiator(
        coordinator, resolution_db=args.resolution_db
    ).negotiate(su)
    if result.admitted:
        print(f"max admissible power at block {block}: "
              f"{result.best_power_dbm:.1f} dBm "
              f"({result.rounds_used} encrypted rounds)")
    else:
        print(f"block {block} is inadmissible even at the floor power")
    return 0


def _cmd_capacity(args) -> int:
    from repro.analysis.reporting import format_table
    from repro.watch.capacity import capacity_report
    from repro.watch.scenario import ScenarioConfig, build_scenario

    scenario = build_scenario(ScenarioConfig(
        seed=args.seed, grid_rows=6, grid_cols=8, num_channels=4,
        num_towers=2, num_pus=4, num_sus=0,
    ))
    report = capacity_report(
        scenario.environment, scenario.pus, probe_power_dbm=args.probe_dbm
    )
    print(format_table(
        f"spectrum capacity at {args.probe_dbm:g} dBm", report.as_table_rows()
    ))
    return 0


def _cmd_serve_loadtest(args) -> int:
    import json

    from repro.analysis.reporting import format_table
    from repro.service import LoadtestConfig, ServiceConfig, run_loadtest
    from repro.service.workers import ProcessWorkerPool

    if args.plane == "socket" and (args.workers or args.kill_shard):
        print("--plane socket does not take --workers / --kill-shard "
              "(homomorphic work already runs in the shard processes; "
              "use `repro chaos --plan proc-kill-shard` for process faults)",
              file=sys.stderr)
        return 2
    if args.store and not args.shards and args.plane != "socket":
        print("--store requires a sharded run (--shards N)", file=sys.stderr)
        return 2
    shards = max(args.shards, 1) if args.plane == "socket" else args.shards
    config = LoadtestConfig(
        seed=args.seed,
        num_requests=args.requests,
        arrivals_per_second=args.rate,
        num_sus=args.sus,
        num_pu_switches=args.pu_switches,
        key_bits=args.key_bits,
        shards=shards,
        kill_shard_after=args.kill_shard,
        store_path=args.store if args.plane == "memory" and args.store else "",
        scenario=args.scenario,
        workload=args.workload,
        tier_capacity=args.tier_capacity,
        service=ServiceConfig(
            batch_window_s=args.window_ms / 1000.0,
            max_batch=args.max_batch,
        ),
    )
    if args.plane == "socket":
        from repro.netd import run_socket_loadtest

        report, _ = run_socket_loadtest(config, store_dir=args.store or None)
        executor_name = "shard-processes"
        plane = f"{shards}-shard socket plane"
    elif args.workers > 0:
        with ProcessWorkerPool(max_workers=args.workers) as pool:
            pool.warm_up()  # fork workers before the event loop spins up
            report = run_loadtest(config, executor=pool)
        executor_name = f"process-pool[{args.workers}]"
        plane = f"{args.shards}-shard cluster" if args.shards else "single SDC"
    else:
        report = run_loadtest(config)
        executor_name = "serial"
        plane = f"{args.shards}-shard cluster" if args.shards else "single SDC"
    shape = f", {args.scenario}" + (
        f"/{args.workload}" if args.workload else ""
    )
    print(format_table(
        f"serve-loadtest: {args.requests} req @ {args.rate:g}/s, "
        f"window {args.window_ms:g} ms, executor {executor_name}, "
        f"{plane}{shape}",
        report.as_table_rows(),
    ))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_json_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def _loadtest_config(args):
    from repro.service import LoadtestConfig

    return LoadtestConfig(
        seed=args.seed,
        num_requests=args.requests,
        arrivals_per_second=args.rate,
        num_sus=args.sus,
        key_bits=args.key_bits,
        shards=args.shards,
        scenario=args.scenario,
        workload=args.workload,
        tier_capacity=args.tier_capacity,
    )


def _cmd_trace(args) -> int:
    import json

    from repro.service import run_loadtest
    from repro.telemetry import MetricsRegistry, Tracer

    tracer = Tracer()
    metrics = MetricsRegistry()
    report = run_loadtest(_loadtest_config(args), metrics=metrics, tracer=tracer)
    print(tracer.render(), end="")
    print()
    print(f"{'phase':<12} {'count':>5} {'mean ms':>9} {'max ms':>9}")
    for name, stats in sorted(tracer.phase_latency().items()):
        print(f"{name:<12} {stats['count']:>5} "
              f"{stats['mean_s'] * 1e3:>9.2f} {stats['max_s'] * 1e3:>9.2f}")
    print(f"requests: {len(report.decisions)} "
          f"(granted {report.granted}, rejected {report.rejected})")
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump([span.to_dict() for span in tracer.roots], fh,
                      indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def _cmd_metrics_dump(args) -> int:
    from repro.service import run_loadtest
    from repro.telemetry import MetricsRegistry

    metrics = MetricsRegistry()
    run_loadtest(_loadtest_config(args), metrics=metrics)
    dump = metrics.to_json() if args.format == "json" else metrics.to_prometheus()
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(dump if dump.endswith("\n") else dump + "\n")
        print(f"wrote {args.output}")
    else:
        print(dump, end="" if dump.endswith("\n") else "\n")
    return 0


def _cmd_cluster_up(args) -> int:
    import json

    from repro.netd.supervisor import ProcessSupervisor
    from repro.netd.topology import load_cluster_spec

    spec = load_cluster_spec(args.spec)  # fail fast, before any spawn
    output = args.output or "cluster-report.json"
    metrics_path = args.metrics or "cluster-metrics.prom"
    print(f"cluster-up: {spec.shards} shard(s) + stp + broker from {args.spec}")
    supervisor = ProcessSupervisor(host=spec.host, monitor=False)
    try:
        supervisor.start(
            "broker",
            "broker",
            ("--spec", args.spec, "--output", output, "--metrics", metrics_path),
            restart=False,
        )
        supervisor.wait_ready(["broker"], timeout_s=args.timeout)
        code = supervisor.wait_exit("broker", timeout_s=args.timeout)
        if code != 0:
            tail = supervisor._stderr_tail("broker", lines=20)
            print(f"broker exited with status {code}:\n{tail}", file=sys.stderr)
            return 1
    finally:
        supervisor.stop_all()
    with open(output, encoding="utf-8") as fh:
        report = json.load(fh)
    print(f"workload complete: {report.get('requests', 0)} requests "
          f"({report.get('granted', 0)} granted, "
          f"{report.get('rejected', 0)} rejected), "
          f"wall {report.get('wall_seconds', 0.0):.2f} s")
    print(f"wrote {output}")
    print(f"wrote {metrics_path}")
    return 0


def _cmd_chaos(args) -> int:
    import json

    from repro.resilience.chaos import PLAN_NAMES, ChaosHarness

    metrics = None
    if args.metrics_dump is not None:
        from repro.telemetry.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    harness = ChaosHarness(
        seed=args.seed,
        shards=args.shards,
        rounds=args.rounds,
        key_bits=args.key_bits,
        metrics=metrics,
        workload=args.workload,
    )
    if args.plan == "all":
        # Simulated-transport plans only; the process plans cost real
        # subprocess spawns and are asked for by name.
        schedules = [[name] for name in PLAN_NAMES]
    else:
        schedules = [[p.strip() for p in args.plan.split(",") if p.strip()]]
    results = []
    failed = 0
    for schedule in schedules:
        from repro.netd.chaos import PARTITION_PLAN_NAMES, PROC_PLAN_NAME

        proc_plans = (PROC_PLAN_NAME,) + PARTITION_PLAN_NAMES
        if any(name in proc_plans for name in schedule):
            if len(schedule) != 1:
                print("socket-plane plans (proc-*) run alone (each has its "
                      "own schedule)", file=sys.stderr)
                return 2
            if args.workload:
                print("--workload composes with simulated-transport plans "
                      "only (proc-* plans drive their own fixed script)",
                      file=sys.stderr)
                return 2
            if schedule == [PROC_PLAN_NAME]:
                from repro.netd.chaos import run_process_chaos

                result = run_process_chaos(
                    seed=args.seed,
                    shards=args.shards,
                    rounds=args.rounds,
                    key_bits=args.key_bits,
                    metrics=metrics,
                )
            else:
                from repro.netd.chaos import run_partition_chaos

                result = run_partition_chaos(
                    schedule[0],
                    seed=args.seed,
                    shards=args.shards,
                    rounds=args.rounds,
                    key_bits=args.key_bits,
                    metrics=metrics,
                )
        else:
            result = harness.run(schedule)
        results.append(result)
        verdict = "OK" if result.ok else "FAIL"
        shape = f" workload={args.workload}" if args.workload else ""
        print(
            f"chaos [{'+'.join(result.plans)}]{shape} seed={result.seed} "
            f"shards={result.shards}: {verdict} "
            f"(transcript_equal={result.transcript_equal}, "
            f"licenses_valid={result.licenses_valid}, "
            f"failovers={result.failovers}, suspects={result.suspects}, "
            f"fenced={result.fenced_rejections}, "
            f"writer_violations={result.writer_violations}, "
            f"faults={result.fault_stats})"
        )
        for note in result.notes:
            print(f"  - {note}")
        if not result.ok:
            failed += 1
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump([r.to_dict() for r in results], fh, indent=2,
                      sort_keys=True)
        print(f"wrote {args.json}")
    if metrics is not None:
        with open(args.metrics_dump, "w", encoding="utf-8") as fh:
            fh.write(metrics.to_prometheus())
        print(f"wrote {args.metrics_dump}")
    return 1 if failed else 0


def _cmd_store(args) -> int:
    import json
    import os

    from repro.analysis.reporting import format_table
    from repro.store import CHECKPOINT_SCOPE, CheckpointMeta, SqliteStateStore

    # Opening would *create* an empty database; an inspector must not.
    if not os.path.exists(args.path):
        print(f"pisa-repro store: error: no such store: '{args.path}'")
        return 1
    with SqliteStateStore(args.path) as store:
        counts = store.row_counts()
        snapshots = {}
        for shard_id in store.snapshot_shards():
            latest = store.latest_snapshot(shard_id)
            if latest is not None:
                snapshots[shard_id] = latest[0]
        meta_blob = store.get_checkpoint(CHECKPOINT_SCOPE)
        meta = CheckpointMeta.from_bytes(meta_blob) if meta_blob else None
        has_directory = store.get_directory() is not None
    rows = [(f"{table} rows", str(counts.get(table, 0)))
            for table in sorted(counts)]
    rows.append(("key directory", "present" if has_directory else "absent"))
    for shard_id, epoch in sorted(snapshots.items()):
        rows.append((f"snapshot[{shard_id}]", f"epoch {epoch}"))
    if meta is not None:
        rows.append(("last checkpoint",
                     f"id {meta.checkpoint_id}, "
                     f"{meta.records_consumed} records consumed"))
    else:
        rows.append(("last checkpoint", "none"))
    print(format_table(f"state store {args.path}", rows))
    if args.json is not None:
        payload = {
            "path": args.path,
            "row_counts": counts,
            "directory_present": has_directory,
            "snapshot_epochs": snapshots,
            "checkpoint": None if meta is None else {
                "checkpoint_id": meta.checkpoint_id,
                "records_consumed": meta.records_consumed,
            },
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def _cmd_audit(args) -> int:
    from repro.audit.cli import explain_rule, run_audit

    if args.explain is not None:
        return explain_rule(args.explain)
    return run_audit(
        list(args.paths),
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
        json_path=args.json,
        sarif_path=args.sarif,
        output_format=args.format,
        select=args.select,
        cache_path=args.cache,
        verbose=args.verbose,
    )


_COMMANDS = {
    "demo": _cmd_demo,
    "audit": _cmd_audit,
    "chaos": _cmd_chaos,
    "cluster-up": _cmd_cluster_up,
    "serve-loadtest": _cmd_serve_loadtest,
    "store": _cmd_store,
    "trace": _cmd_trace,
    "metrics-dump": _cmd_metrics_dump,
    "negotiate": _cmd_negotiate,
    "capacity": _cmd_capacity,
    "testbed": _cmd_testbed,
    "zones": _cmd_zones,
    "tradeoff": _cmd_tradeoff,
    "simulate": _cmd_simulate,
    "profile": _cmd_profile,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError

    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"pisa-repro {args.command}: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
