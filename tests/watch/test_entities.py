"""Unit tests for WATCH entities."""

import pytest

from repro.errors import ConfigurationError
from repro.radio.antenna import Antenna
from repro.watch.entities import PUReceiver, SUTransmitter, TVTransmitter


class TestTVTransmitter:
    def test_construction(self):
        tower = TVTransmitter("t1", x_m=0.0, y_m=0.0, channel_slot=3)
        assert tower.eirp_dbm == pytest.approx(80.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TVTransmitter("t1", 0.0, 0.0, channel_slot=-1)
        with pytest.raises(ConfigurationError):
            TVTransmitter("t1", 0.0, 0.0, channel_slot=0, antenna_height_m=0.0)


class TestPUReceiver:
    def test_active_receiver(self):
        pu = PUReceiver("pu", block_index=3, channel_slot=2, signal_strength_mw=1e-4)
        assert pu.is_active

    def test_switched_off_receiver(self):
        pu = PUReceiver("pu", block_index=3, channel_slot=None)
        assert not pu.is_active

    def test_active_needs_signal(self):
        with pytest.raises(ConfigurationError):
            PUReceiver("pu", block_index=0, channel_slot=1, signal_strength_mw=0.0)

    def test_switched_to(self):
        pu = PUReceiver("pu", block_index=3, channel_slot=2, signal_strength_mw=1e-4)
        switched = pu.switched_to(5, signal_strength_mw=2e-4)
        assert switched.channel_slot == 5
        assert switched.block_index == 3  # location is fixed/registered
        off = switched.switched_to(None)
        assert not off.is_active

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PUReceiver("pu", block_index=-1, channel_slot=None)


class TestSUTransmitter:
    def test_eirp_composition(self):
        """§III-D: EIRP = PT + GA − LS."""
        su = SUTransmitter(
            "su", block_index=0, tx_power_dbm=20.0,
            antenna=Antenna(gain_dbi=6.0, line_loss_db=2.0),
        )
        assert su.eirp_dbm == pytest.approx(24.0)
        assert su.eirp_mw == pytest.approx(10**2.4)

    def test_with_power(self):
        su = SUTransmitter("su", block_index=0, tx_power_dbm=10.0)
        louder = su.with_power(20.0)
        assert louder.eirp_dbm == pytest.approx(20.0)
        assert su.eirp_dbm == pytest.approx(10.0)  # original unchanged

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SUTransmitter("su", block_index=-2)
