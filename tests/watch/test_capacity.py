"""Tests for the TVWS-vs-WATCH capacity accounting."""

import pytest

from repro.watch.capacity import capacity_report
from repro.watch.scenario import ScenarioConfig, build_scenario

PROBE_DBM = 16.0


@pytest.fixture(scope="module")
def cap_scenario():
    return build_scenario(ScenarioConfig(
        seed=5, grid_rows=6, grid_cols=8, num_channels=4,
        num_towers=2, num_pus=4, num_sus=0,
    ))


@pytest.fixture(scope="module")
def report(cap_scenario):
    return capacity_report(
        cap_scenario.environment, cap_scenario.pus, probe_power_dbm=PROBE_DBM
    )


class TestCapacityReport:
    def test_cell_accounting(self, report, cap_scenario):
        env = cap_scenario.environment
        assert report.total_cells == env.num_channels * env.num_blocks
        assert 0 <= report.tvws_usable <= report.total_cells
        assert 0 <= report.watch_usable <= report.total_cells

    def test_watch_beats_tvws(self, report):
        """The paper's motivating claim on our substrate."""
        assert report.watch_usable > report.tvws_usable
        assert report.reuse_multiple > 1.0

    def test_per_channel_detail(self, report, cap_scenario):
        assert len(report.per_channel) == cap_scenario.params.num_channels

    def test_no_viewers_maximum_reuse(self, cap_scenario, report):
        """With no active receivers, only the public EIRP caps remain —
        usable capacity is maximal (and total at a modest probe power)."""
        empty = capacity_report(
            cap_scenario.environment, [], probe_power_dbm=PROBE_DBM
        )
        assert empty.active_pus == 0
        assert empty.watch_usable >= report.watch_usable
        modest = capacity_report(
            cap_scenario.environment, [], probe_power_dbm=10.0
        )
        assert modest.watch_usable == modest.total_cells

    def test_more_viewers_less_capacity(self, cap_scenario, report):
        """WATCH capacity is monotone non-increasing in active viewers."""
        half = capacity_report(
            cap_scenario.environment, cap_scenario.pus[:2],
            probe_power_dbm=PROBE_DBM,
        )
        assert half.watch_usable >= report.watch_usable

    def test_tvws_independent_of_viewers(self, cap_scenario, report):
        """Static zones do not respond to viewing behaviour — the flaw
        WATCH fixes."""
        empty = capacity_report(
            cap_scenario.environment, [], probe_power_dbm=PROBE_DBM
        )
        assert empty.tvws_usable == report.tvws_usable

    def test_table_rows(self, report):
        rows = dict(report.as_table_rows())
        assert "spectrum-reuse multiple" in rows
