"""Property-based tests for the WATCH matrix algebra (eqs. (3)-(7))."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.watch.entities import PUReceiver
from repro.watch.matrices import (
    aggregate,
    all_positive,
    budget_matrix,
    indicator_matrix,
    pu_signal_matrix,
    pu_update_matrix,
    scaled_interference_matrix,
    zeros_matrix,
)
from repro.watch.params import WatchParameters

PARAMS = WatchParameters(num_channels=3)
NUM_BLOCKS = 6

relaxed = settings(max_examples=50, deadline=None)

pu_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NUM_BLOCKS - 1),
        st.integers(min_value=0, max_value=PARAMS.num_channels - 1),
        st.floats(min_value=1e-9, max_value=1e-1),
    ),
    min_size=0,
    max_size=4,
    unique_by=lambda spec: spec[0],  # one PU per block (paper §IV-A2)
)

e_values = st.lists(
    st.integers(min_value=1, max_value=10**12),
    min_size=PARAMS.num_channels * NUM_BLOCKS,
    max_size=PARAMS.num_channels * NUM_BLOCKS,
)


def make_pus(specs):
    return [
        PUReceiver(f"pu-{i}", block_index=block, channel_slot=slot,
                   signal_strength_mw=signal)
        for i, (block, slot, signal) in enumerate(specs)
    ]


def make_e(values):
    e = zeros_matrix(PARAMS.num_channels, NUM_BLOCKS)
    for c in range(PARAMS.num_channels):
        for b in range(NUM_BLOCKS):
            e[c, b] = values[c * NUM_BLOCKS + b]
    return e


@relaxed
@given(specs=pu_specs, values=e_values)
def test_equation_4_identity(specs, values):
    """N = ΣW + E equals T where a PU sits and E elsewhere — for ANY
    population and ANY E matrix (the §IV-B trick is an identity)."""
    pus = make_pus(specs)
    e = make_e(values)
    w_sum = (
        aggregate([pu_update_matrix(pu, e, PARAMS) for pu in pus])
        if pus
        else zeros_matrix(PARAMS.num_channels, NUM_BLOCKS)
    )
    n = budget_matrix(w_sum, e)
    occupied = {(pu.channel_slot, pu.block_index): pu for pu in pus}
    for c in range(PARAMS.num_channels):
        for b in range(NUM_BLOCKS):
            if (c, b) in occupied:
                expected = PARAMS.encoder.encode(
                    occupied[(c, b)].signal_strength_mw
                )
            else:
                expected = e[c, b]
            assert n[c, b] == expected


@relaxed
@given(specs=pu_specs, values=e_values)
def test_aggregation_is_order_invariant(specs, values):
    pus = make_pus(specs)
    if len(pus) < 2:
        return
    e = make_e(values)
    matrices = [pu_update_matrix(pu, e, PARAMS) for pu in pus]
    forward = aggregate(matrices)
    backward = aggregate(list(reversed(matrices)))
    assert all(forward[c, b] == backward[c, b]
               for c in range(PARAMS.num_channels) for b in range(NUM_BLOCKS))


@relaxed
@given(
    values=e_values,
    f_entries=st.lists(
        st.integers(min_value=0, max_value=10**10),
        min_size=PARAMS.num_channels * NUM_BLOCKS,
        max_size=PARAMS.num_channels * NUM_BLOCKS,
    ),
)
def test_grant_iff_strict_budget_dominance(values, f_entries):
    """all_positive(N − X·F) ⟺ every cell has X·F < N."""
    n = make_e(values)
    f = zeros_matrix(PARAMS.num_channels, NUM_BLOCKS)
    for c in range(PARAMS.num_channels):
        for b in range(NUM_BLOCKS):
            f[c, b] = f_entries[c * NUM_BLOCKS + b]
    r = scaled_interference_matrix(f, PARAMS)
    granted = all_positive(indicator_matrix(n, r))
    dominated = all(
        r[c, b] < n[c, b]
        for c in range(PARAMS.num_channels)
        for b in range(NUM_BLOCKS)
    )
    assert granted == dominated


@relaxed
@given(specs=pu_specs)
def test_signal_matrix_single_support(specs):
    """T_i has exactly one non-zero entry per active PU (at its cell)."""
    for pu in make_pus(specs):
        t = pu_signal_matrix(pu, PARAMS, NUM_BLOCKS)
        nonzero = [(c, b) for c in range(PARAMS.num_channels)
                   for b in range(NUM_BLOCKS) if t[c, b] != 0]
        expected = PARAMS.encoder.encode(pu.signal_strength_mw)
        if expected == 0:
            assert nonzero == []
        else:
            assert nonzero == [(pu.channel_slot, pu.block_index)]
