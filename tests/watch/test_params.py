"""Unit tests for WATCH parameters and Table I settings."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.watch.params import PaperSettings, WatchParameters


class TestWatchParameters:
    def test_defaults_follow_the_paper(self):
        params = WatchParameters()
        assert params.num_channels == 100
        assert params.value_bits == 60
        assert params.tv_sinr_db == pytest.approx(15.0)

    def test_sinr_linear_conversion(self):
        params = WatchParameters(tv_sinr_db=15.0, redn_db=1.0)
        expected = 10**1.5 + 10**0.1
        assert params.sinr_plus_redn_linear == pytest.approx(expected)

    def test_integer_sinr_rounds_up(self):
        """Quantisation must never shrink the protection margin."""
        params = WatchParameters()
        assert params.sinr_plus_redn_int == math.ceil(params.sinr_plus_redn_linear)
        assert params.sinr_plus_redn_int >= params.sinr_plus_redn_linear

    def test_max_quantised_value(self):
        params = WatchParameters(value_bits=60)
        assert params.max_quantised_value == 2**60 - 1

    def test_encoder_scale(self):
        params = WatchParameters(power_decimals=12)
        assert params.encoder.encode(1.0) == 10**12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WatchParameters(num_channels=0)
        with pytest.raises(ConfigurationError):
            WatchParameters(power_decimals=-1)
        with pytest.raises(ConfigurationError):
            WatchParameters(value_bits=4)


class TestPaperSettings:
    def test_table_1_values(self):
        settings = PaperSettings()
        assert settings.num_pus == 100
        assert settings.num_blocks == 600
        assert settings.num_channels == 100
        assert settings.value_bits == 60
        assert settings.paillier_bits == 2048

    def test_grid_factorisation(self):
        settings = PaperSettings()
        assert settings.grid_rows * settings.grid_cols == settings.num_blocks

    def test_table_rows_render(self):
        rows = PaperSettings().as_table_rows()
        assert ("Number of PUs", "100") in rows
        assert ("Number of blocks", "600") in rows

    def test_watch_parameters_conversion(self):
        params = PaperSettings().watch_parameters()
        assert params.num_channels == 100
        assert params.value_bits == 60
