"""Unit tests for the plaintext WATCH SDC."""

import pytest

from repro.errors import ProtocolError
from repro.watch.entities import PUReceiver, SUTransmitter
from repro.watch.matrices import zeros_matrix
from repro.watch.sdc import Decision, PlaintextSDC
from repro.watch.scenario import ScenarioConfig, build_scenario


@pytest.fixture()
def sdc(scenario):
    controller = PlaintextSDC(scenario.environment)
    for pu in scenario.pus:
        controller.pu_update(pu)
    return controller


class TestBudgetMaintenance:
    def test_budget_without_pus_equals_e(self, scenario):
        controller = PlaintextSDC(scenario.environment)
        env = scenario.environment
        budget = controller.budget
        for c in range(env.num_channels):
            for b in range(env.num_blocks):
                assert budget[c, b] == env.e_matrix[c, b]

    def test_budget_with_pu_holds_signal(self, scenario):
        controller = PlaintextSDC(scenario.environment)
        pu = scenario.pus[0]
        controller.pu_update(pu)
        expected = scenario.params.encoder.encode(pu.signal_strength_mw)
        assert controller.budget[pu.channel_slot, pu.block_index] == expected

    def test_resubmission_replaces(self, scenario):
        controller = PlaintextSDC(scenario.environment)
        pu = scenario.pus[0]
        controller.pu_update(pu)
        # Switch the same receiver to another channel: the old cell must
        # fall back to E and the new cell must carry the signal.
        other_slot = (pu.channel_slot + 1) % scenario.params.num_channels
        controller.pu_update(pu.switched_to(other_slot, signal_strength_mw=3e-4))
        env = scenario.environment
        assert (
            controller.budget[pu.channel_slot, pu.block_index]
            == env.e_matrix[pu.channel_slot, pu.block_index]
        )
        assert controller.budget[other_slot, pu.block_index] == scenario.params.encoder.encode(
            3e-4
        )

    def test_switch_off_restores_e(self, scenario):
        controller = PlaintextSDC(scenario.environment)
        pu = scenario.pus[0]
        controller.pu_update(pu)
        controller.pu_update(pu.switched_to(None))
        env = scenario.environment
        assert (
            controller.budget[pu.channel_slot, pu.block_index]
            == env.e_matrix[pu.channel_slot, pu.block_index]
        )
        assert controller.num_active_pus == 0

    def test_active_pu_count(self, sdc, scenario):
        assert sdc.num_active_pus == len(scenario.pus)


class TestDecisions:
    def test_decision_shape_checked(self, sdc):
        with pytest.raises(ProtocolError):
            sdc.decide("su", zeros_matrix(1, 1))

    def test_zero_request_always_granted(self, sdc, scenario):
        env = scenario.environment
        f = zeros_matrix(env.num_channels, env.num_blocks)
        decision = sdc.decide("quiet-su", f)
        assert decision.granted
        assert decision.num_violations == 0

    def test_violations_identify_cells(self, sdc, scenario):
        su = SUTransmitter("loud", block_index=scenario.pus[0].block_index,
                           tx_power_dbm=36.0)
        decision = sdc.process_request(su)
        assert not decision.granted
        assert decision.num_violations > 0
        # Each reported violation must be a valid (channel, block) cell.
        env = scenario.environment
        for c, b in decision.violations:
            assert 0 <= c < env.num_channels
            assert 0 <= b < env.num_blocks

    def test_monotone_in_power(self, sdc, scenario):
        """DESIGN.md invariant 6: more power can only flip grant→deny."""
        su_quiet = SUTransmitter("m", block_index=8, tx_power_dbm=-20.0)
        su_loud = su_quiet.with_power(36.0)
        quiet = sdc.process_request(su_quiet)
        loud = sdc.process_request(su_loud)
        if not quiet.granted:
            assert not loud.granted

    def test_power_sweep_single_threshold(self, sdc):
        """Grant/deny is a threshold in SU power (no re-grant above)."""
        decisions = [
            sdc.process_request(
                SUTransmitter("s", block_index=10, tx_power_dbm=float(p))
            ).granted
            for p in range(-30, 37, 4)
        ]
        # Once a denial appears, everything after must be a denial.
        if False in decisions:
            first_denial = decisions.index(False)
            assert all(not d for d in decisions[first_denial:])


class TestDecisionDataclass:
    def test_fields(self):
        d = Decision(su_id="x", granted=False, violations=((0, 1), (2, 3)))
        assert d.num_violations == 2
