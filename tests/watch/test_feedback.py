"""Tests for multi-SU admission physics and the Δ_redn feedback loop."""

import numpy as np
import pytest

from repro.watch.entities import SUTransmitter
from repro.watch.feedback import (
    AdmissionSimulator,
    FeedbackController,
    PuProtectionState,
)
from repro.watch.params import WatchParameters
from repro.watch.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def dense_scenario():
    return build_scenario(ScenarioConfig(
        seed=5, grid_rows=8, grid_cols=8, num_channels=6,
        num_towers=3, num_pus=6, num_sus=0,
    ))


def su_population(count: int, num_blocks: int, seed: int = 1) -> list[SUTransmitter]:
    rng = np.random.default_rng(seed)
    return [
        SUTransmitter(
            f"su-{i}",
            block_index=int(rng.integers(0, num_blocks)),
            tx_power_dbm=float(rng.uniform(0.0, 18.0)),
        )
        for i in range(count)
    ]


class TestProtectionState:
    def test_infinite_sinr_without_interference(self, dense_scenario):
        state = PuProtectionState(pu=dense_scenario.pus[0])
        assert state.sinr_db == float("inf")

    def test_sinr_drops_with_interference(self, dense_scenario):
        pu = dense_scenario.pus[0]
        state = PuProtectionState(pu=pu)
        state.aggregate_interference_mw = pu.signal_strength_mw / 10.0
        assert state.sinr_db == pytest.approx(10.0)


class TestAdmissionSimulator:
    def test_granted_sus_accumulate_interference(self, dense_scenario):
        simulator = AdmissionSimulator(dense_scenario.environment, dense_scenario.pus)
        sus = su_population(20, dense_scenario.grid.num_blocks)
        simulator.run(sus)
        assert 0 < simulator.num_admitted <= 20
        assert simulator.worst_sinr_db() < float("inf")

    def test_denied_sus_leave_physics_untouched(self, dense_scenario):
        simulator = AdmissionSimulator(dense_scenario.environment, dense_scenario.pus)
        # An absurdly loud SU right on a PU is denied and must not count.
        loud = SUTransmitter("boom", block_index=dense_scenario.pus[0].block_index,
                             tx_power_dbm=36.0)
        outcome = simulator.attempt(loud)
        assert not outcome.decision.granted
        assert simulator.worst_sinr_db() == float("inf")

    def test_budget_stationary_under_admissions(self, dense_scenario):
        """§IV-A: granting SUs never mutates N (Δ_redn absorbs it)."""
        simulator = AdmissionSimulator(dense_scenario.environment, dense_scenario.pus)
        simulator.run(su_population(10, dense_scenario.grid.num_blocks))
        assert simulator.budget_is_stationary()

    def test_aggregate_violation_emerges(self, dense_scenario):
        """Each SU passes per-SU admission, yet the aggregate can break
        the SINR floor — the phenomenon Δ_redn must absorb."""
        params = dense_scenario.environment.params
        simulator = AdmissionSimulator(dense_scenario.environment, dense_scenario.pus)
        simulator.run(su_population(40, dense_scenario.grid.num_blocks))
        if simulator.num_admitted >= 10:
            assert simulator.worst_sinr_db() < params.tv_sinr_db + 10


class TestFeedbackController:
    @pytest.fixture(scope="class")
    def report(self, dense_scenario):
        controller = FeedbackController(
            dense_scenario.environment.grid,
            dense_scenario.towers,
            dense_scenario.pus,
            WatchParameters(num_channels=6, redn_db=1.0),
        )
        return controller.converge(
            su_population(40, dense_scenario.grid.num_blocks)
        )

    def test_converges_to_protection(self, report):
        """The paper's claim: the loop ends with all PUs protected."""
        assert report.protected
        assert report.worst_sinr_db >= 15.0

    def test_margin_monotonically_widens(self, report):
        margins = [step[0] for step in report.trajectory]
        assert margins == sorted(margins)

    def test_admissions_shrink_as_margin_widens(self, report):
        admitted = [step[1] for step in report.trajectory]
        assert admitted[-1] <= admitted[0]

    def test_final_round_admits_someone(self, report):
        """Protection must not be achieved by shutting everyone out."""
        assert report.num_admitted > 0

    def test_gives_up_after_max_iterations(self, dense_scenario):
        controller = FeedbackController(
            dense_scenario.environment.grid,
            dense_scenario.towers,
            dense_scenario.pus,
            WatchParameters(num_channels=6, redn_db=1.0),
            step_db=0.1,   # far too timid to converge in 2 rounds
            max_iterations=2,
        )
        report = controller.converge(
            su_population(40, dense_scenario.grid.num_blocks)
        )
        assert not report.protected
        assert report.iterations == 2
