"""Unit tests for the shared spectrum environment."""

import pytest

from repro.geo.grid import BlockGrid
from repro.radio.pathloss import ExtendedHataModel, FreeSpaceModel, LogDistanceModel
from repro.watch.environment import SpectrumEnvironment
from repro.watch.params import WatchParameters


@pytest.fixture()
def env(scenario):
    return scenario.environment


class TestModels:
    def test_su_model_type_and_cache(self, env):
        model = env.su_pathloss(0)
        assert isinstance(model, LogDistanceModel)
        assert env.su_pathloss(0) is model

    def test_tv_model_type(self, env):
        assert isinstance(env.tv_pathloss(0), ExtendedHataModel)

    def test_hmax_is_free_space(self, env):
        assert isinstance(env.hmax_pathloss(0), FreeSpaceModel)

    def test_hmax_dominates_su_model(self, env):
        """h_max must be the most favourable propagation (eq. (1))."""
        su = env.su_pathloss(0)
        hmax = env.hmax_pathloss(0)
        for d in (100.0, 1e3, 1e4):
            assert hmax.gain_linear(d) >= su.gain_linear(d)


class TestExclusion:
    def test_cached(self, env):
        assert env.exclusion_distance(0) == env.exclusion_distance(0)

    def test_positive_and_large(self, env):
        # At UHF with FCC-scale SU power the exclusion zone spans many km.
        assert env.exclusion_distance(0) > 1e4


class TestEMatrix:
    def test_shape(self, env):
        assert env.e_matrix.shape == (env.num_channels, env.num_blocks)

    def test_lazy_and_cached(self, env):
        assert env.e_matrix is env.e_matrix

    def test_entries_positive_and_bounded(self, env):
        max_value = env.params.max_quantised_value
        for value in env.e_matrix.flat:
            assert 0 < value <= max_value

    def test_no_towers_cap_is_regulatory_max(self):
        grid = BlockGrid(rows=2, cols=2)
        params = WatchParameters(num_channels=2)
        env = SpectrumEnvironment(grid, params, transmitters=())
        from repro.radio.units import dbm_to_mw

        expected = params.encoder.encode(dbm_to_mw(params.max_su_eirp_dbm))
        assert all(v == expected for v in env.e_matrix.flat)

    def test_coverage_reduces_cap(self, env):
        """Blocks inside tower coverage have a lower cap than S_max."""
        from repro.radio.units import dbm_to_mw

        s_max = env.params.encoder.encode(dbm_to_mw(env.params.max_su_eirp_dbm))
        covered_slots = {t.channel_slot for t in env.transmitters}
        values = [env.e_matrix[c, b] for c in covered_slots for b in range(env.num_blocks)]
        assert any(v < s_max for v in values)


class TestHeightAwareModel:
    def test_default_ignores_height(self, scenario):
        from repro.radio.antenna import Antenna
        from repro.watch.entities import SUTransmitter

        env = scenario.environment
        short = SUTransmitter("a", 0, antenna=Antenna(height_m=1.5))
        tall = SUTransmitter("b", 0, antenna=Antenna(height_m=15.0))
        assert env.su_pathloss_for(short, 0) is env.su_pathloss_for(tall, 0)

    def test_height_aware_taller_carries_further(self):
        from repro.geo.grid import BlockGrid
        from repro.radio.antenna import Antenna
        from repro.watch.entities import SUTransmitter
        from repro.watch.params import WatchParameters

        env = SpectrumEnvironment(
            BlockGrid(rows=2, cols=2), WatchParameters(num_channels=2),
            height_aware_su_model=True,
        )
        short = SUTransmitter("a", 0, antenna=Antenna(height_m=1.5))
        tall = SUTransmitter("b", 0, antenna=Antenna(height_m=15.0))
        d = 2000.0
        assert (
            env.su_pathloss_for(tall, 0).gain_linear(d)
            > env.su_pathloss_for(short, 0).gain_linear(d)
        )

    def test_height_aware_decisions_differ(self):
        """The privacy-sensitive parameter visibly shapes admission."""
        from repro.geo.grid import BlockGrid
        from repro.radio.antenna import Antenna
        from repro.watch.entities import PUReceiver, SUTransmitter
        from repro.watch.params import WatchParameters
        from repro.watch.sdc import PlaintextSDC

        grid = BlockGrid(rows=1, cols=30, block_size_m=100.0)
        env = SpectrumEnvironment(
            grid, WatchParameters(num_channels=1), height_aware_su_model=True
        )
        sdc = PlaintextSDC(env)
        sdc.pu_update(PUReceiver("pu", block_index=0, channel_slot=0,
                                 signal_strength_mw=1e-5))
        results = {}
        for label, height in (("short", 1.0), ("tall", 18.0)):
            su = SUTransmitter(
                f"su-{label}", block_index=29, tx_power_dbm=34.0,
                antenna=Antenna(height_m=height),
            )
            results[label] = sdc.process_request(su).granted
        # At 34 dBm the 18 m mast reaches the distant PU over the
        # two-ray path and is denied, while the 1 m antenna is not —
        # the height is decision-relevant, hence privacy-sensitive.
        assert results == {"short": True, "tall": False}


class TestTerrainAwareCoverage:
    def test_terrain_selects_itm(self):
        from repro.geo.grid import BlockGrid
        from repro.radio.itm import IrregularTerrainModel
        from repro.radio.terrain import SyntheticTerrain
        from repro.watch.params import WatchParameters

        env = SpectrumEnvironment(
            BlockGrid(rows=2, cols=2), WatchParameters(num_channels=2),
            terrain=SyntheticTerrain(seed=3),
        )
        assert isinstance(env.tv_pathloss(0), IrregularTerrainModel)

    def test_rough_terrain_weakens_coverage(self, scenario):
        """Rougher terrain → more path loss → weaker PU signals."""
        from repro.radio.terrain import SyntheticTerrain
        from repro.watch.system import received_tv_signal_mw

        flat = SpectrumEnvironment(
            scenario.environment.grid, scenario.params,
            transmitters=scenario.towers,
            terrain=SyntheticTerrain(relief_m=1.0, seed=1),
        )
        rough = SpectrumEnvironment(
            scenario.environment.grid, scenario.params,
            transmitters=scenario.towers,
            terrain=SyntheticTerrain(relief_m=300.0, seed=1),
        )
        pu = scenario.pus[0]
        flat_signal = received_tv_signal_mw(flat, pu.block_index, pu.channel_slot)
        rough_signal = received_tv_signal_mw(rough, pu.block_index, pu.channel_slot)
        assert 0 < rough_signal < flat_signal

    def test_pisa_runs_on_terrain_environment(self):
        """End-to-end sanity: the protocol is propagation-model agnostic."""
        from repro.crypto.rand import DeterministicRandomSource
        from repro.pisa.protocol import PisaCoordinator
        from repro.radio.terrain import SyntheticTerrain
        from repro.watch.sdc import PlaintextSDC
        from repro.watch.scenario import ScenarioConfig, build_scenario
        from repro.watch.system import received_tv_signal_mw

        base = build_scenario(ScenarioConfig(seed=0, num_sus=1))
        env = SpectrumEnvironment(
            base.environment.grid, base.params,
            transmitters=base.towers,
            terrain=SyntheticTerrain(seed=5),
        )
        oracle = PlaintextSDC(env)
        coord = PisaCoordinator(
            env, key_bits=192, rng=DeterministicRandomSource("terrain-e2e")
        )
        for pu in base.pus:
            signal = received_tv_signal_mw(env, pu.block_index, pu.channel_slot)
            refreshed = pu.switched_to(pu.channel_slot, signal_strength_mw=signal)
            oracle.pu_update(refreshed)
            coord.enroll_pu(refreshed)
        su = base.sus[0]
        coord.enroll_su(su)
        assert (
            coord.run_request_round(su.su_id).granted
            == oracle.process_request(su).granted
        )
