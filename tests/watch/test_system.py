"""Unit tests for the WatchSystem facade and signal model."""

import pytest

from repro.errors import ConfigurationError, RadioError
from repro.watch.scenario import ScenarioConfig, build_scenario
from repro.watch.system import WatchSystem, received_tv_signal_mw


@pytest.fixture()
def system(scenario):
    return WatchSystem(scenario.environment)


class TestReceivedSignal:
    def test_positive_under_coverage(self, scenario):
        pu = scenario.pus[0]
        signal = received_tv_signal_mw(
            scenario.environment, pu.block_index, pu.channel_slot
        )
        assert signal > 0

    def test_zero_without_tower(self, scenario):
        served = {t.channel_slot for t in scenario.towers}
        # Find a slot with no tower on its physical channel.
        plan = scenario.environment.plan
        served_physical = {plan.physical_for_slot(s).number for s in served}
        for slot in range(scenario.params.num_channels):
            if plan.physical_for_slot(slot).number not in served_physical:
                assert received_tv_signal_mw(scenario.environment, 0, slot) == 0.0
                break
        else:
            pytest.skip("every slot covered in this scenario")

    def test_realistic_range(self, scenario):
        """Received TV signal should be far below the transmitted power."""
        pu = scenario.pus[0]
        signal = received_tv_signal_mw(
            scenario.environment, pu.block_index, pu.channel_slot
        )
        assert 1e-12 < signal < 1.0  # between -120 dBm and 0 dBm


class TestPuManagement:
    def test_tune_uses_model_signal(self, system, scenario):
        pu_template = scenario.pus[0]
        pu = system.tune_pu("pu-x", pu_template.block_index, pu_template.channel_slot)
        assert pu.signal_strength_mw == pytest.approx(
            received_tv_signal_mw(
                scenario.environment, pu.block_index, pu.channel_slot
            )
        )

    def test_tune_uncovered_slot_raises(self, system, scenario):
        plan = scenario.environment.plan
        served_physical = {
            plan.physical_for_slot(t.channel_slot).number for t in scenario.towers
        }
        for slot in range(scenario.params.num_channels):
            if plan.physical_for_slot(slot).number not in served_physical:
                with pytest.raises(RadioError):
                    system.tune_pu("pu-y", 0, slot)
                return
        pytest.skip("every slot covered")

    def test_explicit_signal_override(self, system):
        pu = system.tune_pu("pu-z", 0, 0, signal_strength_mw=5e-4)
        assert pu.signal_strength_mw == 5e-4

    def test_switch_off(self, system, scenario):
        pu = scenario.pus[0]
        system.tune_pu("pu-off", pu.block_index, pu.channel_slot)
        off = system.switch_off_pu("pu-off")
        assert not off.is_active
        assert system.sdc.num_active_pus == 0

    def test_switch_off_unknown_raises(self, system):
        with pytest.raises(ConfigurationError):
            system.switch_off_pu("ghost")


class TestRequests:
    def test_inline_su(self, system):
        decision = system.request("su-inline", block_index=5, tx_power_dbm=-30.0)
        assert decision.granted  # whisper-quiet SU with no active PUs

    def test_inline_su_requires_block(self, system):
        with pytest.raises(ConfigurationError):
            system.request("mystery-su")

    def test_registered_su(self, system, scenario):
        su = scenario.sus[0]
        system.register_su(su)
        decision = system.request(su.su_id)
        assert decision.su_id == su.su_id

    def test_registered_su_rejects_inline_params(self, system, scenario):
        su = scenario.sus[0]
        system.register_su(su)
        with pytest.raises(ConfigurationError):
            system.request(su.su_id, block_index=3)


class TestScenarioGeneration:
    def test_deterministic(self):
        a = build_scenario(ScenarioConfig(seed=11))
        b = build_scenario(ScenarioConfig(seed=11))
        assert [p.block_index for p in a.pus] == [p.block_index for p in b.pus]
        assert [t.eirp_dbm for t in a.towers] == [t.eirp_dbm for t in b.towers]

    def test_pus_have_distinct_blocks(self, scenario):
        blocks = [p.block_index for p in scenario.pus]
        assert len(blocks) == len(set(blocks))

    def test_pus_are_receivable(self, scenario):
        for pu in scenario.pus:
            assert pu.signal_strength_mw > 0

    def test_paper_scale_config(self):
        config = ScenarioConfig.paper_scale()
        assert config.grid_rows * config.grid_cols == 600
        assert config.num_channels == 100
        assert config.num_pus == 100

    def test_too_many_pus_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(grid_rows=2, grid_cols=2, num_pus=5)
