"""Unit tests for the exclusion-distance solver (eq. (1))."""

import pytest

from repro.radio.pathloss import FreeSpaceModel
from repro.watch.exclusion import exclusion_distance_m, required_gain
from repro.watch.params import WatchParameters

UHF = 600e6


class TestRequiredGain:
    def test_formula(self):
        """h_max(d^c) = S_min / (S_max · (Δ_SINR + Δ_redn))."""
        params = WatchParameters()
        gain = required_gain(params)
        s_min = 10 ** (params.min_tv_signal_dbm / 10)
        s_max = 10 ** (params.max_su_eirp_dbm / 10)
        assert gain == pytest.approx(s_min / (s_max * params.sinr_plus_redn_linear))

    def test_gain_is_tiny(self):
        assert required_gain(WatchParameters()) < 1e-10


class TestExclusionDistance:
    def test_gain_at_distance_matches(self):
        params = WatchParameters()
        d = exclusion_distance_m(params, UHF)
        model = FreeSpaceModel(UHF)
        assert model.gain_linear(d) == pytest.approx(required_gain(params), rel=1e-6)

    def test_higher_su_power_larger_zone(self):
        low = WatchParameters(max_su_eirp_dbm=20.0)
        high = WatchParameters(max_su_eirp_dbm=36.0)
        assert exclusion_distance_m(high, UHF) > exclusion_distance_m(low, UHF)

    def test_stricter_sinr_larger_zone(self):
        lax = WatchParameters(tv_sinr_db=10.0)
        strict = WatchParameters(tv_sinr_db=23.0)
        assert exclusion_distance_m(strict, UHF) > exclusion_distance_m(lax, UHF)

    def test_weaker_tv_protection_smaller_zone(self):
        """A lower minimum TV signal means victims tolerate less
        interference, so the zone must GROW as S_min decreases."""
        strong_floor = WatchParameters(min_tv_signal_dbm=-70.0)
        weak_floor = WatchParameters(min_tv_signal_dbm=-90.0)
        assert exclusion_distance_m(weak_floor, UHF) > exclusion_distance_m(
            strong_floor, UHF
        )

    def test_frequency_dependence(self):
        """Higher frequency → more free-space loss → smaller d^c."""
        params = WatchParameters()
        assert exclusion_distance_m(params, 700e6) < exclusion_distance_m(params, 500e6)

    def test_custom_model_override(self):
        params = WatchParameters()
        from repro.radio.pathloss import LogDistanceModel

        harsh = LogDistanceModel(UHF, exponent=4.0)
        d_harsh = exclusion_distance_m(params, UHF, hmax_model=harsh)
        d_free = exclusion_distance_m(params, UHF)
        assert d_harsh < d_free
