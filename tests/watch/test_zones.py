"""Tests for the exclusion-zone analysis (WATCH's headline claim)."""

import pytest

from repro.watch.scenario import ScenarioConfig, build_scenario
from repro.watch.zones import compute_zones, render_zone_map

PROBE_DBM = 16.0


@pytest.fixture(scope="module")
def zone_scenario():
    return build_scenario(ScenarioConfig(
        seed=5, grid_rows=8, grid_cols=12, num_channels=4,
        num_towers=2, num_pus=4, num_sus=0,
    ))


@pytest.fixture(scope="module")
def covered_slot(zone_scenario):
    return zone_scenario.pus[0].channel_slot


@pytest.fixture(scope="module")
def active_pus(zone_scenario, covered_slot):
    return [p for p in zone_scenario.pus if p.channel_slot == covered_slot]


class TestDynamicVsStatic:
    def test_dynamic_zone_smaller_than_static(
        self, zone_scenario, active_pus, covered_slot
    ):
        """The WATCH claim: active-receiver zones ≪ coverage zones."""
        zones = compute_zones(
            zone_scenario.environment, active_pus, covered_slot,
            probe_power_dbm=PROBE_DBM,
        )
        assert zones.static_fraction > 0.5
        assert zones.dynamic_fraction < zones.static_fraction
        assert zones.reuse_gain > 0.3

    def test_no_active_pus_no_dynamic_zone(self, zone_scenario, covered_slot):
        zones = compute_zones(
            zone_scenario.environment, [], covered_slot, probe_power_dbm=PROBE_DBM
        )
        assert zones.dynamic_fraction == 0.0

    def test_dynamic_zone_surrounds_active_pus(
        self, zone_scenario, active_pus, covered_slot
    ):
        zones = compute_zones(
            zone_scenario.environment, active_pus, covered_slot,
            probe_power_dbm=PROBE_DBM,
        )
        grid = zone_scenario.environment.grid
        for pu in active_pus:
            # The PU's own block must be excluded for a probe SU.
            assert pu.block_index in zones.dynamic_blocks
            # And the zone is local: some block far away is free.
            far = max(
                range(grid.num_blocks),
                key=lambda b: grid.distance_m(pu.block_index, b),
            )
            if all(
                grid.distance_m(far, other.block_index) > 40.0
                for other in active_pus
            ):
                assert far not in zones.dynamic_blocks

    def test_more_power_larger_zone(self, zone_scenario, active_pus, covered_slot):
        small = compute_zones(
            zone_scenario.environment, active_pus, covered_slot,
            probe_power_dbm=10.0,
        )
        large = compute_zones(
            zone_scenario.environment, active_pus, covered_slot,
            probe_power_dbm=20.0,
        )
        assert small.dynamic_blocks <= large.dynamic_blocks

    def test_uncovered_channel_has_no_static_zone(self, zone_scenario):
        plan = zone_scenario.environment.plan
        covered_physical = {
            plan.physical_for_slot(t.channel_slot).number
            for t in zone_scenario.towers
        }
        for slot in range(zone_scenario.params.num_channels):
            if plan.physical_for_slot(slot).number not in covered_physical:
                zones = compute_zones(
                    zone_scenario.environment, [], slot, probe_power_dbm=PROBE_DBM
                )
                assert zones.static_fraction == 0.0
                return
        pytest.skip("all slots covered in this scenario")


class TestRendering:
    def test_map_dimensions(self, zone_scenario, active_pus, covered_slot):
        zones = compute_zones(
            zone_scenario.environment, active_pus, covered_slot,
            probe_power_dbm=PROBE_DBM,
        )
        text = render_zone_map(zone_scenario.environment, zones, active_pus)
        lines = text.splitlines()
        grid = zone_scenario.environment.grid
        assert len(lines) == grid.rows
        assert all(len(line.split(" ")) == grid.cols for line in lines)

    def test_pu_marker_present(self, zone_scenario, active_pus, covered_slot):
        zones = compute_zones(
            zone_scenario.environment, active_pus, covered_slot,
            probe_power_dbm=PROBE_DBM,
        )
        text = render_zone_map(zone_scenario.environment, zones, active_pus)
        assert text.count("P") == len(active_pus)
