"""Unit tests for the plaintext WATCH matrices (eqs. (3)-(7))."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GridError
from repro.geo.grid import BlockGrid
from repro.geo.region import PrivacyRegion
from repro.watch.entities import PUReceiver, SUTransmitter
from repro.watch.matrices import (
    aggregate,
    all_positive,
    budget_matrix,
    indicator_matrix,
    pu_signal_matrix,
    pu_update_matrix,
    scaled_interference_matrix,
    su_request_matrix,
    zeros_matrix,
)
from repro.watch.params import WatchParameters

PARAMS = WatchParameters(num_channels=3)
GRID = BlockGrid(rows=2, cols=3, block_size_m=10.0)
NUM_BLOCKS = GRID.num_blocks


def small_e_matrix(value: int = 1000) -> np.ndarray:
    e = zeros_matrix(PARAMS.num_channels, NUM_BLOCKS)
    e[:] = value
    return e


class TestZeros:
    def test_shape_and_type(self):
        m = zeros_matrix(3, 6)
        assert m.shape == (3, 6)
        assert all(v == 0 for v in m.flat)
        assert isinstance(m[0, 0], int)


class TestPuMatrices:
    def test_signal_matrix_single_entry(self):
        pu = PUReceiver("pu", block_index=4, channel_slot=1, signal_strength_mw=2.5e-4)
        t = pu_signal_matrix(pu, PARAMS, NUM_BLOCKS)
        expected = PARAMS.encoder.encode(2.5e-4)
        assert t[1, 4] == expected
        assert sum(1 for v in t.flat if v != 0) == 1

    def test_inactive_pu_all_zero(self):
        pu = PUReceiver("pu", block_index=4, channel_slot=None)
        t = pu_signal_matrix(pu, PARAMS, NUM_BLOCKS)
        assert all(v == 0 for v in t.flat)

    def test_block_out_of_range(self):
        pu = PUReceiver("pu", block_index=99, channel_slot=0, signal_strength_mw=1e-4)
        with pytest.raises(GridError):
            pu_signal_matrix(pu, PARAMS, NUM_BLOCKS)

    def test_channel_out_of_range(self):
        pu = PUReceiver("pu", block_index=0, channel_slot=7, signal_strength_mw=1e-4)
        with pytest.raises(ConfigurationError):
            pu_signal_matrix(pu, PARAMS, NUM_BLOCKS)

    def test_update_matrix_is_t_minus_e(self):
        """§IV-B: W = T − E at the PU's cell, zero elsewhere."""
        pu = PUReceiver("pu", block_index=2, channel_slot=0, signal_strength_mw=1e-3)
        e = small_e_matrix(500)
        w = pu_update_matrix(pu, e, PARAMS)
        t_value = PARAMS.encoder.encode(1e-3)
        assert w[0, 2] == t_value - 500
        assert sum(1 for v in w.flat if v != 0) == 1

    def test_update_matrix_inactive_zero(self):
        pu = PUReceiver("pu", block_index=2, channel_slot=None)
        w = pu_update_matrix(pu, small_e_matrix(), PARAMS)
        assert all(v == 0 for v in w.flat)


class TestBudget:
    def test_equation_4_equivalence(self):
        """N == T' where a PU is present and == E elsewhere (eq. (4))."""
        e = small_e_matrix(700)
        pu_a = PUReceiver("a", block_index=1, channel_slot=0, signal_strength_mw=2e-3)
        pu_b = PUReceiver("b", block_index=3, channel_slot=2, signal_strength_mw=5e-4)
        w_sum = aggregate(
            [pu_update_matrix(pu_a, e, PARAMS), pu_update_matrix(pu_b, e, PARAMS)]
        )
        n = budget_matrix(w_sum, e)
        assert n[0, 1] == PARAMS.encoder.encode(2e-3)
        assert n[2, 3] == PARAMS.encoder.encode(5e-4)
        # Every other cell keeps the E value.
        for c in range(PARAMS.num_channels):
            for b in range(NUM_BLOCKS):
                if (c, b) not in ((0, 1), (2, 3)):
                    assert n[c, b] == 700

    def test_aggregate_needs_input(self):
        with pytest.raises(ConfigurationError):
            aggregate([])

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            budget_matrix(zeros_matrix(2, 3), zeros_matrix(3, 3))


class TestSuMatrices:
    @staticmethod
    def _request(su, region=None, channels=None):
        from repro.radio.pathloss import LogDistanceModel

        model = LogDistanceModel(600e6, exponent=3.0)
        return su_request_matrix(
            su,
            GRID,
            PARAMS,
            pathloss_for_channel=lambda c: model,
            exclusion_distance_for_channel=lambda c: 1e5,
            region=region,
            channels=channels,
        )

    def test_entry_is_eirp_times_gain(self):
        su = SUTransmitter("su", block_index=0, tx_power_dbm=20.0)
        f = self._request(su)
        from repro.radio.pathloss import LogDistanceModel

        model = LogDistanceModel(600e6, exponent=3.0)
        gain = model.gain_linear(GRID.distance_m(0, 5))
        assert f[0, 5] == PARAMS.encoder.encode(su.eirp_mw * gain)

    def test_channel_subset(self):
        su = SUTransmitter("su", block_index=0, tx_power_dbm=20.0)
        f = self._request(su, channels=[1])
        assert all(f[0, b] == 0 for b in range(NUM_BLOCKS))
        assert any(f[1, b] != 0 for b in range(NUM_BLOCKS))
        assert all(f[2, b] == 0 for b in range(NUM_BLOCKS))

    def test_region_masks_entries(self):
        su = SUTransmitter("su", block_index=0, tx_power_dbm=20.0)
        region = PrivacyRegion(GRID, frozenset({0, 1, 2}))
        f = self._request(su, region=region)
        for b in range(3, NUM_BLOCKS):
            assert all(f[c, b] == 0 for c in range(PARAMS.num_channels))

    def test_invalid_channel_rejected(self):
        su = SUTransmitter("su", block_index=0)
        with pytest.raises(ConfigurationError):
            self._request(su, channels=[9])

    def test_su_block_out_of_range(self):
        su = SUTransmitter("su", block_index=77)
        with pytest.raises(GridError):
            self._request(su)


class TestDecisionAlgebra:
    def test_scaled_interference(self):
        f = zeros_matrix(3, NUM_BLOCKS)
        f[1, 2] = 10
        r = scaled_interference_matrix(f, PARAMS)
        assert r[1, 2] == 10 * PARAMS.sinr_plus_redn_int

    def test_indicator(self):
        n = small_e_matrix(100)
        r = zeros_matrix(3, NUM_BLOCKS)
        r[0, 0] = 100
        r[0, 1] = 99
        i = indicator_matrix(n, r)
        assert i[0, 0] == 0
        assert i[0, 1] == 1
        assert i[2, 5] == 100

    def test_indicator_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            indicator_matrix(zeros_matrix(2, 2), zeros_matrix(2, 3))

    def test_all_positive(self):
        m = small_e_matrix(1)
        assert all_positive(m)
        m[1, 1] = 0
        assert not all_positive(m)
        m[1, 1] = -5
        assert not all_positive(m)
