"""Write-ahead journal: framing, durability barriers, crash-shaped reads."""

import errno
import io

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.errors import (
    JournalCorruptError,
    JournalDiskFullError,
    JournalError,
    JournalReplayError,
)
from repro.resilience.journal import (
    JOURNAL_HEADER,
    EpochJournal,
    JournaledClock,
    JournalingRandomSource,
    JournalWriter,
    ReplayClock,
    ReplayRandomSource,
    read_journal,
)


def _journal_bytes(*appends, fsync_every=1) -> bytes:
    buffer = io.BytesIO()
    writer = JournalWriter(fileobj=buffer, fsync_every=fsync_every)
    for kind, body in appends:
        writer.append(kind, body)
    writer.barrier()  # close() would also close the BytesIO
    return buffer.getvalue()


class TestWriter:
    def test_fresh_file_gets_header(self, tmp_path):
        path = tmp_path / "epoch.journal"
        JournalWriter(path).close()
        assert path.read_bytes() == JOURNAL_HEADER

    def test_reopen_appends_without_second_header(self, tmp_path):
        path = tmp_path / "epoch.journal"
        with JournalWriter(path) as writer:
            writer.append("note", b"first")
        with JournalWriter(path) as writer:
            writer.append("note", b"second")
        result = read_journal(path)
        assert [r.body for r in result.records] == [b"first", b"second"]
        assert path.read_bytes().count(JOURNAL_HEADER) == 1

    def test_requires_exactly_one_device(self, tmp_path):
        with pytest.raises(JournalError):
            JournalWriter()
        with pytest.raises(JournalError):
            JournalWriter(tmp_path / "j", fileobj=io.BytesIO())

    def test_rejects_nonpositive_fsync_every(self):
        with pytest.raises(JournalError):
            JournalWriter(fileobj=io.BytesIO(), fsync_every=0)

    def test_append_after_close_raises(self):
        writer = JournalWriter(fileobj=io.BytesIO())
        writer.close()
        with pytest.raises(JournalError):
            writer.append("note", b"late")

    def test_sequence_numbers_are_dense(self):
        writer = JournalWriter(fileobj=io.BytesIO())
        assert [writer.append("note", b"") for _ in range(3)] == [0, 1, 2]
        assert writer.records_written == 3


class TestCrashSemantics:
    def test_simulate_crash_drops_unsynced_tail(self, tmp_path):
        path = tmp_path / "epoch.journal"
        writer = JournalWriter(path, fsync_every=100)
        for i in range(3):
            writer.append("note", b"durable-%d" % i)
        writer.barrier()
        writer.append("note", b"lost-1")
        writer.append("note", b"lost-2")
        writer.simulate_crash()
        result = read_journal(path)
        assert not result.torn  # truncation lands on a frame boundary
        assert [r.body for r in result.records] == [
            b"durable-0",
            b"durable-1",
            b"durable-2",
        ]

    def test_simulate_crash_needs_a_path(self):
        writer = JournalWriter(fileobj=io.BytesIO())
        with pytest.raises(JournalError):
            writer.simulate_crash()

    def test_torn_tail_tolerated_and_reported(self):
        raw = _journal_bytes(("note", b"a"), ("note", b"b"))
        torn = raw[:-3]  # cut into the final record's checksum
        result = read_journal(torn)
        assert result.torn
        assert [r.body for r in result.records] == [b"a"]

    def test_every_truncation_yields_prefix_or_typed_error(self):
        raw = _journal_bytes(("note", b"alpha"), ("note", b"beta"))
        for cut in range(len(raw)):
            prefix = raw[:cut]
            if cut < len(JOURNAL_HEADER):
                with pytest.raises(JournalCorruptError):
                    read_journal(prefix)
                continue
            result = read_journal(prefix)
            assert len(result.records) <= 2  # never invents records

    def test_strict_mode_rejects_torn_tail(self):
        raw = _journal_bytes(("note", b"a"), ("note", b"b"))
        with pytest.raises(JournalCorruptError):
            read_journal(raw[:-3], strict=True)

    def test_mid_file_corruption_is_not_a_torn_tail(self):
        raw = bytearray(_journal_bytes(("note", b"aaaa"), ("note", b"bbbb")))
        raw[len(JOURNAL_HEADER) + 3] ^= 0xFF  # flip a byte in record 0
        with pytest.raises(JournalCorruptError):
            read_journal(bytes(raw))

    def test_missing_header_rejected(self):
        with pytest.raises(JournalCorruptError):
            read_journal(b"not a journal")


class _ENOSPCFile(io.BytesIO):
    """Raises ENOSPC once more than ``limit`` bytes have been written."""

    def __init__(self, limit: int) -> None:
        super().__init__()
        self.limit = limit

    def write(self, data):
        if self.tell() + len(data) > self.limit:
            raise OSError(errno.ENOSPC, "device full")
        return super().write(data)


class TestDiskFull:
    def test_enospc_surfaces_as_typed_error(self):
        writer = JournalWriter(
            fileobj=_ENOSPCFile(len(JOURNAL_HEADER) + 8), fsync_every=1
        )
        with pytest.raises(JournalDiskFullError):
            writer.append("note", b"x" * 64)

    def test_swap_device_resumes_appends(self):
        first = _ENOSPCFile(len(JOURNAL_HEADER) + 8)
        writer = JournalWriter(fileobj=first, fsync_every=1)
        with pytest.raises(JournalDiskFullError):
            writer.append("note", b"x" * 64)
        second = io.BytesIO()
        writer.swap_device(fileobj=second)
        writer.append("note", b"after-swap")
        writer.barrier()
        result = read_journal(second.getvalue())
        assert [r.body for r in result.records] == [b"after-swap"]


class TestEpochJournalSchema:
    def test_draw_and_clock_streams_round_trip(self):
        buffer = io.BytesIO()
        journal = EpochJournal(JournalWriter(fileobj=buffer, fsync_every=1))
        journal.record_draw(16, 0xBEEF)
        journal.record_clock(1_700_000_000.5)
        journal.record_draw(128, 1 << 100)
        journal.barrier()
        result = read_journal(buffer.getvalue())
        assert result.draws() == ((16, 0xBEEF), (128, 1 << 100))
        assert result.clocks() == (1_700_000_000.5,)

    def test_phase_markers_carry_round_ids(self):
        buffer = io.BytesIO()
        journal = EpochJournal(JournalWriter(fileobj=buffer, fsync_every=100))
        journal.phase1_committed("round-0")
        journal.phase2_committed("round-0")
        journal.epoch_commit("shard-1", 4)
        journal.promote("shard-1", 4)
        journal.barrier()
        result = read_journal(buffer.getvalue())
        assert result.of_kind("phase1")[0].body == b"round-0"
        assert result.of_kind("phase2")[0].body == b"round-0"
        assert result.of_kind("epoch-commit")[0].body == b"shard-1:4"
        assert result.of_kind("promote")[0].body == b"shard-1:4"

    def test_barrier_makes_marker_durable_before_fsync_every(self, tmp_path):
        path = tmp_path / "epoch.journal"
        writer = JournalWriter(path, fsync_every=1000)
        journal = EpochJournal(writer)
        journal.record_draw(8, 42)
        journal.phase1_committed("round-0")  # barrier inside
        writer.simulate_crash()
        result = read_journal(path)
        assert result.draws() == ((8, 42),)
        assert len(result.of_kind("phase1")) == 1

    def test_context_manager_flushes_buffered_tail_on_exit(self, tmp_path):
        # Regression: a bare `EpochJournal(JournalWriter(path))` that is
        # never closed leaves up to fsync_every-1 records in the write
        # buffer.  The context-manager exit must flush them, even when
        # the body raises.
        path = tmp_path / "epoch.journal"
        with pytest.raises(RuntimeError):
            with EpochJournal(JournalWriter(path, fsync_every=256)) as journal:
                journal.note("buffered-well-below-fsync-every")
                raise RuntimeError("body crashed")
        result = read_journal(path)
        assert [r.kind for r in result.records] == ["note"]
        assert not result.torn

    def test_mid_buffer_kill_loses_only_the_unsynced_tail(self, tmp_path):
        # The failure the context manager guards against: a kill between
        # fsyncs drops the buffered records — durable prefix intact.
        path = tmp_path / "epoch.journal"
        writer = JournalWriter(path, fsync_every=256)
        journal = EpochJournal(writer)
        journal.note("durable")
        journal.barrier()
        journal.note("buffered-at-kill-time")
        writer.simulate_crash()
        result = read_journal(path)
        assert [r.body for r in result.of_kind("note")] == [b"durable\x00"]
        assert not result.torn


class TestReplaySources:
    def test_journaled_rng_replays_to_exact_values(self):
        buffer = io.BytesIO()
        journal = EpochJournal(JournalWriter(fileobj=buffer, fsync_every=1))
        live = JournalingRandomSource(DeterministicRandomSource(7), journal)
        drawn = [live.randbits(bits) for bits in (8, 64, 256, 8)]
        journal.barrier()
        assert live.draws_journaled == 4

        replay = ReplayRandomSource(read_journal(buffer.getvalue()).draws())
        assert [replay.randbits(bits) for bits in (8, 64, 256, 8)] == drawn
        assert replay.replayed_draws == 4
        assert replay.exhausted

    def test_bit_width_divergence_is_typed(self):
        replay = ReplayRandomSource([(8, 42)])
        with pytest.raises(JournalReplayError):
            replay.randbits(16)

    def test_exhaustion_without_fallback_is_typed(self):
        replay = ReplayRandomSource([])
        with pytest.raises(JournalReplayError):
            replay.randbits(8)

    def test_fallback_engages_past_the_journal(self):
        fallback = DeterministicRandomSource(99)
        expected = DeterministicRandomSource(99).randbits(32)
        replay = ReplayRandomSource([(8, 1)], fallback=fallback)
        assert replay.randbits(8) == 1
        assert replay.randbits(32) == expected
        assert replay.fallback_draws == 1

    def test_clock_streams_round_trip(self):
        buffer = io.BytesIO()
        journal = EpochJournal(JournalWriter(fileobj=buffer, fsync_every=1))
        ticks = iter([10.0, 20.0])
        clock = JournaledClock(journal, base=lambda: next(ticks))
        assert [clock(), clock()] == [10.0, 20.0]
        journal.barrier()

        replay = ReplayClock(
            read_journal(buffer.getvalue()).clocks(), fallback=lambda: 99.0
        )
        assert [replay(), replay(), replay()] == [10.0, 20.0, 99.0]
        assert replay.replayed_reads == 2
        assert replay.fallback_reads == 1
