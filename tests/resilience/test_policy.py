"""Retry policy engine: jitter, budgets, breakers, idempotency."""

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.errors import CircuitOpenError, RetryExhaustedError
from repro.resilience.policy import (
    CircuitBreaker,
    IdempotencyCache,
    RetryPolicy,
    decorrelated_jitter,
    run_with_policy,
)


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class Flaky:
    """Fails ``failures`` times, then returns ``value`` forever."""

    def __init__(self, failures: int, exc=ValueError, value="ok") -> None:
        self.failures = failures
        self.exc = exc
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"failure {self.calls}")
        return self.value


class TestDecorrelatedJitter:
    def test_stays_within_band(self):
        rng = DeterministicRandomSource(3)
        previous = 0.0
        for _ in range(100):
            sleep = decorrelated_jitter(previous, 0.01, 1.0, rng)
            assert 0.01 <= sleep <= 1.0
            previous = sleep

    def test_nonpositive_previous_uses_base(self):
        rng = DeterministicRandomSource(3)
        sleep = decorrelated_jitter(0.0, 0.5, 10.0, rng)
        assert 0.5 <= sleep <= 1.5  # uniform(base, base * 3)

    def test_deterministic_for_a_seeded_rng(self):
        a = [
            decorrelated_jitter(0.0, 0.01, 1.0, DeterministicRandomSource(5))
            for _ in range(3)
        ]
        assert a[0] == a[1] == a[2]


class TestRunWithPolicy:
    def test_success_is_single_attempt_no_sleep(self):
        sleeps = []
        result = run_with_policy(
            lambda: "value",
            RetryPolicy(max_attempts=5),
            sleep=sleeps.append,
        )
        assert result == "value"
        assert sleeps == []

    def test_retries_then_succeeds(self):
        op = Flaky(failures=2)
        sleeps = []
        retries = []
        result = run_with_policy(
            op,
            RetryPolicy(max_attempts=4, base_backoff_s=0.01, backoff_cap_s=0.1),
            rng=DeterministicRandomSource(1),
            sleep=sleeps.append,
            on_retry=lambda attempt, exc, s: retries.append((attempt, s)),
        )
        assert result == "ok"
        assert op.calls == 3
        assert len(sleeps) == 2
        assert all(0.0 < s <= 0.1 for s in sleeps)
        assert [attempt for attempt, _ in retries] == [1, 2]

    def test_exhaustion_chains_last_failure(self):
        op = Flaky(failures=10)
        with pytest.raises(RetryExhaustedError) as info:
            run_with_policy(
                op, RetryPolicy(max_attempts=3), sleep=lambda _s: None
            )
        assert op.calls == 3
        assert isinstance(info.value.__cause__, ValueError)

    def test_non_retryable_propagates_immediately(self):
        op = Flaky(failures=10, exc=KeyError)
        with pytest.raises(KeyError):
            run_with_policy(
                op,
                RetryPolicy(max_attempts=5, retryable=(ValueError,)),
                sleep=lambda _s: None,
            )
        assert op.calls == 1

    def test_budget_stops_before_attempts_run_out(self):
        clock = FakeClock()

        def sleep(seconds: float) -> None:
            clock.advance(seconds)

        op = Flaky(failures=100)
        with pytest.raises(RetryExhaustedError):
            run_with_policy(
                op,
                RetryPolicy(
                    max_attempts=1000,
                    base_backoff_s=0.1,
                    backoff_cap_s=0.1,
                    budget_s=0.35,
                ),
                clock=clock,
                sleep=sleep,
            )
        assert op.calls < 10  # the wall budget cut it off, not attempts

    def test_zero_backoff_never_calls_sleep(self):
        sleeps = []
        op = Flaky(failures=2)
        run_with_policy(
            op,
            RetryPolicy(max_attempts=4, base_backoff_s=0.0, backoff_cap_s=0.0),
            sleep=sleeps.append,
        )
        assert sleeps == []


class TestCircuitBreaker:
    def test_opens_at_threshold_and_fails_fast(self):
        clock = FakeClock()
        breaker = CircuitBreaker("stp", failure_threshold=3, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.before_call()  # probe allowed
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(4.9)
        assert breaker.state == CircuitBreaker.OPEN  # fresh timeout

    def test_open_circuit_is_not_retried_by_the_policy(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        breaker.record_failure()
        op = Flaky(failures=0)
        with pytest.raises(CircuitOpenError):
            run_with_policy(
                op,
                RetryPolicy(max_attempts=5),
                breaker=breaker,
                sleep=lambda _s: None,
            )
        assert op.calls == 0

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED


class TestIdempotencyCache:
    def test_lru_eviction(self):
        cache = IdempotencyCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_hit_and_miss_counters(self):
        cache = IdempotencyCache()
        cache.put("k", "v")
        cache.get("k")
        cache.get("absent")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            IdempotencyCache(capacity=0)

    def test_policy_short_circuits_on_cached_result(self):
        cache = IdempotencyCache()
        op = Flaky(failures=0, value="first")
        policy = RetryPolicy(max_attempts=1)
        first = run_with_policy(
            op, policy, idempotency_key="req-1", cache=cache
        )
        again = run_with_policy(
            op, policy, idempotency_key="req-1", cache=cache
        )
        assert first == again == "first"
        assert op.calls == 1  # second call never re-executed

    def test_cached_none_result_still_short_circuits(self):
        cache = IdempotencyCache()
        calls = []

        def op():
            calls.append(1)
            return None

        policy = RetryPolicy(max_attempts=1)
        run_with_policy(op, policy, idempotency_key="k", cache=cache)
        run_with_policy(op, policy, idempotency_key="k", cache=cache)
        assert len(calls) == 1
