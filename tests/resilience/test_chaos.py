"""Chaos property: byte-identical transcripts + valid licenses under faults.

Every named fault plan (and two composed schedules) must preserve the
paper's externally visible protocol bytes.  One harness is shared per
module so the control transcript is built once.
"""

import pytest

from repro.errors import ChaosPlanError
from repro.resilience.chaos import (
    PLAN_NAMES,
    ChaosHarness,
    fingerprint_message,
)

@pytest.fixture(scope="module")
def harness():
    return ChaosHarness(seed=7, shards=2, rounds=2, key_bits=256)


class TestEveryPlan:
    @pytest.mark.parametrize("plan", PLAN_NAMES)
    def test_plan_preserves_transcript_and_licenses(self, harness, plan):
        result = harness.run([plan])
        assert result.transcript_equal, result.notes
        assert result.licenses_valid, result.notes
        assert result.ok

    def test_coordinator_crash_replays_from_journal_only(self, harness):
        result = harness.run(["coordinator-crash"])
        assert result.replayed_draws > 0
        assert result.fallback_draws == 0  # every byte came from the disk
        assert result.exact_segments == harness.rounds + 1  # enrol + rounds

    def test_disk_full_replays_completed_rounds_exactly(self, harness):
        result = harness.run(["journal-disk-full"])
        assert result.ok
        # The interrupted round re-runs on fresh entropy: fallback draws
        # are expected, and one segment is excluded from byte-equality.
        assert result.fallback_draws > 0
        assert result.exact_segments == harness.rounds  # final round re-run

    def test_kill_shard_fails_over_once(self, harness):
        result = harness.run(["kill-shard"])
        assert result.ok
        assert result.failovers >= 1

    def test_drop_links_retries_in_place(self, harness):
        result = harness.run(["drop-links"])
        assert result.ok
        assert result.fault_stats["dropped"] > 0
        assert result.drops_retried == result.fault_stats["dropped"]
        assert result.failovers == 0  # drops never escalate to failover

    def test_stp_outage_drains_without_rebuilding_messages(self, harness):
        result = harness.run(["stp-outage"])
        assert result.ok
        assert any("stp outage drained" in note for note in result.notes)

    def test_kill9_coldstart_rebuilds_from_store_byte_exactly(self, harness):
        result = harness.run(["kill9-then-coldstart"])
        assert result.ok
        # The journal was compacted to a marker, the shard rebuilt from
        # the durable store, and *every* segment (enrol + each round)
        # still matches the uninterrupted control byte for byte.
        assert result.exact_segments == harness.rounds + 1
        assert any(note.startswith("checkpoint ") for note in result.notes)
        assert any("cold-started from" in note for note in result.notes)


class TestComposedSchedules:
    def test_kill_plus_drop(self, harness):
        result = harness.run(["kill-shard", "drop-links"])
        assert result.ok
        assert result.failovers >= 1
        assert result.fault_stats["dropped"] > 0

    def test_crash_plus_outage(self, harness):
        result = harness.run(["coordinator-crash", "stp-outage"])
        assert result.ok
        assert result.fallback_draws == 0


class TestScheduleValidation:
    def test_unknown_plan_rejected(self, harness):
        with pytest.raises(ChaosPlanError):
            harness.run(["meteor-strike"])

    def test_empty_schedule_rejected(self, harness):
        with pytest.raises(ChaosPlanError):
            harness.run([])

    def test_two_crashing_plans_rejected(self, harness):
        with pytest.raises(ChaosPlanError):
            harness.run(["coordinator-crash", "journal-disk-full"])

    def test_nonpositive_rounds_rejected(self):
        with pytest.raises(ChaosPlanError):
            ChaosHarness(rounds=0)


class TestFingerprint:
    def test_depends_on_link_identity(self):
        class Msg:
            @staticmethod
            def to_bytes() -> bytes:
                return b"payload"

        base = fingerprint_message(Msg(), "sdc", "stp")
        assert fingerprint_message(Msg(), "sdc", "stp") == base
        assert fingerprint_message(Msg(), "stp", "sdc") != base


class TestTracedChaos:
    """Tracing is a pure observer of the chaos harness.

    The tracer draws span ids from its own RNG, so a traced control run
    must reproduce the untraced transcript byte for byte — and because
    retries/failovers happen *inside* one logical sub-query span, a
    faulted run's span tree has the same structural signature as the
    clean run's.
    """

    def test_traced_control_transcript_is_byte_identical(self, harness):
        from repro.telemetry import Tracer

        untraced = harness.control()
        tracer = Tracer()
        traced = harness.control(tracer=tracer)
        assert traced.segments == untraced.segments
        assert traced.granted == untraced.granted
        assert len(tracer.roots) == harness.rounds
        assert all(root.name == "round" for root in tracer.roots)

    def test_span_signatures_identical_clean_vs_faulted(self, harness):
        from repro.telemetry import Tracer

        clean = Tracer()
        harness.control(tracer=clean)
        faulted = Tracer()
        result = harness.run(["drop-links"], tracer=faulted)
        assert result.ok
        assert result.fault_stats["dropped"] > 0
        assert [r.signature() for r in clean.roots] == [
            r.signature() for r in faulted.roots
        ]

    def test_traced_faulted_run_still_transcript_equal(self, harness):
        from repro.telemetry import Tracer

        result = harness.run(["kill-shard"], tracer=Tracer())
        assert result.transcript_equal, result.notes
        assert result.licenses_valid, result.notes


class TestWorkloadComposition:
    """Chaos plans composed with named workloads (PR 10 tentpole):
    the workload script drives round subjects and inter-round PU churn
    identically in control and faulted runs, so transcript byte-equality
    still holds under faults."""

    @pytest.fixture(scope="class")
    def storm_harness(self):
        return ChaosHarness(
            seed=7, shards=2, rounds=2, key_bits=256,
            workload="pu-churn-storm",
        )

    def test_flash_crowd_plus_kill_shard(self):
        harness = ChaosHarness(
            seed=7, shards=2, rounds=2, key_bits=256, workload="flash-crowd"
        )
        result = harness.run(["kill-shard"])
        assert result.transcript_equal, result.notes
        assert result.licenses_valid, result.notes
        assert result.workload == "flash-crowd"
        assert result.failovers >= 1

    def test_churn_storm_plus_asymmetric_partition(self, storm_harness):
        result = storm_harness.run(["asymmetric-partition"])
        assert result.transcript_equal, result.notes
        assert result.licenses_valid, result.notes
        assert result.to_dict()["workload"] == "pu-churn-storm"

    def test_churn_storm_script_carries_updates(self, storm_harness):
        storm_harness.control()  # compiles the script on first build
        script = storm_harness._script
        assert script is not None and len(script) == storm_harness.rounds
        assert sum(len(churn) for _, churn in script) >= 1

    def test_script_is_stable_across_runs(self, storm_harness):
        before = storm_harness._script
        storm_harness.run(["drop-links"])
        assert storm_harness._script == before

    def test_workload_survives_crash_replay(self):
        harness = ChaosHarness(
            seed=7, shards=2, rounds=2, key_bits=256,
            workload="pu-churn-storm",
        )
        result = harness.run(["coordinator-crash"])
        assert result.transcript_equal, result.notes
        assert result.licenses_valid, result.notes
        # Churn encryption randomness replays from the journal, never
        # from the differently seeded fallback source.
        assert result.fallback_draws == 0

    def test_unknown_workload_rejected_up_front(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ChaosHarness(workload="tsunami")

    def test_legacy_harness_has_no_script(self, harness):
        harness.control()
        assert harness._script is None
        assert harness.run(["drop-links"]).workload == ""
