"""Partition-tolerance chaos drills: leases, fences, gray failures.

Byte-equality for *every* plan (the four partition plans included) is
already pinned by ``TestEveryPlan`` in ``test_chaos.py``; this module
asserts the partition-specific behaviour — who got fenced, who got
promoted, who was merely suspected — plus the exactly-one-writer audit
itself against hand-forged journals.
"""

import io

import pytest

from repro.resilience.chaos import ChaosHarness
from repro.resilience.journal import EpochJournal, JournalWriter, read_journal
from repro.resilience.recovery import check_exactly_one_writer
from repro.store import MemoryStateStore


@pytest.fixture(scope="module")
def harness():
    return ChaosHarness(seed=7, shards=2, rounds=2, key_bits=256)


class TestAsymmetricPartition:
    def test_zombie_write_rejected_after_fence_then_promote(self, harness):
        result = harness.run(["asymmetric-partition"])
        assert result.ok, result.notes
        # The router->shard cut looks like a dead shard: one failover,
        # fence-then-promote.  The shard itself never died, and its
        # post-heal write under the dead lease must bounce.
        assert result.failovers == 1
        assert result.fenced_rejections == 1
        assert result.writer_violations == 0
        assert any("zombie write rejected" in note for note in result.notes)
        assert not any("SPLIT BRAIN" in note for note in result.notes)


class TestSplitBrainPromote:
    def test_deposed_primary_cannot_commit(self, harness):
        result = harness.run(["split-brain-promote"])
        assert result.ok, result.notes
        # Operator-driven promotion: no failure was detected, so the
        # router's failover counter stays at zero — the *authority*
        # deposed the primary, and the stale lease died at the shard.
        assert result.failovers == 0
        assert result.fenced_rejections == 1
        assert result.writer_violations == 0
        assert result.transcript_equal, result.notes
        assert any(
            "post-fence write rejected" in note for note in result.notes
        )

    def test_journal_with_stale_writes_replays_to_control(self, harness):
        # Satellite: a journal carrying interleaved fence records and a
        # rejected stale-token write must still replay the control
        # transcript byte for byte when the coordinator also crashes.
        result = harness.run(["split-brain-promote", "coordinator-crash"])
        assert result.ok, result.notes
        assert result.fenced_rejections == 1
        assert result.replayed_draws > 0
        assert result.fallback_draws == 0  # every byte came from the disk
        assert result.writer_violations == 0


class TestGrayFailures:
    def test_clock_skew_suspects_but_never_promotes(self, harness):
        result = harness.run(["clock-skew"])
        assert result.ok, result.notes
        assert result.suspects >= 1
        assert result.failovers == 0  # staleness alone must not depose
        assert any("suspect" in note for note in result.notes)

    def test_slow_but_alive_shard_is_not_failed_over(self, harness):
        # The gray-failure regression: a shard answering slowly (armed
        # link delay both directions) trips the RTT quantile and gets
        # routed around — never spuriously promoted.
        result = harness.run(["gray-slow-shard"])
        assert result.ok, result.notes
        assert result.suspects >= 1
        assert result.failovers == 0
        assert result.fenced_rejections == 0  # nobody's lease was touched


class TestExactlyOneWriterAudit:
    def forge(self, script) -> EpochJournal:
        journal = EpochJournal(JournalWriter(fileobj=io.BytesIO()))
        script(journal)
        journal.barrier()
        return journal

    def read(self, journal: EpochJournal):
        return read_journal(journal.writer._fh.getvalue())

    def test_clean_history_has_no_violations(self):
        def script(j):
            j.fence("shard-0", 1, "manual")
            j.writer_commit("shard-0", 0, 1)
            j.fence("shard-0", 2, "failover")
            j.writer_commit("shard-0", 1, 2)

        journal = self.forge(script)
        assert check_exactly_one_writer(self.read(journal)) == ()

    def test_stale_token_commit_is_a_violation(self):
        def script(j):
            j.fence("shard-0", 1, "manual")
            j.fence("shard-0", 2, "failover")
            j.writer_commit("shard-0", 7, 1)  # zombie landed a write

        journal = self.forge(script)
        violations = check_exactly_one_writer(self.read(journal))
        assert len(violations) == 1
        violation = violations[0]
        assert violation.shard_id == "shard-0"
        assert violation.epoch_id == 7
        assert (violation.commit_token, violation.fence_token) == (1, 2)
        assert "after fence 2" in str(violation)

    def test_commit_before_the_fence_is_legitimate(self):
        # Append order matters: the incumbent committing *before* it was
        # deposed is the normal case, not a violation.
        def script(j):
            j.fence("shard-0", 1, "manual")
            j.writer_commit("shard-0", 0, 1)
            j.fence("shard-0", 2, "failover")

        journal = self.forge(script)
        assert check_exactly_one_writer(self.read(journal)) == ()

    def test_store_lagging_the_journal_is_a_violation(self):
        # A store whose persisted lease trails the journal would re-issue
        # a dead token on cold start — audit must flag it even though no
        # individual write misbehaved.
        def script(j):
            j.fence("shard-0", 3, "failover")

        journal = self.forge(script)
        store = MemoryStateStore()
        store.put_checkpoint("fence/shard-0", (2).to_bytes(8, "big"))
        violations = check_exactly_one_writer(self.read(journal), store=store)
        assert len(violations) == 1
        assert violations[0].commit_token == 2  # what the store would issue
        store.put_checkpoint("fence/shard-0", (3).to_bytes(8, "big"))
        assert check_exactly_one_writer(self.read(journal), store=store) == ()
        store.close()
