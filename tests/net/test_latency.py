"""Unit tests for latency models."""

import pytest

from repro.net.latency import ConstantLatency, DistanceLatency


class TestConstantLatency:
    def test_components(self):
        model = ConstantLatency(rtt_seconds=0.02, bandwidth_bytes_per_s=1e6)
        assert model.delay_seconds(1_000_000, "a", "b") == pytest.approx(0.01 + 1.0)

    def test_zero_size(self):
        model = ConstantLatency(rtt_seconds=0.02)
        assert model.delay_seconds(0, "a", "b") == pytest.approx(0.01)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency().delay_seconds(-1, "a", "b")

    def test_monotone_in_size(self):
        model = ConstantLatency()
        assert model.delay_seconds(10_000, "a", "b") > model.delay_seconds(10, "a", "b")


class TestDistanceLatency:
    def test_known_positions(self):
        model = DistanceLatency(
            positions={"a": (0.0, 0.0), "b": (3_000.0, 4_000.0)},
            bandwidth_bytes_per_s=1e9,
        )
        # 5 km at 0.66c ≈ 25.3 µs propagation.
        delay = model.delay_seconds(0, "a", "b")
        assert delay == pytest.approx(5_000 / (299_792_458.0 * 0.66), rel=1e-6)

    def test_unknown_endpoint_uses_default(self):
        model = DistanceLatency(positions={}, default_distance_m=10_000.0)
        assert model.delay_seconds(0, "x", "y") > 0

    def test_farther_is_slower(self):
        model = DistanceLatency(
            positions={"a": (0, 0), "near": (100, 0), "far": (100_000, 0)}
        )
        assert model.delay_seconds(0, "a", "far") > model.delay_seconds(0, "a", "near")
