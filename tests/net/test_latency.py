"""Unit tests for latency models."""

import pytest

from repro.net.latency import ConstantLatency, DistanceLatency


class TestConstantLatency:
    def test_components(self):
        model = ConstantLatency(rtt_seconds=0.02, bandwidth_bytes_per_s=1e6)
        assert model.delay_seconds(1_000_000, "a", "b") == pytest.approx(0.01 + 1.0)

    def test_zero_size(self):
        model = ConstantLatency(rtt_seconds=0.02)
        assert model.delay_seconds(0, "a", "b") == pytest.approx(0.01)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency().delay_seconds(-1, "a", "b")

    def test_monotone_in_size(self):
        model = ConstantLatency()
        assert model.delay_seconds(10_000, "a", "b") > model.delay_seconds(10, "a", "b")


class TestDistanceLatency:
    def test_known_positions(self):
        model = DistanceLatency(
            positions={"a": (0.0, 0.0), "b": (3_000.0, 4_000.0)},
            bandwidth_bytes_per_s=1e9,
        )
        # 5 km at 0.66c ≈ 25.3 µs propagation.
        delay = model.delay_seconds(0, "a", "b")
        assert delay == pytest.approx(5_000 / (299_792_458.0 * 0.66), rel=1e-6)

    def test_unknown_endpoint_uses_default(self):
        model = DistanceLatency(positions={}, default_distance_m=10_000.0)
        assert model.delay_seconds(0, "x", "y") > 0

    def test_farther_is_slower(self):
        model = DistanceLatency(
            positions={"a": (0, 0), "near": (100, 0), "far": (100_000, 0)}
        )
        assert model.delay_seconds(0, "a", "far") > model.delay_seconds(0, "a", "near")


class TestSeededJitterLatency:
    def _model(self, seed=7, jitter_fraction=0.2):
        from repro.net.latency import SeededJitterLatency

        return SeededJitterLatency(
            ConstantLatency(rtt_seconds=0.02, bandwidth_bytes_per_s=1e6),
            seed=seed,
            jitter_fraction=jitter_fraction,
        )

    def test_jitter_is_bounded_and_additive(self):
        model = self._model()
        base = ConstantLatency(rtt_seconds=0.02, bandwidth_bytes_per_s=1e6)
        for _ in range(50):
            delay = model.delay_seconds(1000, "router", "shard-0")
            floor = base.delay_seconds(1000, "router", "shard-0")
            assert floor <= delay <= floor * 1.2

    def test_same_seed_replays_identical_delays(self):
        a, b = self._model(seed=7), self._model(seed=7)
        delays_a = [a.delay_seconds(100, "router", "shard-0") for _ in range(20)]
        delays_b = [b.delay_seconds(100, "router", "shard-0") for _ in range(20)]
        assert delays_a == delays_b

    def test_different_seeds_diverge(self):
        a, b = self._model(seed=7), self._model(seed=8)
        delays_a = [a.delay_seconds(100, "x", "y") for _ in range(10)]
        delays_b = [b.delay_seconds(100, "x", "y") for _ in range(10)]
        assert delays_a != delays_b

    def test_links_have_independent_streams(self):
        """Traffic on one link must not perturb another link's draws —
        the property that keeps multiplexed cluster runs reproducible."""
        quiet = self._model(seed=7)
        busy = self._model(seed=7)
        # The busy transport interleaves heavy traffic on other links.
        for _ in range(25):
            busy.delay_seconds(100, "router", "shard-1")
            busy.delay_seconds(100, "shard-1", "router")
        quiet_delays = [
            quiet.delay_seconds(100, "router", "shard-0") for _ in range(10)
        ]
        busy_delays = [
            busy.delay_seconds(100, "router", "shard-0") for _ in range(10)
        ]
        assert quiet_delays == busy_delays

    def test_directions_are_distinct_links(self):
        model = self._model()
        forward = model.delay_seconds(100, "a", "b")
        model_2 = self._model()
        backward = model_2.delay_seconds(100, "b", "a")
        assert forward != backward

    def test_zero_jitter_degenerates_to_base(self):
        model = self._model(jitter_fraction=0.0)
        base = ConstantLatency(rtt_seconds=0.02, bandwidth_bytes_per_s=1e6)
        assert model.delay_seconds(500, "a", "b") == pytest.approx(
            base.delay_seconds(500, "a", "b")
        )

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            self._model(jitter_fraction=-0.1)
