"""Injected transport faults: deterministic budgets on the wire log."""

from dataclasses import dataclass

import pytest

from repro.errors import LinkDownError, MessageDroppedError
from repro.net.latency import ConstantLatency
from repro.net.transport import (
    InMemoryTransport,
    MultiplexedTransport,
    resolve_multiplexed,
)


@dataclass
class Msg:
    def wire_size(self) -> int:
        return 10


class TestDropFaults:
    def test_drop_budget_consumed_one_send_at_a_time(self):
        transport = MultiplexedTransport()
        transport.inject_faults("a", "b", drop=2)
        for _ in range(2):
            with pytest.raises(MessageDroppedError):
                transport.send(Msg(), "a", "b")
        assert transport.send(Msg(), "a", "b") is not None
        assert transport.fault_stats["dropped"] == 2

    def test_dropped_send_records_nothing(self):
        transport = MultiplexedTransport()
        transport.inject_faults("a", "b", drop=1)
        with pytest.raises(MessageDroppedError):
            transport.send(Msg(), "a", "b")
        assert transport.count() == 0  # never hit the wire accounting

    def test_drop_is_per_directed_link(self):
        transport = MultiplexedTransport()
        transport.inject_faults("a", "b", drop=1)
        transport.send(Msg(), "b", "a")  # reverse direction unaffected
        with pytest.raises(MessageDroppedError):
            transport.send(Msg(), "a", "b")

    def test_budgets_are_additive(self):
        transport = MultiplexedTransport()
        transport.inject_faults("a", "b", drop=1)
        transport.inject_faults("a", "b", drop=1)
        for _ in range(2):
            with pytest.raises(MessageDroppedError):
                transport.send(Msg(), "a", "b")

    def test_drop_differs_from_link_down(self):
        transport = MultiplexedTransport()
        transport.fail_link("a", "b")
        with pytest.raises(LinkDownError):
            transport.send(Msg(), "a", "b")


class TestDelayAndDuplicate:
    def test_delay_stretches_next_n_sends(self):
        transport = MultiplexedTransport(latency=ConstantLatency(0.001))
        transport.inject_faults("a", "b", delay_s=0.5, delay_count=2)
        for _ in range(3):
            transport.send(Msg(), "a", "b")
        delays = [r.delay_seconds for r in transport.records]
        # The first two sends carry the injected 0.5 s on top of the
        # base model; the third is back to the base delay alone.
        assert delays[0] == pytest.approx(delays[2] + 0.5)
        assert delays[1] == pytest.approx(delays[2] + 0.5)
        assert delays[2] < 0.01
        assert transport.fault_stats["delayed"] == 2

    def test_duplicate_doubles_the_wire_log_entry(self):
        transport = MultiplexedTransport()
        transport.inject_faults("a", "b", duplicate=1)
        transport.send(Msg(), "a", "b")
        transport.send(Msg(), "a", "b")
        assert transport.count() == 3  # 2 copies + 1 normal
        assert transport.fault_stats["duplicated"] == 1


class TestReorder:
    def test_window_flushes_reversed(self):
        @dataclass
        class First:
            def wire_size(self) -> int:
                return 1

        @dataclass
        class Second:
            def wire_size(self) -> int:
                return 1

        transport = MultiplexedTransport()
        transport.inject_faults("a", "b", reorder_window=2)
        transport.send(First(), "a", "b")
        assert transport.count() == 0  # held back
        transport.send(Second(), "a", "b")
        assert [r.kind for r in transport.records] == ["Second", "First"]
        assert transport.fault_stats["reordered"] == 2

    def test_clear_faults_flushes_held_records(self):
        transport = MultiplexedTransport()
        transport.inject_faults("a", "b", reorder_window=3)
        transport.send(Msg(), "a", "b")
        assert transport.count() == 0
        transport.clear_faults()
        assert transport.count() == 1  # held record flushed to the log
        transport.send(Msg(), "a", "b")  # faults fully disarmed
        assert transport.count() == 2


class TestResolveMultiplexed:
    def test_identity(self):
        transport = MultiplexedTransport()
        assert resolve_multiplexed(transport) is transport

    def test_unwraps_inner_chain(self):
        class Wrapper:
            def __init__(self, inner):
                self.inner = inner

        mux = MultiplexedTransport()
        assert resolve_multiplexed(Wrapper(Wrapper(mux))) is mux

    def test_none_when_no_multiplexed_layer(self):
        assert resolve_multiplexed(InMemoryTransport()) is None
        assert resolve_multiplexed(None) is None
