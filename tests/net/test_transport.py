"""Unit tests for the accounted in-memory transport."""

from dataclasses import dataclass

import pytest

from repro.net.latency import ConstantLatency
from repro.net.transport import InMemoryTransport


@dataclass
class FakeMessage:
    size: int

    def wire_size(self) -> int:
        return self.size


class TestAccounting:
    def test_send_returns_message(self):
        transport = InMemoryTransport()
        msg = FakeMessage(10)
        assert transport.send(msg, "a", "b") is msg

    def test_total_bytes(self):
        transport = InMemoryTransport()
        transport.send(FakeMessage(100), "a", "b")
        transport.send(FakeMessage(50), "b", "a")
        assert transport.total_bytes() == 150
        assert transport.count() == 2

    def test_filter_by_kind(self):
        transport = InMemoryTransport()

        @dataclass
        class OtherMessage:
            def wire_size(self) -> int:
                return 7

        transport.send(FakeMessage(100), "a", "b")
        transport.send(OtherMessage(), "a", "b")
        assert transport.total_bytes("FakeMessage") == 100
        assert transport.total_bytes("OtherMessage") == 7
        assert transport.count("FakeMessage") == 1

    def test_by_kind_summary(self):
        transport = InMemoryTransport()
        transport.send(FakeMessage(10), "a", "b")
        transport.send(FakeMessage(20), "a", "b")
        assert transport.by_kind() == {"FakeMessage": (2, 30)}

    def test_records_have_metadata(self):
        transport = InMemoryTransport()
        transport.send(FakeMessage(1_000_000), "su-1", "sdc")
        record = transport.records[0]
        assert record.sender == "su-1"
        assert record.receiver == "sdc"
        assert record.size_mb == pytest.approx(1.0)

    def test_clear(self):
        transport = InMemoryTransport()
        transport.send(FakeMessage(10), "a", "b")
        transport.clear()
        assert transport.count() == 0


class TestLatencyIntegration:
    def test_no_model_zero_delay(self):
        transport = InMemoryTransport()
        transport.send(FakeMessage(10), "a", "b")
        assert transport.total_delay_seconds() == 0.0

    def test_constant_model_applied(self):
        transport = InMemoryTransport(latency=ConstantLatency(
            rtt_seconds=0.1, bandwidth_bytes_per_s=1000.0
        ))
        transport.send(FakeMessage(500), "a", "b")
        assert transport.total_delay_seconds() == pytest.approx(0.05 + 0.5)
