"""Unit tests for the accounted in-memory transport."""

from dataclasses import dataclass

import pytest

from repro.net.latency import ConstantLatency
from repro.net.transport import InMemoryTransport


@dataclass
class FakeMessage:
    size: int

    def wire_size(self) -> int:
        return self.size


class TestAccounting:
    def test_send_returns_message(self):
        transport = InMemoryTransport()
        msg = FakeMessage(10)
        assert transport.send(msg, "a", "b") is msg

    def test_total_bytes(self):
        transport = InMemoryTransport()
        transport.send(FakeMessage(100), "a", "b")
        transport.send(FakeMessage(50), "b", "a")
        assert transport.total_bytes() == 150
        assert transport.count() == 2

    def test_filter_by_kind(self):
        transport = InMemoryTransport()

        @dataclass
        class OtherMessage:
            def wire_size(self) -> int:
                return 7

        transport.send(FakeMessage(100), "a", "b")
        transport.send(OtherMessage(), "a", "b")
        assert transport.total_bytes("FakeMessage") == 100
        assert transport.total_bytes("OtherMessage") == 7
        assert transport.count("FakeMessage") == 1

    def test_by_kind_summary(self):
        transport = InMemoryTransport()
        transport.send(FakeMessage(10), "a", "b")
        transport.send(FakeMessage(20), "a", "b")
        assert transport.by_kind() == {"FakeMessage": (2, 30)}

    def test_records_have_metadata(self):
        transport = InMemoryTransport()
        transport.send(FakeMessage(1_000_000), "su-1", "sdc")
        record = transport.records[0]
        assert record.sender == "su-1"
        assert record.receiver == "sdc"
        assert record.size_mb == pytest.approx(1.0)

    def test_clear(self):
        transport = InMemoryTransport()
        transport.send(FakeMessage(10), "a", "b")
        transport.clear()
        assert transport.count() == 0


class TestLatencyIntegration:
    def test_no_model_zero_delay(self):
        transport = InMemoryTransport()
        transport.send(FakeMessage(10), "a", "b")
        assert transport.total_delay_seconds() == 0.0

    def test_constant_model_applied(self):
        transport = InMemoryTransport(latency=ConstantLatency(
            rtt_seconds=0.1, bandwidth_bytes_per_s=1000.0
        ))
        transport.send(FakeMessage(500), "a", "b")
        assert transport.total_delay_seconds() == pytest.approx(0.05 + 0.5)


class TestRecordCap:
    def test_ring_buffer_keeps_most_recent(self):
        transport = InMemoryTransport(max_records=2)
        for size in (10, 20, 30):
            transport.send(FakeMessage(size), "a", "b")
        assert [r.size_bytes for r in transport.records] == [20, 30]

    def test_totals_stay_exact_after_eviction(self):
        transport = InMemoryTransport(max_records=1)
        for size in (100, 50, 25):
            transport.send(FakeMessage(size), "a", "b")
        assert transport.total_bytes() == 175
        assert transport.count() == 3
        assert transport.by_kind() == {"FakeMessage": (3, 175)}
        assert len(transport.records) == 1

    def test_delay_totals_survive_eviction(self):
        transport = InMemoryTransport(
            latency=ConstantLatency(rtt_seconds=0.0, bandwidth_bytes_per_s=100.0),
            max_records=1,
        )
        transport.send(FakeMessage(100), "a", "b")  # 1.0 s
        transport.send(FakeMessage(200), "a", "b")  # 2.0 s
        assert transport.total_delay_seconds() == pytest.approx(3.0)

    def test_uncapped_by_default(self):
        transport = InMemoryTransport()
        for _ in range(10):
            transport.send(FakeMessage(1), "a", "b")
        assert len(transport.records) == 10
        assert transport.max_records is None

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            InMemoryTransport(max_records=0)

    def test_clear_resets_totals(self):
        transport = InMemoryTransport(max_records=2)
        transport.send(FakeMessage(10), "a", "b")
        transport.clear()
        assert transport.total_bytes() == 0
        assert transport.count() == 0


class TestParallelDelay:
    LATENCY = ConstantLatency(rtt_seconds=0.0, bandwidth_bytes_per_s=100.0)

    def test_single_link_equals_serial(self):
        transport = InMemoryTransport(latency=self.LATENCY)
        transport.send(FakeMessage(100), "a", "b")  # 1.0 s
        transport.send(FakeMessage(300), "a", "b")  # 3.0 s
        assert transport.total_delay_seconds(parallel=True) == pytest.approx(4.0)
        assert transport.total_delay_seconds() == pytest.approx(4.0)

    def test_independent_links_overlap(self):
        transport = InMemoryTransport(latency=self.LATENCY)
        transport.send(FakeMessage(100), "su-1", "sdc")  # 1.0 s on link A
        transport.send(FakeMessage(300), "su-2", "sdc")  # 3.0 s on link B
        transport.send(FakeMessage(200), "su-2", "sdc")  # 2.0 s on link B
        # Critical path = busiest link (su-2 -> sdc: 5.0 s), not the 6.0 s sum.
        assert transport.total_delay_seconds(parallel=True) == pytest.approx(5.0)
        assert transport.total_delay_seconds() == pytest.approx(6.0)

    def test_direction_matters(self):
        transport = InMemoryTransport(latency=self.LATENCY)
        transport.send(FakeMessage(100), "a", "b")
        transport.send(FakeMessage(100), "b", "a")
        assert transport.total_delay_seconds(parallel=True) == pytest.approx(1.0)

    def test_empty_transport(self):
        transport = InMemoryTransport()
        assert transport.total_delay_seconds(parallel=True) == 0.0


class TestMultiplexedTransport:
    def _mux(self, **kwargs):
        from repro.net.transport import MultiplexedTransport

        return MultiplexedTransport(**kwargs)

    def test_behaves_like_base_transport_by_default(self):
        transport = self._mux(latency=ConstantLatency(
            rtt_seconds=0.1, bandwidth_bytes_per_s=1000.0
        ))
        transport.send(FakeMessage(500), "router", "shard-0")
        assert transport.total_bytes() == 500
        assert transport.total_delay_seconds() == pytest.approx(0.05 + 0.5)

    def test_failed_link_raises_and_records_nothing(self):
        from repro.errors import LinkDownError

        transport = self._mux()
        transport.fail_link("router", "shard-0")
        with pytest.raises(LinkDownError):
            transport.send(FakeMessage(10), "router", "shard-0")
        # The bytes never made it onto the wire.
        assert transport.count() == 0
        assert transport.total_bytes() == 0
        # The reverse direction and other links still flow.
        transport.send(FakeMessage(10), "shard-0", "router")
        transport.send(FakeMessage(10), "router", "shard-1")
        assert transport.count() == 2

    def test_restore_link(self):
        transport = self._mux()
        transport.fail_link("a", "b")
        transport.restore_link("a", "b")
        transport.send(FakeMessage(1), "a", "b")
        assert transport.count() == 1

    def test_fail_endpoint_cuts_both_directions(self):
        from repro.errors import LinkDownError

        transport = self._mux()
        transport.fail_endpoint("shard-0")
        for sender, receiver in (("router", "shard-0"), ("shard-0", "router")):
            with pytest.raises(LinkDownError):
                transport.send(FakeMessage(1), sender, receiver)
        transport.restore_endpoint("shard-0")
        transport.send(FakeMessage(1), "router", "shard-0")
        assert transport.link_is_up("router", "shard-0")

    def test_per_link_latency_override(self):
        transport = self._mux(latency=ConstantLatency(
            rtt_seconds=1.0, bandwidth_bytes_per_s=1e12
        ))
        transport.configure_link(
            "router", "shard-0",
            latency=ConstantLatency(rtt_seconds=0.001, bandwidth_bytes_per_s=1e12),
        )
        transport.send(FakeMessage(0), "router", "shard-0")  # fast link
        transport.send(FakeMessage(0), "router", "shard-1")  # default link
        fast, slow = transport.records
        assert fast.delay_seconds == pytest.approx(0.0005)
        assert slow.delay_seconds == pytest.approx(0.5)

    def test_configured_link_with_no_model_is_free(self):
        transport = self._mux(latency=ConstantLatency(rtt_seconds=1.0))
        transport.configure_link("a", "b", latency=None)
        transport.send(FakeMessage(10), "a", "b")
        assert transport.total_delay_seconds() == 0.0

    def test_channel_binds_one_directed_link(self):
        transport = self._mux()
        channel = transport.channel("router", "shard-2")
        assert channel.link == ("router", "shard-2")
        channel.send(FakeMessage(42))
        record = transport.records[0]
        assert (record.sender, record.receiver) == ("router", "shard-2")
        assert record.size_bytes == 42

    def test_ring_buffer_eviction_across_multiplexed_links(self):
        transport = self._mux(max_records=2)
        transport.configure_link("router", "shard-1", latency=None)
        transport.send(FakeMessage(10), "router", "shard-0")
        transport.send(FakeMessage(20), "router", "shard-1")
        transport.send(FakeMessage(30), "shard-1", "router")
        assert [r.size_bytes for r in transport.records] == [20, 30]
        # Aggregates keep counting every message ever sent.
        assert transport.total_bytes() == 60
        assert transport.count() == 3


class TestMetricsMirroring:
    """Per-link transfer counters mirror the record log exactly.

    ``_record`` is the single accounting funnel, so whatever lands in
    ``records`` — ordinary sends, wire-level duplicates, reorder
    flushes — must land in the attached registry too, and dropped sends
    (never on the wire) must not.
    """

    def _expected_by_link(self, transport):
        counts: dict[str, int] = {}
        sizes: dict[str, int] = {}
        for record in transport.records:
            link = f"{record.sender}->{record.receiver}"
            counts[link] = counts.get(link, 0) + 1
            sizes[link] = sizes.get(link, 0) + record.size_bytes
        return counts, sizes

    def _assert_mirrored(self, transport, metrics):
        counts, sizes = self._expected_by_link(transport)
        snap = metrics.snapshot()["counters"]
        for link, count in counts.items():
            assert snap[f"transport_records_total{{link={link}}}"] == count
            assert snap[f"transport_bytes_total{{link={link}}}"] == sizes[link]
        # No phantom links: every series corresponds to observed records.
        recorded = {
            key for key in snap if key.startswith("transport_records_total")
        }
        assert recorded == {
            f"transport_records_total{{link={link}}}" for link in counts
        }

    def test_counters_match_records_per_link(self):
        from repro.net.transport import MultiplexedTransport
        from repro.telemetry import MetricsRegistry

        transport = MultiplexedTransport()
        metrics = MetricsRegistry()
        transport.attach_metrics(metrics)
        transport.send(FakeMessage(100), "su-0", "sdc")
        transport.send(FakeMessage(40), "sdc", "stp")
        transport.send(FakeMessage(60), "su-0", "sdc")
        self._assert_mirrored(transport, metrics)
        snap = metrics.snapshot()["counters"]
        assert snap["transport_records_total{link=su-0->sdc}"] == 2
        assert snap["transport_bytes_total{link=su-0->sdc}"] == 160

    def test_duplicates_counted_and_drops_not(self):
        from repro.errors import MessageDroppedError
        from repro.net.transport import MultiplexedTransport
        from repro.telemetry import MetricsRegistry

        transport = MultiplexedTransport()
        metrics = MetricsRegistry()
        transport.attach_metrics(metrics)
        transport.inject_faults("a", "b", drop=1, duplicate=1)
        with pytest.raises(MessageDroppedError):
            transport.send(FakeMessage(10), "a", "b")
        transport.send(FakeMessage(10), "a", "b")  # duplicated on the wire
        transport.send(FakeMessage(5), "a", "b")
        assert transport.count() == 3  # 2 copies + 1 plain, drop absent
        self._assert_mirrored(transport, metrics)

    def test_reorder_flush_is_mirrored(self):
        from repro.net.transport import MultiplexedTransport
        from repro.telemetry import MetricsRegistry

        transport = MultiplexedTransport()
        metrics = MetricsRegistry()
        transport.attach_metrics(metrics)
        transport.inject_faults("a", "b", reorder_window=3)
        transport.send(FakeMessage(1), "a", "b")
        transport.send(FakeMessage(2), "a", "b")
        # Held back — nothing recorded, nothing counted yet.
        assert transport.count() == 0
        assert metrics.snapshot()["counters"] == {}
        transport.clear_faults()  # flushes the held window
        assert transport.count() == 2
        self._assert_mirrored(transport, metrics)

    def test_aggregate_totals_match(self):
        from repro.net.transport import MultiplexedTransport
        from repro.telemetry import MetricsRegistry

        transport = MultiplexedTransport()
        metrics = MetricsRegistry()
        transport.attach_metrics(metrics)
        for size, link in ((10, ("a", "b")), (20, ("b", "c")), (30, ("a", "b"))):
            transport.send(FakeMessage(size), *link)
        snap = metrics.snapshot()["counters"]
        assert sum(
            v for k, v in snap.items() if k.startswith("transport_records_total")
        ) == transport.count()
        assert sum(
            v for k, v in snap.items() if k.startswith("transport_bytes_total")
        ) == transport.total_bytes()
