"""Unit tests for the communication-overhead summaries."""

import pytest

from repro.analysis.overhead import summarize_transport
from repro.crypto.rand import DeterministicRandomSource
from repro.net.transport import InMemoryTransport
from repro.pisa.protocol import PisaCoordinator
from repro.watch.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def round_transport():
    scenario = build_scenario(ScenarioConfig(seed=0, num_sus=1))
    transport = InMemoryTransport()
    coord = PisaCoordinator(
        scenario.environment,
        key_bits=256,
        rng=DeterministicRandomSource("overhead"),
        transport=transport,
    )
    for pu in scenario.pus:
        coord.enroll_pu(pu)
    su = scenario.sus[0]
    coord.enroll_su(su)
    coord.run_request_round(su.su_id)
    return transport


class TestSummaries:
    def test_all_message_kinds_present(self, round_transport):
        summary = summarize_transport(round_transport)
        assert summary.request_bytes > 0
        assert summary.pu_update_bytes > 0
        assert summary.sign_extraction_bytes > 0
        assert summary.conversion_bytes > 0
        assert summary.response_bytes > 0

    def test_total_is_sum(self, round_transport):
        summary = summarize_transport(round_transport)
        assert summary.total_bytes == round_transport.total_bytes()
        parts = (
            summary.request_bytes
            + summary.pu_update_bytes
            + summary.sign_extraction_bytes
            + summary.conversion_bytes
            + summary.response_bytes
        )
        assert parts == summary.total_bytes

    def test_response_is_smallest(self, round_transport):
        """§VI-A: the response is one ciphertext (~kb), requests are MBs."""
        summary = summarize_transport(round_transport)
        assert summary.response_bytes < summary.request_bytes
        assert summary.response_bytes < summary.sign_extraction_bytes

    def test_rows_render(self, round_transport):
        rows = summarize_transport(round_transport).as_rows()
        assert len(rows) == 6
        assert rows[-1][0] == "Total"

    def test_empty_transport(self):
        summary = summarize_transport(InMemoryTransport())
        assert summary.total_bytes == 0
        assert summary.message_count == 0
