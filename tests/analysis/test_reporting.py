"""Unit tests for table rendering."""

from repro.analysis.reporting import format_comparison_table, format_table


class TestFormatTable:
    def test_contains_all_rows(self):
        text = format_table("Demo", [("alpha", "1"), ("beta", "22")])
        assert "Demo" in text
        assert "alpha" in text and "beta" in text
        assert "22" in text

    def test_box_drawing(self):
        text = format_table("T", [("a", "1")])
        lines = text.splitlines()
        assert lines[0].startswith("+") and lines[0].endswith("+")
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_long_values_widen(self):
        text = format_table("T", [("a", "x" * 60)])
        assert "x" * 60 in text


class TestComparisonTable:
    def test_three_columns(self):
        text = format_comparison_table(
            "Cmp", [("enc", "30 ms", "95 ms")], headers=("op", "paper", "ours")
        )
        assert "paper" in text and "ours" in text
        assert "30 ms" in text and "95 ms" in text

    def test_alignment_consistent(self):
        text = format_comparison_table("C", [("a", "1", "2"), ("bbbb", "33", "44")])
        lines = text.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)
