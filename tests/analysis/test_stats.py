"""Unit tests for the statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    bootstrap_mean_ci,
    linear_fit,
    proportion_within,
)
from repro.errors import ConfigurationError


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_fit([0, 1], [0, 2])
        assert fit.predict(5) == pytest.approx(10.0)

    def test_noisy_line_high_r2(self):
        rng = np.random.default_rng(0)
        x = np.arange(50, dtype=float)
        y = 3 * x + 1 + rng.normal(0, 0.5, size=50)
        fit = linear_fit(x, y)
        assert fit.r_squared > 0.99
        assert fit.slope == pytest.approx(3.0, abs=0.05)

    def test_pure_noise_low_r2(self):
        rng = np.random.default_rng(1)
        fit = linear_fit(np.arange(100.0), rng.normal(size=100))
        assert fit.r_squared < 0.3

    def test_constant_y_perfect(self):
        fit = linear_fit([1, 2, 3], [5, 5, 5])
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.slope == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            linear_fit([1], [2])
        with pytest.raises(ConfigurationError):
            linear_fit([1, 2], [1, 2, 3])
        with pytest.raises(ConfigurationError):
            linear_fit([4, 4, 4], [1, 2, 3])


class TestBootstrapCi:
    def test_contains_true_mean(self):
        rng = np.random.default_rng(2)
        samples = rng.normal(10.0, 2.0, size=200)
        low, high = bootstrap_mean_ci(samples, seed=3)
        assert low < 10.0 < high
        assert high - low < 1.5

    def test_narrows_with_more_data(self):
        rng = np.random.default_rng(4)
        small = rng.normal(0, 1, size=20)
        large = rng.normal(0, 1, size=2000)
        w_small = np.diff(bootstrap_mean_ci(small, seed=5))[0]
        w_large = np.diff(bootstrap_mean_ci(large, seed=5))[0]
        assert w_large < w_small

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_mean_ci([])
        with pytest.raises(ConfigurationError):
            bootstrap_mean_ci([1.0], confidence=1.5)


class TestProportionCheck:
    def test_fair_coin_accepted(self):
        assert proportion_within(498, 1000, 0.5)

    def test_biased_coin_rejected(self):
        assert not proportion_within(700, 1000, 0.5)

    def test_small_sample_tolerant(self):
        assert proportion_within(7, 10, 0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            proportion_within(1, 0, 0.5)
        with pytest.raises(ConfigurationError):
            proportion_within(1, 10, 1.5)
