"""Unit tests for cost profiling and full-scale extrapolation."""

import pytest

from repro.analysis.scaling import (
    PaillierCostProfile,
    estimate_full_scale,
    measure_cost_profile,
)
from repro.crypto.rand import DeterministicRandomSource


@pytest.fixture(scope="module")
def profile(keypair):
    return measure_cost_profile(
        keypair=keypair, iterations=5, rng=DeterministicRandomSource("profile")
    )


class TestProfileMeasurement:
    def test_all_positive(self, profile):
        assert profile.encryption_s > 0
        assert profile.decryption_s > 0
        assert profile.hom_add_s > 0
        assert profile.hom_scale_full_s > 0

    def test_cost_ordering(self, profile):
        """Table II's shape: addition ≪ scaling ≤ encryption-class ops."""
        assert profile.hom_add_s < profile.hom_scale_small_s
        assert profile.hom_scale_small_s < profile.hom_scale_full_s

    def test_key_bits_recorded(self, profile, keypair):
        assert profile.key_bits == keypair.public_key.key_bits

    def test_table_rows(self, profile):
        rows = dict(profile.as_table_rows())
        assert rows["Ciphertext size"] == f"{2 * profile.key_bits} bits"
        assert "ms" in rows["Encryption"]


class TestExtrapolation:
    def test_scales_linearly_in_cells(self, profile):
        small = estimate_full_scale(profile, num_channels=10, num_blocks=60)
        large = estimate_full_scale(profile, num_channels=100, num_blocks=60)
        assert large.request_preparation_s == pytest.approx(
            10 * small.request_preparation_s
        )

    def test_paper_shape(self, profile):
        """Figure 6's qualitative shape must survive extrapolation:
        preparation and processing are comparable and both dwarf the PU
        update; the response is a single ciphertext."""
        est = estimate_full_scale(profile)
        assert est.request_preparation_s > 50 * est.pu_update_prepare_s
        assert est.sdc_processing_s > 50 * est.sdc_pu_update_s
        ratio = est.sdc_processing_s / est.request_preparation_s
        assert 0.2 < ratio < 20.0
        assert est.response_bytes < 10_000
        assert est.su_request_bytes > 1_000_000

    def test_request_size_formula(self, profile):
        est = estimate_full_scale(profile, num_channels=100, num_blocks=600)
        ct_bytes = 4 + (2 * profile.key_bits + 7) // 8
        assert est.su_request_bytes == 60_000 * ct_bytes
        assert est.pu_update_bytes == 100 * ct_bytes

    def test_fresh_beta_costs_more(self, profile):
        fresh = estimate_full_scale(profile, fresh_beta_encryption=True)
        plain = estimate_full_scale(profile, fresh_beta_encryption=False)
        assert fresh.sdc_processing_s > plain.sdc_processing_s

    def test_table_rows(self, profile):
        rows = estimate_full_scale(profile).as_table_rows()
        assert len(rows) == 9
