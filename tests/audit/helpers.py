"""Helpers for exercising analyzer rules on in-memory source fixtures."""

from __future__ import annotations

import dataclasses
import textwrap

from repro.audit.engine import AuditConfig, AuditEngine, ModuleUnit


def run_rules(
    source: str,
    *,
    module: str,
    select: set[str] | None = None,
    config: AuditConfig | None = None,
):
    """Analyze ``source`` as if it were the file for dotted ``module``."""
    if config is None:
        config = AuditConfig(select=frozenset(select or ()))
    elif select:
        config = dataclasses.replace(config, select=frozenset(select))
    unit = ModuleUnit.from_source(
        textwrap.dedent(source), path=f"<{module}>", module=module
    )
    return AuditEngine(config).run_unit(unit)


def rules_hit(source: str, *, module: str, select: set[str] | None = None):
    """Set of rule ids that fire on ``source``."""
    return {f.rule for f in run_rules(source, module=module, select=select)}


def run_project_rules(
    sources: dict[str, str],
    *,
    select: set[str] | None = None,
    config: AuditConfig | None = None,
):
    """Engine-v2 path: analyze several modules together with a call graph.

    ``sources`` maps dotted module names to source text.  Runs both the
    unit-level rules (with the project available, so cross-function
    taint seeds apply) and the summary rules, waivers included — the
    same pipeline ``AuditEngine.run`` uses on real files.
    """
    if config is None:
        config = AuditConfig(select=frozenset(select or ()))
    elif select:
        config = dataclasses.replace(config, select=frozenset(select))
    engine = AuditEngine(config)
    units = [
        ModuleUnit.from_source(
            textwrap.dedent(source), path=f"<{module}>", module=module
        )
        for module, source in sources.items()
    ]
    project = engine.build_project(units)
    findings = []
    for unit in units:
        findings.extend(engine.run_unit(unit, project))
    findings.extend(engine.run_summary_rules(project))
    findings.sort()
    return findings


def build_test_project(sources: dict[str, str], config: AuditConfig | None = None):
    """Build just the Project (summaries + facts) for call-graph tests."""
    config = config or AuditConfig()
    engine = AuditEngine(config)
    units = [
        ModuleUnit.from_source(
            textwrap.dedent(source), path=f"<{module}>", module=module
        )
        for module, source in sources.items()
    ]
    return engine.build_project(units)
