"""Helpers for exercising analyzer rules on in-memory source fixtures."""

from __future__ import annotations

import textwrap

from repro.audit.engine import AuditConfig, AuditEngine, ModuleUnit


def run_rules(
    source: str,
    *,
    module: str,
    select: set[str] | None = None,
    config: AuditConfig | None = None,
):
    """Analyze ``source`` as if it were the file for dotted ``module``."""
    if config is None:
        config = AuditConfig(select=frozenset(select or ()))
    elif select:
        config = AuditConfig(
            secret_names=config.secret_names,
            randomness_allowed=config.randomness_allowed,
            hashing_allowed=config.hashing_allowed,
            taint_scope=config.taint_scope,
            logging_scope=config.logging_scope,
            sign_extraction_modules=config.sign_extraction_modules,
            ordering_scope=config.ordering_scope,
            service_modules=config.service_modules,
            select=frozenset(select),
        )
    unit = ModuleUnit.from_source(
        textwrap.dedent(source), path=f"<{module}>", module=module
    )
    return AuditEngine(config).run_unit(unit)


def rules_hit(source: str, *, module: str, select: set[str] | None = None):
    """Set of rule ids that fire on ``source``."""
    return {f.rule for f in run_rules(source, module=module, select=select)}
