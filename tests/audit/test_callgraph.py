"""Call-graph construction, resolution, and fact-lattice propagation."""

from repro.audit.callgraph import ModuleSummary
from repro.audit.engine import AuditConfig
from repro.audit.taint import FACT_AMBIENT_RANDOM, FACT_BLOCKING, FACT_WALLCLOCK
from tests.audit.helpers import build_test_project


class TestResolution:
    def test_local_function_call(self):
        project = build_test_project(
            {
                "repro.netd.x": """
                def helper():
                    pass

                def caller():
                    helper()
                """
            }
        )
        assert project.resolve("repro.netd.x", "caller", "helper") == (
            "repro.netd.x:helper",
        )

    def test_self_method_resolution(self):
        project = build_test_project(
            {
                "repro.netd.x": """
                class Server:
                    def handle(self):
                        pass

                    def serve(self):
                        self.handle()
                """
            }
        )
        assert project.resolve("repro.netd.x", "Server.serve", "self.handle") == (
            "repro.netd.x:Server.handle",
        )

    def test_self_attribute_typed_method_resolution(self):
        project = build_test_project(
            {
                "repro.netd.x": """
                class Journal:
                    def barrier(self):
                        pass

                class Server:
                    def __init__(self):
                        self._journal = Journal()

                    def flush(self):
                        self._journal.barrier()
                """
            }
        )
        assert project.resolve(
            "repro.netd.x", "Server.flush", "self._journal.barrier"
        ) == ("repro.netd.x:Journal.barrier",)

    def test_cross_module_import_resolution(self):
        project = build_test_project(
            {
                "repro.netd.util": """
                def slow_write():
                    pass
                """,
                "repro.netd.x": """
                from repro.netd.util import slow_write

                def caller():
                    slow_write()
                """,
            }
        )
        assert project.resolve("repro.netd.x", "caller", "slow_write") == (
            "repro.netd.util:slow_write",
        )

    def test_module_import_dotted_resolution(self):
        project = build_test_project(
            {
                "repro.netd.util": """
                def slow_write():
                    pass
                """,
                "repro.netd.x": """
                import repro.netd.util as util

                def caller():
                    util.slow_write()
                """,
            }
        )
        assert project.resolve("repro.netd.x", "caller", "util.slow_write") == (
            "repro.netd.util:slow_write",
        )

    def test_functools_partial_alias(self):
        project = build_test_project(
            {
                "repro.netd.x": """
                import functools

                def base(a, b):
                    pass

                def caller():
                    bound = functools.partial(base, 1)
                    bound(2)
                """
            }
        )
        assert project.resolve("repro.netd.x", "caller", "bound") == (
            "repro.netd.x:base",
        )

    def test_plain_alias(self):
        project = build_test_project(
            {
                "repro.netd.x": """
                def original():
                    pass

                def caller():
                    alias = original
                    alias()
                """
            }
        )
        assert project.resolve("repro.netd.x", "caller", "alias") == (
            "repro.netd.x:original",
        )

    def test_class_call_resolves_to_init(self):
        project = build_test_project(
            {
                "repro.netd.x": """
                class Worker:
                    def __init__(self):
                        pass

                def spawn():
                    Worker()
                """
            }
        )
        assert project.resolve("repro.netd.x", "spawn", "Worker") == (
            "repro.netd.x:Worker.__init__",
        )

    def test_unresolvable_stays_empty(self):
        project = build_test_project(
            {
                "repro.netd.x": """
                def caller(conn):
                    conn.mystery()
                """
            }
        )
        assert project.resolve("repro.netd.x", "caller", "conn.mystery") == ()

    def test_decorated_function_still_resolves(self):
        project = build_test_project(
            {
                "repro.netd.x": """
                import functools

                def deco(f):
                    return f

                @deco
                @functools.lru_cache
                def helper():
                    pass

                def caller():
                    helper()
                """
            }
        )
        assert project.resolve("repro.netd.x", "caller", "helper") == (
            "repro.netd.x:helper",
        )
        info = project.functions["repro.netd.x:helper"]
        assert "deco" in info.decorators
        assert "functools.lru_cache" in info.decorators


class TestFactPropagation:
    def _facts(self, sources, **config_kwargs):
        config = AuditConfig(**config_kwargs) if config_kwargs else AuditConfig()
        return build_test_project(sources, config=config)

    def test_blocking_fact_propagates_through_calls(self):
        project = self._facts(
            {
                "repro.netd.x": """
                import time

                def inner():
                    time.sleep(1)

                def middle():
                    inner()

                def outer():
                    middle()
                """
            }
        )
        for name in ("inner", "middle", "outer"):
            assert FACT_BLOCKING in project.facts[f"repro.netd.x:{name}"], name
        # Provenance names the original call.
        assert "time.sleep" in project.facts["repro.netd.x:outer"][FACT_BLOCKING]

    def test_to_thread_masks_blocking(self):
        project = self._facts(
            {
                "repro.netd.x": """
                import asyncio, time

                def inner():
                    time.sleep(1)

                async def outer():
                    await asyncio.to_thread(inner)
                """
            }
        )
        assert FACT_BLOCKING in project.facts["repro.netd.x:inner"]
        assert FACT_BLOCKING not in project.facts["repro.netd.x:outer"]

    def test_cycle_terminates_and_propagates(self):
        project = self._facts(
            {
                "repro.netd.x": """
                import time

                def ping(n):
                    if n:
                        pong(n - 1)

                def pong(n):
                    time.sleep(0.1)
                    ping(n)
                """
            }
        )
        assert FACT_BLOCKING in project.facts["repro.netd.x:ping"]
        assert FACT_BLOCKING in project.facts["repro.netd.x:pong"]

    def test_wallclock_fact(self):
        project = self._facts(
            {
                "repro.pisa.x": """
                import time

                def stamp():
                    return time.time()

                def build_message():
                    return stamp()
                """
            }
        )
        assert FACT_WALLCLOCK in project.facts["repro.pisa.x:stamp"]
        assert FACT_WALLCLOCK in project.facts["repro.pisa.x:build_message"]

    def test_monotonic_is_not_wallclock(self):
        project = self._facts(
            {
                "repro.pisa.x": """
                import time

                def measure():
                    return time.perf_counter() - time.monotonic()
                """
            }
        )
        assert FACT_WALLCLOCK not in project.facts["repro.pisa.x:measure"]

    def test_ambient_random_masked_in_sanctioned_module(self):
        project = self._facts(
            {
                "repro.crypto.rand": """
                import secrets

                def draw(bits):
                    return secrets.randbits(bits)
                """,
                "repro.pisa.x": """
                import os

                def nonce():
                    return os.urandom(16)
                """,
            }
        )
        assert FACT_AMBIENT_RANDOM not in project.facts["repro.crypto.rand:draw"]
        assert FACT_AMBIENT_RANDOM in project.facts["repro.pisa.x:nonce"]

    def test_secret_returners_transitive(self):
        project = self._facts(
            {
                "repro.pisa.x": """
                def secret_part(key):
                    return key.lam

                def wrapper(key):
                    return secret_part(key)

                def unrelated(key):
                    return key.bits
                """
            }
        )
        assert "repro.pisa.x:secret_part" in project.secret_returners
        assert "repro.pisa.x:wrapper" in project.secret_returners
        assert "repro.pisa.x:unrelated" not in project.secret_returners


class TestAwaitBoundaryTracking:
    def test_read_await_write_recorded(self):
        project = build_test_project(
            {
                "repro.netd.x": """
                class S:
                    async def update(self):
                        snapshot = self._count
                        await self._flush()
                        self._count = snapshot + 1
                """
            }
        )
        races = project.functions["repro.netd.x:S.update"].races
        assert [r.attr for r in races] == ["_count"]
        assert races[0].locked is False

    def test_lock_guard_marks_race_locked(self):
        project = build_test_project(
            {
                "repro.netd.x": """
                class S:
                    async def update(self):
                        async with self._lock:
                            snapshot = self._count
                            await self._flush()
                            self._count = snapshot + 1
                """
            }
        )
        races = project.functions["repro.netd.x:S.update"].races
        assert races and races[0].locked is True

    def test_no_await_no_race(self):
        project = build_test_project(
            {
                "repro.netd.x": """
                class S:
                    async def update(self):
                        snapshot = self._count
                        self._count = snapshot + 1
                """
            }
        )
        assert project.functions["repro.netd.x:S.update"].races == ()

    def test_augassign_with_await_in_value(self):
        project = build_test_project(
            {
                "repro.netd.x": """
                class S:
                    async def update(self):
                        self._total += await self._next()
                """
            }
        )
        races = project.functions["repro.netd.x:S.update"].races
        assert [r.attr for r in races] == ["_total"]


class TestSummarySerialization:
    def test_round_trip_preserves_everything(self):
        project = build_test_project(
            {
                "repro.netd.x": """
                import time

                def helper():  # audit-ok: RES001
                    time.sleep(1)

                class S:
                    async def update(self):
                        snapshot = self._n
                        await self._flush()
                        self._n = snapshot
                """
            }
        )
        summary = project.modules["repro.netd.x"]
        restored = ModuleSummary.from_json_dict(summary.to_json_dict())
        assert restored.module == summary.module
        assert set(restored.functions) == set(summary.functions)
        for name in summary.functions:
            assert restored.functions[name] == summary.functions[name]
        assert restored.waivers == summary.waivers
        assert restored.imports == summary.imports
