"""ASY0xx concurrency rules for the socket plane."""

from tests.audit.helpers import run_project_rules


def _hits(sources, select):
    return {f.rule for f in run_project_rules(sources, select=select)}


class TestAsy001BlockingInCoroutine:
    def test_direct_sleep_in_coroutine_flagged(self):
        findings = run_project_rules(
            {
                "repro.netd.x": """
                import time

                async def handler():
                    time.sleep(1)
                """
            },
            select={"ASY001"},
        )
        assert [f.rule for f in findings] == ["ASY001"]

    def test_blocking_reached_through_sync_helper(self):
        """The previously-invisible shape: the coroutine itself is clean."""
        findings = run_project_rules(
            {
                "repro.netd.x": """
                import json, os, pathlib

                def write_ready(path, data):
                    target = pathlib.Path(path)
                    tmp = target.with_suffix(".tmp")
                    tmp.write_text(json.dumps(data))
                    os.replace(tmp, target)

                async def serve(path):
                    write_ready(path, {"ok": True})
                """
            },
            select={"ASY001"},
        )
        assert [f.rule for f in findings] == ["ASY001"]
        assert findings[0].context == "serve"
        assert "write_ready" in findings[0].message

    def test_to_thread_wrapped_helper_allowed(self):
        assert (
            _hits(
                {
                    "repro.netd.x": """
                    import asyncio, time

                    def slow():
                        time.sleep(1)

                    async def serve():
                        await asyncio.to_thread(slow)
                    """
                },
                {"ASY001"},
            )
            == set()
        )

    def test_sync_function_blocking_is_fine(self):
        assert (
            _hits(
                {
                    "repro.netd.x": """
                    import time

                    def monitor():
                        time.sleep(1)
                    """
                },
                {"ASY001"},
            )
            == set()
        )

    def test_awaited_primitive_not_blocking(self):
        assert (
            _hits(
                {
                    "repro.netd.x": """
                    async def serve(stop):
                        await stop.wait()
                    """
                },
                {"ASY001"},
            )
            == set()
        )

    def test_str_join_not_blocking(self):
        assert (
            _hits(
                {
                    "repro.netd.x": """
                    async def render(parts):
                        return ", ".join(parts)
                    """
                },
                {"ASY001"},
            )
            == set()
        )

    def test_thread_join_in_coroutine_flagged(self):
        assert _hits(
            {
                "repro.netd.x": """
                async def shutdown(worker_thread):
                    worker_thread.join()
                """
            },
            {"ASY001"},
        ) == {"ASY001"}

    def test_out_of_scope_module_not_flagged(self):
        assert (
            _hits(
                {
                    "repro.analysis.x": """
                    import time

                    async def slow():
                        time.sleep(1)
                    """
                },
                {"ASY001"},
            )
            == set()
        )


class TestAsy002UnawaitedCoroutine:
    def test_bare_coroutine_call_flagged(self):
        findings = run_project_rules(
            {
                "repro.netd.x": """
                async def drain():
                    pass

                async def shutdown():
                    drain()
                """
            },
            select={"ASY002"},
        )
        assert [f.rule for f in findings] == ["ASY002"]
        assert findings[0].context == "shutdown"

    def test_awaited_call_allowed(self):
        assert (
            _hits(
                {
                    "repro.netd.x": """
                    async def drain():
                        pass

                    async def shutdown():
                        await drain()
                    """
                },
                {"ASY002"},
            )
            == set()
        )

    def test_task_wrapped_call_allowed(self):
        assert (
            _hits(
                {
                    "repro.netd.x": """
                    import asyncio

                    async def drain():
                        pass

                    async def shutdown(self):
                        task = asyncio.create_task(drain())
                        await task
                    """
                },
                {"ASY002"},
            )
            == set()
        )


class TestAsy003FireAndForget:
    def test_dropped_create_task_flagged(self):
        assert _hits(
            {
                "repro.netd.x": """
                import asyncio

                async def run():
                    pass

                async def start():
                    asyncio.create_task(run())
                """
            },
            {"ASY003"},
        ) == {"ASY003"}

    def test_held_task_allowed(self):
        assert (
            _hits(
                {
                    "repro.netd.x": """
                    import asyncio

                    async def run():
                        pass

                    class S:
                        async def start(self):
                            self._task = asyncio.ensure_future(run())
                    """
                },
                {"ASY003"},
            )
            == set()
        )


class TestAsy004AwaitBoundaryRace:
    def test_unlocked_read_await_write_flagged(self):
        findings = run_project_rules(
            {
                "repro.netd.x": """
                class S:
                    async def bump(self):
                        n = self._count
                        await self._flush()
                        self._count = n + 1
                """
            },
            select={"ASY004"},
        )
        assert [f.rule for f in findings] == ["ASY004"]
        assert "_count" in findings[0].message

    def test_lock_guarded_window_allowed(self):
        assert (
            _hits(
                {
                    "repro.netd.x": """
                    class S:
                        async def bump(self):
                            async with self._lock:
                                n = self._count
                                await self._flush()
                                self._count = n + 1
                    """
                },
                {"ASY004"},
            )
            == set()
        )


class TestAsy005CrossThreadLoopAccess:
    def test_call_soon_from_sync_flagged(self):
        findings = run_project_rules(
            {
                "repro.netd.x": """
                class Monitor:
                    def on_crash(self, conn):
                        self._loop.call_soon(conn.close)
                """
            },
            select={"ASY005"},
        )
        assert [f.rule for f in findings] == ["ASY005"]
        assert "call_soon_threadsafe" in findings[0].message

    def test_threadsafe_variant_allowed(self):
        assert (
            _hits(
                {
                    "repro.netd.x": """
                    class Monitor:
                        def on_crash(self, conn):
                            self._loop.call_soon_threadsafe(conn.close)
                    """
                },
                {"ASY005"},
            )
            == set()
        )

    def test_create_task_from_coroutine_allowed(self):
        # On the loop thread (a coroutine) loop.create_task is fine.
        assert (
            _hits(
                {
                    "repro.netd.x": """
                    class S:
                        async def start(self, loop, coro):
                            self._task = loop.create_task(coro)
                    """
                },
                {"ASY005"},
            )
            == set()
        )


class TestCrossFunctionInvisibility:
    """The acceptance demonstration: engine v1 (per-function) cannot see
    these; engine v2's call graph can."""

    def test_secret_leak_through_helper_return(self):
        sources = {
            "repro.pisa.keysplit": """
            def secret_part(key):
                return key.lam

            def report(key, log):
                material = secret_part(key)
                log.info(material)
            """
        }
        findings = run_project_rules(sources, select={"SEC001"})
        assert [f.rule for f in findings] == ["SEC001"]
        assert findings[0].context == "report"

    def test_same_source_invisible_without_project(self):
        """Engine v1 semantics (no call graph) miss the same leak."""
        from tests.audit.helpers import run_rules

        findings = run_rules(
            """
            def secret_part(key):
                return key.lam

            def report(key, log):
                material = secret_part(key)
                log.info(material)
            """,
            module="repro.pisa.keysplit",
            select={"SEC001"},
        )
        assert findings == []
