"""DET0xx determinism rules, including interprocedural reach."""

from tests.audit.helpers import run_project_rules


def _hits(sources, select):
    return {f.rule for f in run_project_rules(sources, select=select)}


class TestDet001Wallclock:
    def test_direct_wallclock_call_flagged(self):
        findings = run_project_rules(
            {
                "repro.pisa.x": """
                import time

                def stamp():
                    return int(time.time())
                """
            },
            select={"DET001"},
        )
        assert [f.rule for f in findings] == ["DET001"]
        assert "time.time" in findings[0].message

    def test_datetime_now_flagged(self):
        assert _hits(
            {
                "repro.pisa.x": """
                import datetime

                def stamp():
                    return datetime.datetime.now()
                """
            },
            {"DET001"},
        ) == {"DET001"}

    def test_monotonic_and_perf_counter_allowed(self):
        assert (
            _hits(
                {
                    "repro.pisa.x": """
                    import time

                    def measure():
                        return time.perf_counter() + time.monotonic()
                    """
                },
                {"DET001"},
            )
            == set()
        )

    def test_seam_reference_without_call_allowed(self):
        # ``clock or time.time`` wires the seam default; only *calls* read
        # the clock.
        assert (
            _hits(
                {
                    "repro.pisa.x": """
                    import time

                    def build(clock=None):
                        clock = clock or time.time
                        return clock
                    """
                },
                {"DET001"},
            )
            == set()
        )

    def test_wallclock_reached_through_out_of_scope_helper(self):
        """Cross-module reach: the helper lives outside determinism scope."""
        findings = run_project_rules(
            {
                "repro.util.timeutil": """
                import time

                def now_stamp():
                    return int(time.time())
                """,
                "repro.pisa.x": """
                from repro.util.timeutil import now_stamp

                def build_message():
                    return now_stamp()
                """,
            },
            select={"DET001"},
        )
        assert [f.rule for f in findings] == ["DET001"]
        assert f"{findings[0].module}:{findings[0].context}" == (
            "repro.pisa.x:build_message"
        )
        assert "now_stamp" in findings[0].message

    def test_out_of_scope_module_not_flagged(self):
        assert (
            _hits(
                {
                    "repro.analysis.report": """
                    import time

                    def stamp():
                        return time.time()
                    """
                },
                {"DET001"},
            )
            == set()
        )


class TestDet002AmbientRandomness:
    def test_urandom_call_flagged(self):
        assert _hits(
            {
                "repro.pisa.x": """
                import os

                def nonce():
                    return os.urandom(16)
                """
            },
            {"DET002"},
        ) == {"DET002"}

    def test_sanctioned_rand_module_exempt(self):
        assert (
            _hits(
                {
                    "repro.crypto.rand": """
                    import secrets

                    def draw(bits):
                        return secrets.randbits(bits)
                    """
                },
                {"DET002"},
            )
            == set()
        )

    def test_seeded_numpy_generator_allowed(self):
        assert (
            _hits(
                {
                    "repro.cluster.x": """
                    import numpy as np

                    def gen(seed):
                        return np.random.default_rng(seed)
                    """
                },
                {"DET002"},
            )
            == set()
        )


class TestDet003SetIteration:
    def test_set_local_iteration_flagged(self):
        assert _hits(
            {
                "repro.pisa.x": """
                def serialize(ids):
                    pending = set(ids)
                    out = []
                    for i in pending:
                        out.append(i)
                    return out
                """
            },
            {"DET003"},
        ) == {"DET003"}

    def test_set_literal_comprehension_flagged(self):
        assert _hits(
            {
                "repro.pisa.x": """
                def serialize(ids):
                    return [i for i in {x for x in ids}]
                """
            },
            {"DET003"},
        ) == {"DET003"}

    def test_sorted_wrapping_fixes_it(self):
        assert (
            _hits(
                {
                    "repro.pisa.x": """
                    def serialize(ids):
                        pending = set(ids)
                        return [i for i in sorted(pending)]
                    """
                },
                {"DET003"},
            )
            == set()
        )


class TestDet004HashBuiltin:
    def test_hash_call_flagged(self):
        assert _hits(
            {
                "repro.cluster.x": """
                def bucket(su_id, shards):
                    return hash(su_id) % shards
                """
            },
            {"DET004"},
        ) == {"DET004"}

    def test_dunder_hash_definition_allowed(self):
        assert (
            _hits(
                {
                    "repro.crypto.x": """
                    class Key:
                        def __hash__(self):
                            return hash((self.n, self.g))
                    """
                },
                {"DET004"},
            )
            == set()
        )


class TestDet005FloatAccumulation:
    def test_float_seeded_accumulator_flagged(self):
        assert _hits(
            {
                "repro.pisa.x": """
                def total(parts):
                    acc = 0.0
                    for p in parts:
                        acc += p
                    return acc
                """
            },
            {"DET005"},
        ) == {"DET005"}

    def test_division_increment_flagged(self):
        assert _hits(
            {
                "repro.cluster.x": """
                def merge(parts, scale):
                    acc = 0
                    for p in parts:
                        acc += p / scale
                    return acc
                """
            },
            {"DET005"},
        ) == {"DET005"}

    def test_integer_accumulation_allowed(self):
        assert (
            _hits(
                {
                    "repro.pisa.x": """
                    def total(parts):
                        acc = 0
                        for p in parts:
                            acc += p
                        return acc
                    """
                },
                {"DET005"},
            )
            == set()
        )

    def test_out_of_core_scope_allowed(self):
        # Float sums are fine in analysis/service code — only the
        # protocol core must stay fixed-point.
        assert (
            _hits(
                {
                    "repro.service.loadtest2": """
                    def mean(xs):
                        acc = 0.0
                        for x in xs:
                            acc += x
                        return acc / len(xs)
                    """
                },
                {"DET005"},
            )
            == set()
        )


class TestWaivers:
    def test_det_finding_respects_inline_waiver(self):
        assert (
            _hits(
                {
                    "repro.pisa.x": """
                    import time

                    def stamp():
                        return time.time()  # audit-ok: DET001
                    """
                },
                {"DET001"},
            )
            == set()
        )
