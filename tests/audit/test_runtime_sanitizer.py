"""Runtime protocol sanitizer: end-to-end and injected-fault coverage."""

import pytest

from repro.audit.runtime import SanitizingTransport, iter_ciphertexts
from repro.crypto.paillier import EncryptedNumber
from repro.errors import SanitizerViolation
from repro.net.transport import InMemoryTransport
from repro.pisa.messages import PUUpdateMessage, SignExtractionRequest, SURequestMessage


@pytest.fixture()
def sanitizer():
    return SanitizingTransport(InMemoryTransport())


def _pu_update(pk, rng, values=(1, 0, 1)):
    return PUUpdateMessage(
        pu_id="pu-0",
        block_index=0,
        ciphertexts=tuple(pk.encrypt(v, rng=rng) for v in values),
    )


class TestEndToEndProtocol:
    def test_full_pisa_round_passes_sanitized(self, scenario, protocol_transport):
        """A complete allocation round survives every in-flight check."""
        from repro.crypto.rand import DeterministicRandomSource
        from repro.pisa.protocol import PisaCoordinator

        coordinator = PisaCoordinator(
            scenario.environment,
            key_bits=256,
            rng=DeterministicRandomSource("sanitized-round"),
            transport=protocol_transport,
        )
        if isinstance(protocol_transport, SanitizingTransport):
            protocol_transport.bind_group_key(coordinator.stp.group_public_key)
        for pu in scenario.pus:
            coordinator.enroll_pu(pu)
        su = scenario.sus[0]
        coordinator.enroll_su(su)

        report = coordinator.run_request_round(su.su_id)
        assert report.granted in (True, False)

        # The refresh fast path re-randomizes the cached request; the
        # freshness tracker must accept the new ciphertexts.
        refresh = coordinator.run_request_round(su.su_id, reuse_cached_request=True)
        assert refresh.granted == report.granted

        if isinstance(protocol_transport, SanitizingTransport):
            assert protocol_transport.messages_checked >= 8
            assert protocol_transport.ciphertexts_checked > 0
        # Accounting still flows through to the inner transport.
        assert protocol_transport.total_bytes() > 0
        assert protocol_transport.count("SURequestMessage") == 2


class TestWellFormedness:
    def test_out_of_range_ciphertext_rejected(self, sanitizer, keypair, fresh_rng):
        pk = keypair.public_key
        message = _pu_update(pk, fresh_rng)
        # Bypass the constructor's reduction to forge an oversized value.
        message.ciphertexts[0].ciphertext = pk.n_sq + 7
        with pytest.raises(SanitizerViolation, match="out of range"):
            sanitizer.send(message, "pu-0", "sdc")

    def test_zero_ciphertext_rejected(self, sanitizer, keypair, fresh_rng):
        pk = keypair.public_key
        message = _pu_update(pk, fresh_rng)
        message.ciphertexts[1].ciphertext = 0
        with pytest.raises(SanitizerViolation, match="out of range"):
            sanitizer.send(message, "pu-0", "sdc")

    def test_non_coprime_ciphertext_rejected(self, sanitizer, keypair, fresh_rng):
        pk = keypair.public_key
        message = _pu_update(pk, fresh_rng)
        # gcd(n, n²) = n: a ciphertext divisible by a prime factor of n
        # can never be a unit mod n².
        message.ciphertexts[2].ciphertext = pk.n
        with pytest.raises(SanitizerViolation, match="shares a factor"):
            sanitizer.send(message, "pu-0", "sdc")

    def test_valid_message_passes_and_counts(self, sanitizer, keypair, fresh_rng):
        message = _pu_update(keypair.public_key, fresh_rng)
        sanitizer.send(message, "pu-0", "sdc")
        assert sanitizer.messages_checked == 1
        assert sanitizer.ciphertexts_checked == 3


class TestStpEnvelope:
    def test_non_envelope_kind_blocked(self, sanitizer, keypair, fresh_rng):
        message = _pu_update(keypair.public_key, fresh_rng)
        with pytest.raises(SanitizerViolation, match="sign-extraction envelopes"):
            sanitizer.send(message, "sdc", "stp")

    def test_personal_key_material_blocked(self, keypair, second_keypair, fresh_rng):
        group_pk = keypair.public_key
        su_pk = second_keypair.public_key
        sanitizer = SanitizingTransport(InMemoryTransport(), group_key=group_pk)
        request = SignExtractionRequest(
            round_id="r-1",
            su_id="su-0",
            matrix=((su_pk.encrypt(5, rng=fresh_rng),),),
        )
        with pytest.raises(SanitizerViolation, match="group key"):
            sanitizer.send(request, "sdc", "stp")

    def test_blinded_group_key_envelope_passes(self, keypair, fresh_rng):
        group_pk = keypair.public_key
        sanitizer = SanitizingTransport(InMemoryTransport())
        sanitizer.bind_group_key(group_pk)
        request = SignExtractionRequest(
            round_id="r-1",
            su_id="su-0",
            matrix=((group_pk.encrypt(-3, rng=fresh_rng),),),
        )
        sanitizer.send(request, "sdc", "stp")
        assert sanitizer.messages_checked == 1


class TestFreshness:
    def _request(self, pk, rng):
        return SURequestMessage(
            su_id="su-0",
            region_blocks=(0, 1),
            matrix=((pk.encrypt(1, rng=rng), pk.encrypt(0, rng=rng)),),
        )

    def test_replayed_request_rejected(self, sanitizer, keypair, fresh_rng):
        message = self._request(keypair.public_key, fresh_rng)
        sanitizer.send(message, "su-0", "sdc")
        with pytest.raises(SanitizerViolation, match="re-randomization"):
            sanitizer.send(message, "su-0", "sdc")

    def test_new_epoch_resets_tracking(self, sanitizer, keypair, fresh_rng):
        message = self._request(keypair.public_key, fresh_rng)
        sanitizer.send(message, "su-0", "sdc")
        sanitizer.new_epoch()
        sanitizer.send(message, "su-0", "sdc")
        assert sanitizer.messages_checked == 2

    def test_rerandomized_request_accepted(self, sanitizer, keypair, fresh_rng):
        pk = keypair.public_key
        sanitizer.send(self._request(pk, fresh_rng), "su-0", "sdc")
        sanitizer.send(self._request(pk, fresh_rng), "su-0", "sdc")
        assert sanitizer.messages_checked == 2

    def test_non_request_kinds_exempt(self, sanitizer, keypair, fresh_rng):
        message = _pu_update(keypair.public_key, fresh_rng)
        sanitizer.send(message, "pu-0", "sdc")
        sanitizer.send(message, "pu-0", "sdc")
        assert sanitizer.messages_checked == 2


class TestCiphertextDiscovery:
    def test_walks_nested_dataclasses_and_tuples(self, keypair, fresh_rng):
        pk = keypair.public_key
        message = _pu_update(pk, fresh_rng)
        assert len(list(iter_ciphertexts(message))) == 3

    def test_walks_matrices(self, keypair, fresh_rng):
        pk = keypair.public_key
        request = SignExtractionRequest(
            round_id="r",
            su_id="s",
            matrix=tuple(
                tuple(pk.encrypt(c, rng=fresh_rng) for c in range(3))
                for _ in range(2)
            ),
        )
        assert len(list(iter_ciphertexts(request))) == 6

    def test_plain_values_yield_nothing(self):
        assert list(iter_ciphertexts({"a": [1, "x", (2.5,)]})) == []


class TestDelegation:
    def test_accounting_passthrough(self, sanitizer, keypair, fresh_rng):
        message = _pu_update(keypair.public_key, fresh_rng)
        sanitizer.send(message, "pu-0", "sdc")
        assert sanitizer.total_bytes("PUUpdateMessage") == message.wire_size()
        assert sanitizer.count() == 1
        assert "PUUpdateMessage" in sanitizer.by_kind()

    def test_unknown_attribute_still_raises(self, sanitizer):
        with pytest.raises(AttributeError):
            sanitizer.no_such_attribute


def test_injected_violation_caught_mid_protocol(scenario):
    """EncryptedNumber forged after SDC processing is caught at the send."""
    from repro.crypto.rand import DeterministicRandomSource
    from repro.pisa.protocol import PisaCoordinator

    transport = SanitizingTransport(InMemoryTransport())
    coordinator = PisaCoordinator(
        scenario.environment,
        key_bits=256,
        rng=DeterministicRandomSource("inject"),
        transport=transport,
    )
    transport.bind_group_key(coordinator.stp.group_public_key)
    for pu in scenario.pus:
        coordinator.enroll_pu(pu)
    su = scenario.sus[0]
    client = coordinator.enroll_su(su)

    request = client.prepare_request()
    request.matrix[0][0].ciphertext = coordinator.stp.group_public_key.n_sq + 1
    with pytest.raises(SanitizerViolation, match="out of range"):
        transport.send(request, su.su_id, "sdc")


class TestChannelComposition:
    """Regression: ``channel()`` must not bypass the sanitizer.

    ``__getattr__`` delegation used to hand back the *inner* multiplexed
    transport's :class:`BoundChannel`, so per-link sends skipped every
    in-flight check.  The canonical stack is
    ``SanitizingTransport(MultiplexedTransport(...))``.
    """

    def test_channel_is_bound_to_the_sanitizer(self, keypair):
        from repro.net.transport import MultiplexedTransport

        sanitizer = SanitizingTransport(MultiplexedTransport())
        channel = sanitizer.channel("pu-0", "sdc")
        assert channel.transport is sanitizer
        assert channel.link == ("pu-0", "sdc")

    def test_channel_send_still_sanitizes(self, keypair, fresh_rng):
        from repro.net.transport import MultiplexedTransport

        pk = keypair.public_key
        sanitizer = SanitizingTransport(MultiplexedTransport())
        channel = sanitizer.channel("pu-0", "sdc")

        good = _pu_update(pk, fresh_rng)
        channel.send(good)
        assert sanitizer.messages_checked == 1

        bad = _pu_update(pk, fresh_rng)
        bad.ciphertexts[0].ciphertext = pk.n_sq + 7
        with pytest.raises(SanitizerViolation, match="out of range"):
            channel.send(bad)

    def test_link_admin_still_delegates_to_inner(self):
        from repro.net.transport import MultiplexedTransport, resolve_multiplexed

        inner = MultiplexedTransport()
        sanitizer = SanitizingTransport(inner)
        sanitizer.fail_link("a", "b")  # __getattr__ delegation
        assert not inner.link_is_up("a", "b")
        assert resolve_multiplexed(sanitizer) is inner
