"""Incremental audit cache: correctness of hits, misses, invalidation."""

import json

from repro.audit.cache import AuditCache
from repro.audit.engine import AuditConfig, AuditEngine

BAD = "import random\n"
GOOD = "x = 1\n"


def _tree(tmp_path, sources: dict[str, str]):
    pkg = tmp_path / "src" / "repro" / "pisa"
    pkg.mkdir(parents=True, exist_ok=True)
    for name, source in sources.items():
        (pkg / name).write_text(source)
    return tmp_path / "src"


class TestCacheLifecycle:
    def test_warm_run_is_all_hits_and_identical(self, tmp_path):
        src = _tree(tmp_path, {"a.py": BAD, "b.py": GOOD})
        cache_path = tmp_path / "cache.json"
        engine = AuditEngine()

        cold_cache = AuditCache(cache_path)
        cold = engine.run([str(src)], cache=cold_cache)
        cold_cache.save()
        assert cold_cache.misses == 2 and cold_cache.hits == 0

        warm_cache = AuditCache(cache_path)
        warm = engine.run([str(src)], cache=warm_cache)
        assert warm_cache.hits == 2 and warm_cache.misses == 0
        assert warm == cold
        assert [f.rule for f in warm] == ["CRY001"]

    def test_cached_run_matches_uncached(self, tmp_path):
        src = _tree(tmp_path, {"a.py": BAD, "b.py": GOOD})
        engine = AuditEngine()
        uncached = engine.run([str(src)])
        cache = AuditCache(tmp_path / "cache.json")
        cached = engine.run([str(src)], cache=cache)
        assert cached == uncached

    def test_edited_file_invalidates_only_itself(self, tmp_path):
        src = _tree(tmp_path, {"a.py": BAD, "b.py": GOOD})
        cache_path = tmp_path / "cache.json"
        engine = AuditEngine()
        cache = AuditCache(cache_path)
        engine.run([str(src)], cache=cache)
        cache.save()

        (src / "repro" / "pisa" / "b.py").write_text("y = 2\n")
        warm = AuditCache(cache_path)
        findings = engine.run([str(src)], cache=warm)
        assert warm.hits == 1 and warm.misses == 1
        assert [f.rule for f in findings] == ["CRY001"]

    def test_config_change_invalidates_everything(self, tmp_path):
        src = _tree(tmp_path, {"a.py": BAD})
        cache_path = tmp_path / "cache.json"
        AuditEngine().run([str(src)], cache=(c := AuditCache(cache_path)))
        c.save()

        narrowed = AuditEngine(AuditConfig(select=frozenset({"SVC001"})))
        warm = AuditCache(cache_path)
        findings = narrowed.run([str(src)], cache=warm)
        assert warm.misses == 1  # different config digest → no hit
        assert findings == []

    def test_config_digest_is_process_stable(self):
        # frozenset repr order is PYTHONHASHSEED-dependent; the digest
        # must not be.  (Two configs built the same way must hash the
        # same; the sorted-field rendering guarantees it across runs.)
        a = AuditCache.config_digest(AuditConfig())
        b = AuditCache.config_digest(AuditConfig())
        assert a == b
        assert AuditCache.config_digest(
            AuditConfig(select=frozenset({"CRY001"}))
        ) != a

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        src = _tree(tmp_path, {"a.py": BAD})
        cache = AuditCache(cache_path)
        findings = AuditEngine().run([str(src)], cache=cache)
        assert [f.rule for f in findings] == ["CRY001"]

    def test_cache_file_is_json_not_pickle(self, tmp_path):
        src = _tree(tmp_path, {"a.py": BAD})
        cache_path = tmp_path / "cache.json"
        cache = AuditCache(cache_path)
        AuditEngine().run([str(src)], cache=cache)
        cache.save()
        payload = json.loads(cache_path.read_text())
        assert payload["format"] == 1
        assert payload["files"]

    def test_cross_function_taint_survives_caching(self, tmp_path):
        """A cached file's interprocedural findings replay correctly."""
        source = (
            "def secret_part(key):\n"
            "    return key.lam\n"
            "\n"
            "def report(key, log):\n"
            "    material = secret_part(key)\n"
            "    log.info(material)\n"
        )
        src = _tree(tmp_path, {"leak.py": source})
        cache_path = tmp_path / "cache.json"
        engine = AuditEngine(AuditConfig(select=frozenset({"SEC001"})))

        cold_cache = AuditCache(cache_path)
        cold = engine.run([str(src)], cache=cold_cache)
        cold_cache.save()
        warm_cache = AuditCache(cache_path)
        warm = engine.run([str(src)], cache=warm_cache)
        assert warm_cache.hits == 1
        assert [f.rule for f in cold] == ["SEC001"]
        assert warm == cold
