"""SARIF 2.1.0 reporter: structure, fingerprints, baseline states."""

import json

from repro.audit import run_audit
from repro.audit.engine import AuditConfig, AuditEngine, ModuleUnit
from repro.audit.reporters import render_sarif

VIOLATION = "import random\n"


def _findings():
    unit = ModuleUnit.from_source(
        VIOLATION, path="src/repro/pisa/blinding.py", module="repro.pisa.blinding"
    )
    return AuditEngine(AuditConfig(select=frozenset({"CRY001"}))).run_unit(unit)


class TestSarifStructure:
    def test_top_level_shape(self):
        log = json.loads(render_sarif(_findings(), [], []))
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        assert len(log["runs"]) == 1
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-audit"
        assert driver["version"]

    def test_result_fields(self):
        findings = _findings()
        log = json.loads(render_sarif(findings, [], []))
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "CRY001"
        assert result["level"] == "error"
        assert result["baselineState"] == "new"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/pisa/blinding.py"
        assert location["region"]["startLine"] == 1
        assert location["region"]["startColumn"] >= 1
        assert (
            result["partialFingerprints"]["reproAudit/v1"]
            == findings[0].fingerprint
        )

    def test_rule_index_points_into_driver_rules(self):
        log = json.loads(render_sarif(_findings(), [], []))
        run = log["runs"][0]
        (result,) = run["results"]
        rule = run["tool"]["driver"]["rules"][result["ruleIndex"]]
        assert rule["id"] == result["ruleId"]
        assert rule["shortDescription"]["text"]

    def test_grandfathered_marked_unchanged_note(self):
        log = json.loads(render_sarif([], _findings(), []))
        (result,) = log["runs"][0]["results"]
        assert result["level"] == "note"
        assert result["baselineState"] == "unchanged"

    def test_empty_run_is_valid(self):
        log = json.loads(render_sarif([], [], []))
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []


class TestSarifCli:
    def test_run_audit_writes_sarif_file(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "pisa"
        pkg.mkdir(parents=True)
        (pkg / "blinding.py").write_text(VIOLATION)
        sarif_path = tmp_path / "audit.sarif"
        code = run_audit(
            [str(tmp_path / "src")],
            baseline_path=str(tmp_path / "baseline.json"),
            sarif_path=str(sarif_path),
        )
        capsys.readouterr()
        assert code == 1
        log = json.loads(sarif_path.read_text())
        assert log["runs"][0]["results"][0]["ruleId"] == "CRY001"

    def test_cli_format_sarif_stdout(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        pkg = tmp_path / "src" / "repro" / "pisa"
        pkg.mkdir(parents=True)
        (pkg / "blinding.py").write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["audit", "src", "--format", "sarif"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out)["version"] == "2.1.0"


class TestExplainCli:
    def test_explain_known_rule(self, capsys):
        from repro.cli import main

        assert main(["audit", "--explain", "DET001"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "audit-ok: DET001" in out
        assert "Why it matters" in out

    def test_explain_unknown_rule_lists_known(self, capsys):
        from repro.cli import main

        assert main(["audit", "--explain", "NOPE99"]) == 1
        out = capsys.readouterr().out
        assert "ASY001" in out and "DET001" in out
