"""Engine, baseline, waiver, and CLI-level behavior of repro.audit."""

import json

import pytest

from repro.audit import (
    AuditConfig,
    AuditEngine,
    Baseline,
    ModuleUnit,
    all_rules,
    diff_against_baseline,
    module_name_for_path,
    run_audit,
)
from repro.errors import AuditError
from tests.audit.helpers import run_rules

VIOLATION = "import random\n"


def _unit(source: str, module: str = "repro.pisa.blinding") -> ModuleUnit:
    return ModuleUnit.from_source(source, path=f"<{module}>", module=module)


class TestEngine:
    def test_all_rules_registered(self):
        ids = {rule.rule_id for rule in all_rules()}
        assert ids == {
            "CRY001",
            "CRY002",
            "SEC001",
            "SEC002",
            "ORD001",
            "SVC001",
            "RES001",
            "TEL001",
            "NET001",
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "DET005",
            "ASY001",
            "ASY002",
            "ASY003",
            "ASY004",
            "ASY005",
        }

    def test_every_rule_has_kind_and_explanation(self):
        for rule in all_rules():
            assert rule.kind in ("syntactic", "taint", "summary"), rule.rule_id
            card = rule.explain()
            assert rule.rule_id in card
            assert "audit-ok" in card

    def test_select_restricts_rules(self):
        engine = AuditEngine(AuditConfig(select=frozenset({"SVC001"})))
        findings = engine.run_unit(_unit(VIOLATION))
        assert findings == []

    def test_syntax_error_raises_audit_error(self):
        with pytest.raises(AuditError):
            ModuleUnit.from_source("def broken(:\n", path="bad.py", module="x")

    def test_missing_path_raises(self):
        with pytest.raises(AuditError):
            AuditEngine().run(["/no/such/path_anywhere.py"])

    def test_run_over_directory(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "pisa"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(VIOLATION)
        (pkg / "good.py").write_text("x = 1\n")
        findings = AuditEngine().run([str(tmp_path / "src")])
        assert [f.rule for f in findings] == ["CRY001"]
        assert findings[0].module == "repro.pisa.bad"

    def test_module_name_for_path(self, tmp_path):
        from pathlib import Path

        assert (
            module_name_for_path(Path("src/repro/pisa/blinding.py"))
            == "repro.pisa.blinding"
        )
        assert module_name_for_path(Path("src/repro/audit/__init__.py")) == "repro.audit"
        assert module_name_for_path(Path("scripts/tool.py")) == "scripts.tool"


class TestWaivers:
    def test_rule_specific_waiver(self):
        findings = run_rules(
            "import random  # audit-ok: CRY001\n",
            module="repro.pisa.blinding",
            select={"CRY001"},
        )
        assert findings == []

    def test_waiver_for_other_rule_does_not_apply(self):
        findings = run_rules(
            "import random  # audit-ok: SVC001\n",
            module="repro.pisa.blinding",
            select={"CRY001"},
        )
        assert [f.rule for f in findings] == ["CRY001"]

    def test_bare_waiver_suppresses_everything(self):
        findings = run_rules(
            "import random  # audit-ok\n",
            module="repro.pisa.blinding",
            select={"CRY001"},
        )
        assert findings == []

    def test_multi_rule_waiver(self):
        findings = run_rules(
            "import random  # audit-ok: CRY001, SEC001\n",
            module="repro.pisa.blinding",
            select={"CRY001"},
        )
        assert findings == []


class TestBaseline:
    def _findings(self):
        return AuditEngine(AuditConfig(select=frozenset({"CRY001"}))).run_unit(
            _unit(VIOLATION)
        )

    def test_roundtrip(self, tmp_path):
        findings = self._findings()
        baseline = Baseline.from_findings(findings, reason="legacy")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1
        assert findings[0] in loaded

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(AuditError):
            Baseline.load(path)

    def test_v1_baseline_migrates_transparently(self, tmp_path):
        """Engine-v2 keeps fingerprints stable, so v1 waivers survive."""
        findings = self._findings()
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {
                            "fingerprint": findings[0].fingerprint,
                            "rule": findings[0].rule,
                            "reason": "pre-migration waiver",
                        }
                    ],
                }
            )
        )
        loaded = Baseline.load(path)
        assert findings[0] in loaded
        # Saving rewrites as the current version with entries intact.
        loaded.save(path)
        refreshed = json.loads(path.read_text())
        assert refreshed["version"] == 2
        assert refreshed["findings"][0]["reason"] == "pre-migration waiver"

    def test_diff_splits_new_and_grandfathered(self):
        findings = self._findings()
        baseline = Baseline.from_findings(findings)
        new, grandfathered, stale = diff_against_baseline(findings, baseline)
        assert new == []
        assert grandfathered == findings
        assert stale == []

    def test_diff_reports_stale_entries(self):
        findings = self._findings()
        baseline = Baseline.from_findings(findings)
        new, grandfathered, stale = diff_against_baseline([], baseline)
        assert new == grandfathered == []
        assert len(stale) == 1


class TestRunAudit:
    def _tree(self, tmp_path, source=VIOLATION):
        pkg = tmp_path / "src" / "repro" / "pisa"
        pkg.mkdir(parents=True)
        (pkg / "blinding.py").write_text(source)
        return tmp_path

    def test_new_finding_exits_nonzero(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        code = run_audit(
            [str(root / "src")], baseline_path=str(root / "baseline.json")
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "CRY001" in captured.out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = self._tree(tmp_path, source="x = 1\n")
        code = run_audit(
            [str(root / "src")], baseline_path=str(root / "baseline.json")
        )
        assert code == 0
        assert "0 new" in capsys.readouterr().out

    def test_baselined_finding_exits_zero(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        baseline_path = str(root / "baseline.json")
        assert (
            run_audit(
                [str(root / "src")],
                baseline_path=baseline_path,
                update_baseline=True,
            )
            == 0
        )
        code = run_audit([str(root / "src")], baseline_path=baseline_path)
        assert code == 0
        assert "1 grandfathered" in capsys.readouterr().out

    def test_update_baseline_preserves_reasons(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        baseline_path = root / "baseline.json"
        run_audit(
            [str(root / "src")],
            baseline_path=str(baseline_path),
            update_baseline=True,
        )
        data = json.loads(baseline_path.read_text())
        data["findings"][0]["reason"] = "accepted: legacy import"
        baseline_path.write_text(json.dumps(data))
        run_audit(
            [str(root / "src")],
            baseline_path=str(baseline_path),
            update_baseline=True,
        )
        refreshed = json.loads(baseline_path.read_text())
        assert refreshed["findings"][0]["reason"] == "accepted: legacy import"

    def test_json_report_written(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        report_path = root / "report.json"
        run_audit(
            [str(root / "src")],
            baseline_path=str(root / "baseline.json"),
            json_path=str(report_path),
        )
        payload = json.loads(report_path.read_text())
        assert payload["summary"]["new"] == 1
        assert payload["new"][0]["rule"] == "CRY001"
        assert payload["new"][0]["fingerprint"]

    def test_cli_subcommand_wired(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        root = self._tree(tmp_path)
        monkeypatch.chdir(root)
        assert main(["audit", "src"]) == 1
        assert main(["audit", "src", "--update-baseline"]) == 0
        assert main(["audit", "src"]) == 0
        capsys.readouterr()


class TestRepositoryIsClean:
    def test_src_repro_matches_checked_in_baseline(self, capsys):
        """The acceptance gate: the real tree audits clean vs the baseline."""
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        code = run_audit(
            [str(repo_root / "src" / "repro")],
            baseline_path=str(repo_root / "audit-baseline.json"),
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 new" in out
