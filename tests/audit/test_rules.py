"""Positive and negative fixtures for every analyzer rule."""

from tests.audit.helpers import run_rules, rules_hit


class TestCry001Randomness:
    def test_flags_import_random(self):
        assert "CRY001" in rules_hit(
            "import random\n", module="repro.pisa.blinding", select={"CRY001"}
        )

    def test_flags_from_secrets_import(self):
        assert "CRY001" in rules_hit(
            "from secrets import randbits\n",
            module="repro.pisa.blinding",
            select={"CRY001"},
        )

    def test_flags_os_urandom(self):
        assert "CRY001" in rules_hit(
            "import os\nnonce = os.urandom(16)\n",
            module="repro.service.broker",
            select={"CRY001"},
        )

    def test_flags_hashlib_outside_hashing_module(self):
        assert "CRY001" in rules_hit(
            "import hashlib\n", module="repro.pisa.license", select={"CRY001"}
        )

    def test_allows_secrets_inside_rand_module(self):
        assert not rules_hit(
            "import secrets\nvalue = secrets.randbits(8)\n",
            module="repro.crypto.rand",
            select={"CRY001"},
        )

    def test_allows_hashlib_inside_hashing_module(self):
        assert not rules_hit(
            "import hashlib\n", module="repro.crypto.hashing", select={"CRY001"}
        )

    def test_allows_randomsource_usage(self):
        source = """
            from repro.crypto.rand import default_rng

            def draw(rng=None):
                return default_rng(rng).randbits(128)
        """
        assert not rules_hit(source, module="repro.pisa.blinding", select={"CRY001"})


class TestCry002FloatTaint:
    def test_flags_true_division_of_secret(self):
        source = """
            def scale(alpha, total):
                return alpha / total
        """
        assert "CRY002" in rules_hit(
            source, module="repro.pisa.blinding", select={"CRY002"}
        )

    def test_flags_float_coercion_through_assignment(self):
        source = """
            def leak(key):
                lam = key.lam
                shadow = lam + 1
                return float(shadow)
        """
        assert "CRY002" in rules_hit(
            source, module="repro.crypto.paillier", select={"CRY002"}
        )

    def test_flags_float_constant_mixing(self):
        source = """
            def fudge(beta):
                return beta * 0.5
        """
        assert "CRY002" in rules_hit(
            source, module="repro.pisa.blinding", select={"CRY002"}
        )

    def test_allows_floor_division(self):
        source = """
            def halve(alpha):
                return alpha // 2
        """
        assert not rules_hit(source, module="repro.pisa.blinding", select={"CRY002"})

    def test_allows_float_math_on_public_values(self):
        source = """
            def latency(total_bytes, rate):
                return total_bytes / rate
        """
        assert not rules_hit(source, module="repro.pisa.protocol", select={"CRY002"})

    def test_exact_name_match_only(self):
        # ``alpha_bits`` is a public sizing parameter, not the secret ``alpha``.
        source = """
            def width(alpha_bits):
                return alpha_bits / 8
        """
        assert not rules_hit(source, module="repro.pisa.blinding", select={"CRY002"})

    def test_out_of_scope_module_ignored(self):
        source = """
            def scale(alpha):
                return alpha / 3
        """
        assert not rules_hit(source, module="repro.watch.scenario", select={"CRY002"})


class TestSec001SecretLogging:
    def test_flags_print_of_secret(self):
        source = """
            def debug(sk):
                print(sk)
        """
        assert "SEC001" in rules_hit(
            source, module="repro.pisa.stp_server", select={"SEC001"}
        )

    def test_flags_logger_call_with_derived_value(self):
        source = """
            def record(logger, keypair):
                mu = keypair.mu
                masked = mu % 1000
                logger.info("residue %s", masked)
        """
        assert "SEC001" in rules_hit(
            source, module="repro.service.broker", select={"SEC001"}
        )

    def test_flags_fstring_interpolation(self):
        source = """
            def describe(blinding):
                return f"factor={blinding}"
        """
        assert "SEC001" in rules_hit(
            source, module="repro.pisa.sdc_server", select={"SEC001"}
        )

    def test_allows_logging_public_metadata(self):
        source = """
            def record(logger, su_id, size_bytes):
                logger.info("request from %s: %d bytes", su_id, size_bytes)
        """
        assert not rules_hit(source, module="repro.service.broker", select={"SEC001"})

    def test_crypto_layer_out_of_logging_scope(self):
        source = """
            def debug(sk):
                print(sk)
        """
        assert not rules_hit(source, module="repro.crypto.paillier", select={"SEC001"})


class TestSec002SecretBranching:
    def test_flags_comparison_on_secret(self):
        source = """
            def check(epsilon):
                if epsilon > 0:
                    return 1
                return -1
        """
        assert "SEC002" in rules_hit(
            source, module="repro.pisa.sdc_server", select={"SEC002"}
        )

    def test_flags_branch_on_derived_flag(self):
        source = """
            def gate(sk):
                unsafe = bool(sk)
                if unsafe:
                    return 1
                return 0
        """
        assert "SEC002" in rules_hit(
            source, module="repro.crypto.paillier", select={"SEC002"}
        )

    def test_sign_extraction_module_exempt(self):
        source = """
            def extract(sk, ct):
                value = sk.decrypt(ct)
                return 1 if value > 0 else -1
        """
        assert not rules_hit(
            source, module="repro.pisa.stp_server", select={"SEC002"}
        )

    def test_allows_public_comparisons(self):
        source = """
            def admit(pending, limit):
                if pending > limit:
                    return False
                return True
        """
        assert not rules_hit(source, module="repro.service.broker", select={"SEC002"})

    def test_inline_waiver_suppresses(self):
        source = """
            import math

            def validate(lam, n):
                if math.gcd(lam, n) != 1:  # audit-ok: SEC002
                    raise ValueError("bad key")
        """
        assert not rules_hit(source, module="repro.crypto.paillier", select={"SEC002"})


class TestOrd001TranscriptOrder:
    def test_flags_draw_after_dispatch(self):
        source = """
            def round_trip(rng, executor, jobs):
                results = executor.pow_many(jobs)
                noise = rng.randbits(64)
                return results, noise
        """
        assert "ORD001" in rules_hit(
            source, module="repro.pisa.sdc_server", select={"ORD001"}
        )

    def test_flags_factory_draw_after_dispatch(self):
        source = """
            def round_trip(factory, executor, jobs):
                results = executor.pow_many(jobs)
                eps = factory.draw()
                return results, eps
        """
        assert "ORD001" in rules_hit(
            source, module="repro.pisa.packed", select={"ORD001"}
        )

    def test_allows_draws_before_dispatch(self):
        source = """
            def round_trip(rng, executor, cells):
                draws = [rng.randbits(64) for _ in cells]
                jobs = [(d, 2, 3) for d in draws]
                return executor.pow_many(jobs)
        """
        assert not rules_hit(source, module="repro.pisa.sdc_server", select={"ORD001"})

    def test_out_of_scope_package_ignored(self):
        source = """
            def round_trip(rng, executor, jobs):
                results = executor.pow_many(jobs)
                return results, rng.randbits(8)
        """
        assert not rules_hit(source, module="repro.service.workers", select={"ORD001"})

    def test_functions_are_independent(self):
        # A dispatch in one function must not poison draws in another.
        source = """
            def dispatch(executor, jobs):
                return executor.pow_many(jobs)

            def fresh(rng):
                return rng.randbits(64)
        """
        assert not rules_hit(source, module="repro.pisa.sdc_server", select={"ORD001"})


class TestSvc001SharedState:
    def test_flags_augassign_in_async_def(self):
        source = """
            class Broker:
                async def submit(self):
                    self.pending += 1
        """
        assert "SVC001" in rules_hit(
            source, module="repro.service.broker", select={"SVC001"}
        )

    def test_flags_sync_method_of_worker_class(self):
        source = """
            from concurrent.futures import ProcessPoolExecutor

            class Pool:
                def start(self):
                    self.pool = ProcessPoolExecutor()

                def run(self, jobs):
                    self.jobs += len(jobs)
        """
        assert "SVC001" in rules_hit(
            source, module="repro.service.workers", select={"SVC001"}
        )

    def test_flags_mutable_class_default(self):
        source = """
            class Broker:
                listeners = []
        """
        assert "SVC001" in rules_hit(
            source, module="repro.service.broker", select={"SVC001"}
        )

    def test_lock_guard_suppresses(self):
        source = """
            from concurrent.futures import ProcessPoolExecutor

            class Pool:
                def start(self):
                    self.pool = ProcessPoolExecutor()

                def run(self, jobs):
                    with self._stats_lock:
                        self.jobs += len(jobs)
        """
        assert not rules_hit(source, module="repro.service.workers", select={"SVC001"})

    def test_plain_sync_class_untouched(self):
        source = """
            class Tally:
                def bump(self):
                    self.count += 1
        """
        assert not rules_hit(source, module="repro.service.broker", select={"SVC001"})

    def test_local_variables_untouched(self):
        source = """
            class Broker:
                async def submit(self, items):
                    total = 0
                    for item in items:
                        total += item
                    return total
        """
        assert not rules_hit(source, module="repro.service.broker", select={"SVC001"})

    def test_out_of_scope_module_ignored(self):
        source = """
            class Broker:
                async def submit(self):
                    self.pending += 1
        """
        assert not rules_hit(source, module="repro.pisa.protocol", select={"SVC001"})


class TestFindingMetadata:
    def test_finding_carries_context_and_snippet(self):
        source = """
            class Broker:
                async def submit(self):
                    self.pending += 1
        """
        findings = run_rules(source, module="repro.service.broker", select={"SVC001"})
        assert len(findings) == 1
        finding = findings[0]
        assert finding.context == "Broker.submit"
        assert finding.snippet == "self.pending += 1"
        assert finding.module == "repro.service.broker"

    def test_fingerprint_survives_line_shift(self):
        base = """
            class Broker:
                async def submit(self):
                    self.pending += 1
        """
        shifted = """
            PADDING = 1


            class Broker:
                async def submit(self):
                    self.pending += 1
        """
        one = run_rules(base, module="repro.service.broker", select={"SVC001"})
        two = run_rules(shifted, module="repro.service.broker", select={"SVC001"})
        assert one[0].fingerprint == two[0].fingerprint
        assert one[0].line != two[0].line

    def test_fingerprint_changes_with_snippet(self):
        a = run_rules(
            "class B:\n    async def f(self):\n        self.x += 1\n",
            module="repro.service.broker",
            select={"SVC001"},
        )
        b = run_rules(
            "class B:\n    async def f(self):\n        self.x += 2\n",
            module="repro.service.broker",
            select={"SVC001"},
        )
        assert a[0].fingerprint != b[0].fingerprint


class TestRes001AdhocResilience:
    def test_flags_bare_except(self):
        source = """
            def fetch():
                try:
                    return 1
                except:
                    return None
        """
        assert "RES001" in rules_hit(
            source, module="repro.service.broker", select={"RES001"}
        )

    def test_flags_sleep_in_while_loop(self):
        source = """
            import time

            def poll():
                while True:
                    time.sleep(0.1)
        """
        assert "RES001" in rules_hit(
            source, module="repro.cluster.router", select={"RES001"}
        )

    def test_flags_asyncio_sleep_in_for_loop(self):
        source = """
            import asyncio

            async def drain(items):
                for _ in items:
                    await asyncio.sleep(0.5)
        """
        assert "RES001" in rules_hit(
            source, module="repro.service.loadtest", select={"RES001"}
        )

    def test_allows_sleep_outside_loops(self):
        source = """
            import time

            def settle():
                time.sleep(0.1)
        """
        assert not rules_hit(
            source, module="repro.service.broker", select={"RES001"}
        )

    def test_policy_engine_is_exempt(self):
        source = """
            import time

            def run():
                while True:
                    time.sleep(0.01)
        """
        assert not rules_hit(
            source, module="repro.resilience.policy", select={"RES001"}
        )

    def test_out_of_scope_module_ignored(self):
        source = """
            def fetch():
                try:
                    return 1
                except:
                    return None
        """
        assert not rules_hit(
            source, module="repro.analysis.report", select={"RES001"}
        )

    def test_typed_except_is_fine(self):
        source = """
            def fetch():
                try:
                    return 1
                except ValueError:
                    return None
        """
        assert not rules_hit(
            source, module="repro.service.broker", select={"RES001"}
        )

    def test_nested_def_resets_loop_context(self):
        source = """
            import time

            def build(items):
                for item in items:
                    def pace():
                        time.sleep(0.1)  # not itself inside a loop
        """
        assert not rules_hit(
            source, module="repro.service.broker", select={"RES001"}
        )

    def test_waiver_comment_suppresses(self):
        source = """
            import asyncio

            async def generate(gaps):
                for gap in gaps:
                    await asyncio.sleep(gap)  # audit-ok: RES001 — pacing
        """
        assert not rules_hit(
            source, module="repro.service.loadtest", select={"RES001"}
        )


class TestTel001TelemetryHygiene:
    def test_flags_secret_attribute_key(self):
        assert "TEL001" in rules_hit(
            'span.set_attribute("sk", value)\n',
            module="repro.service.broker",
            select={"TEL001"},
        )

    def test_flags_secret_in_attribute_value(self):
        assert "TEL001" in rules_hit(
            'span.set_attribute("key_id", keypair.lam)\n',
            module="repro.service.broker",
            select={"TEL001"},
        )

    def test_flags_secret_label_keyword(self):
        assert "TEL001" in rules_hit(
            'metrics.counter("ops", alpha="x").inc()\n',
            module="repro.cluster.router",
            select={"TEL001"},
        )

    def test_flags_secret_in_label_value(self):
        assert "TEL001" in rules_hit(
            'tracer.start_span("round", key=blinding)\n',
            module="repro.resilience.chaos",
            select={"TEL001"},
        )

    def test_flags_secret_as_metric_value(self):
        assert "TEL001" in rules_hit(
            'metrics.gauge("level").set(eta)\n',
            module="repro.service.broker",
            select={"TEL001"},
        )

    def test_allows_public_attributes_and_labels(self):
        assert "TEL001" not in rules_hit(
            'span.set_attribute("shard", shard_id)\n'
            'metrics.counter("ops", reason="queue_full").inc()\n'
            'metrics.histogram("lat").observe(elapsed)\n',
            module="repro.service.broker",
            select={"TEL001"},
        )

    def test_exact_name_match_only(self):
        # ``skew``/``alphabet`` contain secret names as substrings but
        # are public identifiers.
        assert "TEL001" not in rules_hit(
            'span.set_attribute("clock", skew)\n'
            'metrics.counter("ops", kind=alphabet).inc()\n',
            module="repro.service.broker",
            select={"TEL001"},
        )

    def test_out_of_scope_module_ignored(self):
        findings = run_rules(
            'span.set_attribute("sk", value)\n',
            module="sandbox.notebook",
            select={"TEL001"},
        )
        assert not findings


class TestNet001WireFormatOwnership:
    def test_flags_socket_outside_netd(self):
        assert "NET001" in rules_hit(
            "import socket\n", module="repro.service.broker", select={"NET001"}
        )

    def test_flags_pickle_and_struct_from_imports(self):
        hits = rules_hit(
            "from struct import pack\nfrom pickle import loads\n",
            module="repro.pisa.sdc_server",
            select={"NET001"},
        )
        assert "NET001" in hits

    def test_netd_owns_its_primitives(self):
        assert not rules_hit(
            "import socket\nimport struct\n",
            module="repro.netd.framing",
            select={"NET001"},
        )

    def test_serialization_owner_allowlisted(self):
        assert not rules_hit(
            "import struct\n",
            module="repro.crypto.serialization",
            select={"NET001"},
        )

    def test_dotted_submodule_import_flagged(self):
        assert "NET001" in rules_hit(
            "import socket.timeout\n",
            module="repro.cluster.router",
            select={"NET001"},
        )

    def test_relative_import_not_confused_with_primitive(self):
        # ``from .struct import x`` is a package-local module, not stdlib.
        assert not rules_hit(
            "from .struct import layout\n",
            module="repro.watch.scenario",
            select={"NET001"},
        )

    def test_out_of_scope_module_ignored(self):
        assert not rules_hit(
            "import pickle\n", module="sandbox.notebook", select={"NET001"}
        )

    def test_waiver_comment_suppresses(self):
        assert not rules_hit(
            "import struct  # audit-ok: NET001 — scratch layout in a tool\n",
            module="repro.service.broker",
            select={"NET001"},
        )
