"""Smoke tests: every shipped example must run end to end.

Examples are documentation that executes; breaking one silently is how
repos rot.  Each test imports the script as a module and runs its
``main()`` with captured output, asserting on a signature line.
``city_scale`` is excluded here purely for suite runtime (it is
exercised manually and by CI-style full runs).
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "decision (known only to su-0)" in out
        assert "round trip" in out

    def test_privacy_tradeoff(self, capsys):
        out = run_example("privacy_tradeoff", capsys)
        assert "privacy 100%" in out
        assert "asymptotically linear" in out

    def test_sdr_testbed(self, capsys):
        out = run_example("sdr_testbed", capsys)
        assert "scenario-4" in out
        assert "su2: GRANTED" in out
        assert "su1: DENIED" in out

    def test_exclusion_zones(self, capsys):
        out = run_example("exclusion_zones", capsys)
        assert "spatial reuse unlocked" in out

    def test_federal_incumbent(self, capsys):
        out = run_example("federal_incumbent", capsys)
        assert "random-looking" in out
        assert "DENIED" in out and "GRANTED" in out

    def test_probing_attack(self, capsys):
        out = run_example("probing_attack", capsys)
        assert "recall 100%" in out
        assert "Lemma V.1" in out

    def test_power_negotiation(self, capsys):
        out = run_example("power_negotiation", capsys)
        assert "negotiated max power" in out
        assert "granted@best=True" in out

    def test_license_lifecycle(self, capsys):
        out = run_example("license_lifecycle", capsys)
        assert "state=licensed" in out
        assert "state=denied" in out

    def test_spectrum_market(self, capsys):
        out = run_example("spectrum_market", capsys)
        assert "STP" in out
        assert "requests served" in out
