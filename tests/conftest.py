"""Shared fixtures.

Key material is expensive to generate, so keypairs are session-scoped
and deterministic (seeded DRBG).  Key sizes are far below production —
fine for correctness tests; the benchmark suite measures real sizes.
"""

from __future__ import annotations

import pytest

from repro.crypto.paillier import PaillierKeypair, generate_keypair
from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.signatures import generate_rsa_keypair
from repro.watch.scenario import Scenario, ScenarioConfig, build_scenario

#: Small-but-safe test key size: large enough for 60-bit values plus
#: 100-bit blinding headroom, small enough to keep the suite fast.
TEST_KEY_BITS = 256


@pytest.fixture(scope="session")
def drng() -> DeterministicRandomSource:
    """A deterministic randomness source shared across the session."""
    return DeterministicRandomSource("pisa-tests")


@pytest.fixture(scope="session")
def keypair(drng) -> PaillierKeypair:
    """A session-wide 256-bit Paillier keypair."""
    return generate_keypair(TEST_KEY_BITS, rng=drng.fork("keypair"))


@pytest.fixture(scope="session")
def second_keypair(drng) -> PaillierKeypair:
    """A distinct keypair for cross-key error tests."""
    return generate_keypair(TEST_KEY_BITS, rng=drng.fork("keypair-2"))


@pytest.fixture(scope="session")
def rsa_keys(drng):
    """A session-wide small RSA signing keypair (public, private)."""
    return generate_rsa_keypair(128, rng=drng.fork("rsa"))


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    """The default small WATCH scenario (4x6 grid, 5 channels)."""
    return build_scenario(ScenarioConfig(seed=0))


@pytest.fixture()
def fresh_rng() -> DeterministicRandomSource:
    """A per-test deterministic source (isolated stream)."""
    return DeterministicRandomSource("per-test")


@pytest.fixture()
def protocol_transport():
    """The transport protocol tests should hand to a coordinator.

    By default this is the runtime-sanitized wrapper from
    :mod:`repro.audit.runtime`, so every protocol round exercised through
    the fixture also checks ciphertext well-formedness, STP envelope
    hygiene, and re-randomization freshness in flight.  Set
    ``PISA_SANITIZE=0`` to fall back to the bare transport (e.g. when
    bisecting whether the sanitizer itself perturbs a failure).
    """
    import os

    from repro.net.transport import InMemoryTransport

    inner = InMemoryTransport()
    if os.environ.get("PISA_SANITIZE", "1") == "0":
        return inner
    from repro.audit.runtime import SanitizingTransport

    return SanitizingTransport(inner)
