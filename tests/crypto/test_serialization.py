"""Unit tests for the wire serialisation layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.serialization import (
    ciphertext_wire_size,
    decode_bytes,
    decode_ciphertext,
    decode_ciphertext_matrix,
    decode_int,
    encode_bytes,
    encode_ciphertext,
    encode_ciphertext_matrix,
    encode_int,
    encoded_int_size,
    matrix_wire_size,
)
from repro.errors import SerializationError


class TestIntEncoding:
    @pytest.mark.parametrize("value", [0, 1, 255, 256, 2**64, 2**4096 - 1])
    def test_roundtrip(self, value):
        blob = encode_int(value)
        decoded, offset = decode_int(blob)
        assert decoded == value
        assert offset == len(blob)

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            encode_int(-1)

    def test_size_prediction(self):
        for value in (0, 1, 1000, 2**128):
            assert encoded_int_size(value) == len(encode_int(value))

    def test_truncated_prefix(self):
        with pytest.raises(SerializationError):
            decode_int(b"\x00\x00")

    def test_truncated_body(self):
        blob = encode_int(2**64)
        with pytest.raises(SerializationError):
            decode_int(blob[:-2])

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=2**512))
    def test_roundtrip_property(self, value):
        decoded, _ = decode_int(encode_int(value))
        assert decoded == value


class TestBytesEncoding:
    @pytest.mark.parametrize("data", [b"", b"x", b"hello world", bytes(range(256))])
    def test_roundtrip(self, data):
        decoded, offset = decode_bytes(encode_bytes(data))
        assert decoded == data

    def test_truncated(self):
        with pytest.raises(SerializationError):
            decode_bytes(encode_bytes(b"hello")[:-1])


class TestCiphertextEncoding:
    def test_roundtrip(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        ct = pk.encrypt(-1234, rng=fresh_rng)
        decoded, offset = decode_ciphertext(encode_ciphertext(ct), pk)
        assert sk.decrypt(decoded) == -1234

    def test_range_validation(self, keypair):
        pk = keypair.public_key
        blob = encode_int(pk.n_sq + 5)
        with pytest.raises(SerializationError):
            decode_ciphertext(blob, pk)

    def test_wire_size_upper_bound(self, keypair, fresh_rng):
        pk = keypair.public_key
        for value in (0, 5, -5, 2**50):
            ct = pk.encrypt(value, rng=fresh_rng)
            assert len(encode_ciphertext(ct)) <= ciphertext_wire_size(pk)


class TestMatrixEncoding:
    def test_roundtrip(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        matrix = [[pk.encrypt(r * 10 + c, rng=fresh_rng) for c in range(4)] for r in range(3)]
        blob = encode_ciphertext_matrix(matrix)
        decoded, offset = decode_ciphertext_matrix(blob, pk)
        assert offset == len(blob)
        assert [[sk.decrypt(ct) for ct in row] for row in decoded] == [
            [r * 10 + c for c in range(4)] for r in range(3)
        ]

    def test_empty_matrix(self, keypair):
        blob = encode_ciphertext_matrix([])
        decoded, _ = decode_ciphertext_matrix(blob, keypair.public_key)
        assert decoded == []

    def test_ragged_matrix_rejected(self, keypair, fresh_rng):
        pk = keypair.public_key
        rows = [[pk.encrypt(0, rng=fresh_rng)], []]
        with pytest.raises(SerializationError):
            encode_ciphertext_matrix(rows)

    def test_wire_size_accounting(self, keypair, fresh_rng):
        pk = keypair.public_key
        matrix = [[pk.encrypt(i, rng=fresh_rng) for i in range(3)] for _ in range(2)]
        flat = [ct for row in matrix for ct in row]
        assert matrix_wire_size(flat) == len(encode_ciphertext_matrix(matrix))


class TestKeySerialization:
    def test_public_key_roundtrip(self, keypair):
        from repro.crypto.serialization import decode_public_key, encode_public_key

        pk = keypair.public_key
        assert decode_public_key(encode_public_key(pk)) == pk

    def test_private_key_roundtrip(self, keypair, fresh_rng):
        from repro.crypto.serialization import (
            decode_private_key,
            encode_private_key,
        )

        sk = decode_private_key(encode_private_key(keypair.private_key))
        ct = keypair.public_key.encrypt(-777, rng=fresh_rng)
        assert sk.decrypt(ct) == -777

    def test_bad_magic_rejected(self):
        from repro.crypto.serialization import decode_private_key, decode_public_key

        with pytest.raises(SerializationError):
            decode_public_key(b"garbage")
        with pytest.raises(SerializationError):
            decode_private_key(b"garbage")

    def test_trailing_bytes_rejected(self, keypair):
        from repro.crypto.serialization import decode_public_key, encode_public_key

        blob = encode_public_key(keypair.public_key)
        with pytest.raises(SerializationError):
            decode_public_key(blob + b"\x00")
