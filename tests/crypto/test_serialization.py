"""Unit tests for the wire serialisation layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.serialization import (
    ciphertext_wire_size,
    decode_bytes,
    decode_ciphertext,
    decode_ciphertext_matrix,
    decode_int,
    encode_bytes,
    encode_ciphertext,
    encode_ciphertext_matrix,
    encode_int,
    encoded_int_size,
    matrix_wire_size,
)
from repro.errors import SerializationError


class TestIntEncoding:
    @pytest.mark.parametrize("value", [0, 1, 255, 256, 2**64, 2**4096 - 1])
    def test_roundtrip(self, value):
        blob = encode_int(value)
        decoded, offset = decode_int(blob)
        assert decoded == value
        assert offset == len(blob)

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            encode_int(-1)

    def test_size_prediction(self):
        for value in (0, 1, 1000, 2**128):
            assert encoded_int_size(value) == len(encode_int(value))

    def test_truncated_prefix(self):
        with pytest.raises(SerializationError):
            decode_int(b"\x00\x00")

    def test_truncated_body(self):
        blob = encode_int(2**64)
        with pytest.raises(SerializationError):
            decode_int(blob[:-2])

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=2**512))
    def test_roundtrip_property(self, value):
        decoded, _ = decode_int(encode_int(value))
        assert decoded == value


class TestBytesEncoding:
    @pytest.mark.parametrize("data", [b"", b"x", b"hello world", bytes(range(256))])
    def test_roundtrip(self, data):
        decoded, offset = decode_bytes(encode_bytes(data))
        assert decoded == data

    def test_truncated(self):
        with pytest.raises(SerializationError):
            decode_bytes(encode_bytes(b"hello")[:-1])


class TestCiphertextEncoding:
    def test_roundtrip(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        ct = pk.encrypt(-1234, rng=fresh_rng)
        decoded, offset = decode_ciphertext(encode_ciphertext(ct), pk)
        assert sk.decrypt(decoded) == -1234

    def test_range_validation(self, keypair):
        pk = keypair.public_key
        blob = encode_int(pk.n_sq + 5)
        with pytest.raises(SerializationError):
            decode_ciphertext(blob, pk)

    def test_wire_size_upper_bound(self, keypair, fresh_rng):
        pk = keypair.public_key
        for value in (0, 5, -5, 2**50):
            ct = pk.encrypt(value, rng=fresh_rng)
            assert len(encode_ciphertext(ct)) <= ciphertext_wire_size(pk)


class TestMatrixEncoding:
    def test_roundtrip(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        matrix = [[pk.encrypt(r * 10 + c, rng=fresh_rng) for c in range(4)] for r in range(3)]
        blob = encode_ciphertext_matrix(matrix)
        decoded, offset = decode_ciphertext_matrix(blob, pk)
        assert offset == len(blob)
        assert [[sk.decrypt(ct) for ct in row] for row in decoded] == [
            [r * 10 + c for c in range(4)] for r in range(3)
        ]

    def test_empty_matrix(self, keypair):
        blob = encode_ciphertext_matrix([])
        decoded, _ = decode_ciphertext_matrix(blob, keypair.public_key)
        assert decoded == []

    def test_ragged_matrix_rejected(self, keypair, fresh_rng):
        pk = keypair.public_key
        rows = [[pk.encrypt(0, rng=fresh_rng)], []]
        with pytest.raises(SerializationError):
            encode_ciphertext_matrix(rows)

    def test_wire_size_accounting(self, keypair, fresh_rng):
        pk = keypair.public_key
        matrix = [[pk.encrypt(i, rng=fresh_rng) for i in range(3)] for _ in range(2)]
        flat = [ct for row in matrix for ct in row]
        assert matrix_wire_size(flat) == len(encode_ciphertext_matrix(matrix))


class TestKeySerialization:
    def test_public_key_roundtrip(self, keypair):
        from repro.crypto.serialization import decode_public_key, encode_public_key

        pk = keypair.public_key
        assert decode_public_key(encode_public_key(pk)) == pk

    def test_private_key_roundtrip(self, keypair, fresh_rng):
        from repro.crypto.serialization import (
            decode_private_key,
            encode_private_key,
        )

        sk = decode_private_key(encode_private_key(keypair.private_key))
        ct = keypair.public_key.encrypt(-777, rng=fresh_rng)
        assert sk.decrypt(ct) == -777

    def test_bad_magic_rejected(self):
        from repro.crypto.serialization import decode_private_key, decode_public_key

        with pytest.raises(SerializationError):
            decode_public_key(b"garbage")
        with pytest.raises(SerializationError):
            decode_private_key(b"garbage")

    def test_trailing_bytes_rejected(self, keypair):
        from repro.crypto.serialization import decode_public_key, encode_public_key

        blob = encode_public_key(keypair.public_key)
        with pytest.raises(SerializationError):
            decode_public_key(blob + b"\x00")


class TestDjSerialization:
    """Round-trips and malformed-input rejection for the Damgård–Jurik forms."""

    @pytest.fixture(scope="class", params=[1, 2, 3])
    def dj_keypair(self, request):
        from repro.crypto.damgard_jurik import generate_dj_keypair
        from repro.crypto.rand import DeterministicRandomSource

        rng = DeterministicRandomSource(f"dj-serialization-{request.param}")
        return generate_dj_keypair(key_bits=128, s=request.param, rng=rng)

    def test_public_key_roundtrip(self, dj_keypair):
        from repro.crypto.serialization import (
            decode_dj_public_key,
            encode_dj_public_key,
        )

        pk = dj_keypair.public_key
        decoded = decode_dj_public_key(encode_dj_public_key(pk))
        assert decoded.n == pk.n
        assert decoded.s == pk.s
        assert decoded.n_s1 == pk.n_s1

    def test_private_key_roundtrip(self, dj_keypair, fresh_rng):
        from repro.crypto.serialization import (
            decode_dj_private_key,
            encode_dj_private_key,
        )

        sk = decode_dj_private_key(encode_dj_private_key(dj_keypair.private_key))
        assert sk.public_key.s == dj_keypair.public_key.s
        ct = dj_keypair.public_key.encrypt(-31337, rng=fresh_rng)
        assert sk.decrypt(ct) == -31337

    def test_ciphertext_roundtrip(self, dj_keypair, fresh_rng):
        from repro.crypto.serialization import (
            decode_dj_ciphertext,
            encode_dj_ciphertext,
        )

        pk, sk = dj_keypair.public_key, dj_keypair.private_key
        # Exercise the widened Z_{n^s} plaintext space for s > 1.
        value = pk.n - 2 if pk.s > 1 else 4242
        ct = pk.encrypt(value, rng=fresh_rng)
        blob = encode_dj_ciphertext(ct)
        decoded, offset = decode_dj_ciphertext(blob, pk)
        assert offset == len(blob)
        assert sk.decrypt(decoded) == value

    def test_ciphertext_range_validation(self, dj_keypair):
        from repro.crypto.serialization import decode_dj_ciphertext

        pk = dj_keypair.public_key
        blob = encode_int(pk.n_s1 + 9)
        with pytest.raises(SerializationError):
            decode_dj_ciphertext(blob, pk)

    def test_bad_magic_rejected(self):
        from repro.crypto.serialization import (
            decode_dj_private_key,
            decode_dj_public_key,
        )

        with pytest.raises(SerializationError):
            decode_dj_public_key(b"PISA-PK-v1garbage")
        with pytest.raises(SerializationError):
            decode_dj_private_key(b"garbage")

    def test_trailing_bytes_rejected(self, dj_keypair):
        from repro.crypto.serialization import (
            decode_dj_public_key,
            encode_dj_public_key,
        )

        blob = encode_dj_public_key(dj_keypair.public_key)
        with pytest.raises(SerializationError):
            decode_dj_public_key(blob + b"\x00")

    def test_invalid_s_rejected(self):
        from repro.crypto.serialization import decode_dj_public_key

        blob = b"PISA-DJPK-v1" + encode_int(77) + encode_int(0)
        with pytest.raises(SerializationError):
            decode_dj_public_key(blob)

    def test_truncated_private_key_rejected(self, dj_keypair):
        from repro.crypto.serialization import (
            decode_dj_private_key,
            encode_dj_private_key,
        )

        blob = encode_dj_private_key(dj_keypair.private_key)
        with pytest.raises(SerializationError):
            decode_dj_private_key(blob[:-3])
