"""Unit and property tests for the Damgård–Jurik generalisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.damgard_jurik import (
    DjPrivateKey,
    DjPublicKey,
    generate_dj_keypair,
)
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import (
    ConfigurationError,
    DecryptionError,
    EncodingRangeError,
    KeyMismatchError,
)

_RNG = DeterministicRandomSource("dj-tests")
_KP1 = generate_dj_keypair(192, s=1, rng=_RNG)
_KP2 = generate_dj_keypair(192, s=2, rng=_RNG)
_KP3 = generate_dj_keypair(128, s=3, rng=_RNG)


class TestKeyGeneration:
    def test_spaces_scale_with_s(self):
        assert _KP2.public_key.plaintext_bits > 2 * _KP1.public_key.plaintext_bits - 4
        assert _KP1.public_key.expansion_ratio == 2.0
        assert _KP2.public_key.expansion_ratio == 1.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DjPublicKey(4, s=1)
        with pytest.raises(ConfigurationError):
            DjPublicKey(10**10, s=0)
        with pytest.raises(ConfigurationError):
            generate_dj_keypair(8, rng=_RNG)

    def test_private_key_factor_check(self):
        with pytest.raises(ConfigurationError):
            DjPrivateKey(_KP2.public_key, 3, 5)


class TestRoundtrip:
    @pytest.mark.parametrize("keypair", [_KP1, _KP2, _KP3])
    def test_basic_values(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        for value in (0, 1, -1, 424242, -(10**9)):
            assert sk.decrypt(pk.encrypt(value, rng=fresh_rng)) == value

    def test_s2_holds_values_beyond_n(self, fresh_rng):
        """The point of DJ: plaintexts larger than n itself."""
        pk, sk = _KP2.public_key, _KP2.private_key
        big = (1 << 300) + 12345  # > n (192 bits), < n² / 2
        assert sk.decrypt(pk.encrypt(big, rng=fresh_rng)) == big

    def test_s3_holds_values_beyond_n_squared(self, fresh_rng):
        pk, sk = _KP3.public_key, _KP3.private_key
        big = 1 << 300  # > n² (256 bits), < n³ / 2
        assert sk.decrypt(pk.encrypt(big, rng=fresh_rng)) == big

    def test_range_enforced(self, fresh_rng):
        pk = _KP1.public_key
        with pytest.raises(EncodingRangeError):
            pk.encrypt(pk.n_s // 2 + 1, rng=fresh_rng)

    def test_cross_key_rejected(self, fresh_rng):
        ct = _KP1.public_key.encrypt(1, rng=fresh_rng)
        with pytest.raises(KeyMismatchError):
            _KP2.private_key.decrypt(ct)

    def test_ciphertext_range_check(self):
        with pytest.raises(DecryptionError):
            _KP1.private_key.raw_decrypt(0)

    @settings(max_examples=30, deadline=None)
    @given(value=st.integers(min_value=-(2**150), max_value=2**150))
    def test_roundtrip_property_s2(self, value):
        rng = DeterministicRandomSource(value & 0xFFFF)
        ct = _KP2.public_key.encrypt(value, rng=rng)
        assert _KP2.private_key.decrypt(ct) == value


class TestHomomorphism:
    @pytest.mark.parametrize("keypair", [_KP1, _KP2])
    def test_addition_subtraction(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        a = pk.encrypt(1000, rng=fresh_rng)
        b = pk.encrypt(-58, rng=fresh_rng)
        assert sk.decrypt(a + b) == 942
        assert sk.decrypt(a - b) == 1058
        assert sk.decrypt(-a) == -1000

    @pytest.mark.parametrize("scalar", [0, 1, -1, 33, -7])
    def test_scalar(self, fresh_rng, scalar):
        pk, sk = _KP2.public_key, _KP2.private_key
        assert sk.decrypt(scalar * pk.encrypt(11, rng=fresh_rng)) == 11 * scalar

    def test_plain_addition(self, fresh_rng):
        pk, sk = _KP2.public_key, _KP2.private_key
        assert sk.decrypt(pk.encrypt(40, rng=fresh_rng) + 2) == 42

    def test_rerandomize(self, fresh_rng):
        pk, sk = _KP2.public_key, _KP2.private_key
        ct = pk.encrypt(5, rng=fresh_rng)
        refreshed = ct.rerandomize(fresh_rng)
        assert refreshed.ciphertext != ct.ciphertext
        assert sk.decrypt(refreshed) == 5

    @settings(max_examples=25, deadline=None)
    @given(
        a=st.integers(min_value=-(2**120), max_value=2**120),
        b=st.integers(min_value=-(2**120), max_value=2**120),
        k=st.integers(min_value=-(2**20), max_value=2**20),
    )
    def test_affine_property_s2(self, a, b, k):
        rng = DeterministicRandomSource((a ^ b ^ k) & 0xFFFF)
        pk, sk = _KP2.public_key, _KP2.private_key
        ct = k * pk.encrypt(a, rng=rng) + pk.encrypt(b, rng=rng)
        assert sk.decrypt(ct) == k * a + b


class TestPaillierConsistency:
    def test_s1_matches_paillier(self, fresh_rng):
        """s = 1 must agree with the standalone Paillier implementation."""
        from repro.crypto.paillier import PaillierPrivateKey, PaillierPublicKey

        dj_pk, dj_sk = _KP1.public_key, _KP1.private_key
        p_pk = PaillierPublicKey(dj_pk.n)
        p_sk = PaillierPrivateKey(p_pk, dj_sk.p, dj_sk.q)
        for value in (0, 7, -1234, 2**60):
            dj_ct = dj_pk.encrypt(value, rng=fresh_rng)
            # Same ciphertext space: Paillier can decrypt DJ s=1 output.
            from repro.crypto.paillier import EncryptedNumber

            assert p_sk.decrypt(EncryptedNumber(p_pk, dj_ct.ciphertext)) == value
