"""Unit tests for the Paillier cryptosystem."""

import pytest

from repro.crypto.paillier import (
    EncryptedNumber,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
    hom_sum,
)
from repro.errors import (
    ConfigurationError,
    DecryptionError,
    EncodingRangeError,
    KeyMismatchError,
)


class TestKeyGeneration:
    def test_modulus_bit_length(self, keypair):
        assert keypair.public_key.key_bits == 256
        assert keypair.key_bits == 256

    def test_default_generator(self, keypair):
        assert keypair.public_key.g == keypair.public_key.n + 1

    def test_too_small_key_raises(self, fresh_rng):
        with pytest.raises(ConfigurationError):
            generate_keypair(8, rng=fresh_rng)

    def test_private_key_rejects_wrong_factors(self, keypair):
        pk = keypair.public_key
        with pytest.raises(ConfigurationError):
            PaillierPrivateKey(pk, 3, 5)

    def test_public_key_equality_and_hash(self, keypair, second_keypair):
        pk = keypair.public_key
        same = PaillierPublicKey(pk.n)
        assert pk == same and hash(pk) == hash(same)
        assert pk != second_keypair.public_key


class TestEncryptDecrypt:
    @pytest.mark.parametrize("value", [0, 1, -1, 42, -42, 2**59, -(2**59)])
    def test_roundtrip(self, keypair, fresh_rng, value):
        ct = keypair.public_key.encrypt(value, rng=fresh_rng)
        assert keypair.private_key.decrypt(ct) == value

    def test_probabilistic_encryption(self, keypair, fresh_rng):
        pk = keypair.public_key
        a = pk.encrypt(5, rng=fresh_rng)
        b = pk.encrypt(5, rng=fresh_rng)
        assert a.ciphertext != b.ciphertext

    def test_crt_matches_textbook(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        for value in (0, 7, 12345, pk.n - 1):
            ct = pk.raw_encrypt(value, rng=fresh_rng)
            assert sk.raw_decrypt(ct) == sk.raw_decrypt_textbook(ct)

    def test_out_of_range_plaintext_raises(self, keypair, fresh_rng):
        half = keypair.public_key.n // 2
        with pytest.raises(EncodingRangeError):
            keypair.public_key.encrypt(half + 1, rng=fresh_rng)

    def test_decrypt_wrong_key_raises(self, keypair, second_keypair, fresh_rng):
        ct = keypair.public_key.encrypt(1, rng=fresh_rng)
        with pytest.raises(KeyMismatchError):
            second_keypair.private_key.decrypt(ct)

    def test_raw_decrypt_range_check(self, keypair):
        with pytest.raises(DecryptionError):
            keypair.private_key.raw_decrypt(0)
        with pytest.raises(DecryptionError):
            keypair.private_key.raw_decrypt(keypair.public_key.n_sq + 1)

    def test_encrypt_zero_decrypts_to_zero(self, keypair, fresh_rng):
        ct = keypair.public_key.encrypt_zero(rng=fresh_rng)
        assert keypair.private_key.decrypt(ct) == 0


class TestHomomorphicOperations:
    def test_addition(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        ct = pk.encrypt(20, rng=fresh_rng) + pk.encrypt(22, rng=fresh_rng)
        assert sk.decrypt(ct) == 42

    def test_addition_with_negative(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        ct = pk.encrypt(-50, rng=fresh_rng) + pk.encrypt(8, rng=fresh_rng)
        assert sk.decrypt(ct) == -42

    def test_subtraction(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        ct = pk.encrypt(100, rng=fresh_rng) - pk.encrypt(58, rng=fresh_rng)
        assert sk.decrypt(ct) == 42

    def test_subtraction_goes_negative(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        ct = pk.encrypt(5, rng=fresh_rng) - pk.encrypt(9, rng=fresh_rng)
        assert sk.decrypt(ct) == -4

    @pytest.mark.parametrize("scalar", [0, 1, -1, 3, -7, 1000])
    def test_scalar_multiplication(self, keypair, fresh_rng, scalar):
        pk, sk = keypair.public_key, keypair.private_key
        ct = scalar * pk.encrypt(11, rng=fresh_rng)
        assert sk.decrypt(ct) == 11 * scalar

    def test_negation(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        assert sk.decrypt(-pk.encrypt(99, rng=fresh_rng)) == -99

    def test_plaintext_addition(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        ct = pk.encrypt(40, rng=fresh_rng)
        assert sk.decrypt(ct + 2) == 42
        assert sk.decrypt(ct - 50) == -10
        assert sk.decrypt(2 + ct) == 42

    def test_cross_key_operations_raise(self, keypair, second_keypair, fresh_rng):
        a = keypair.public_key.encrypt(1, rng=fresh_rng)
        b = second_keypair.public_key.encrypt(1, rng=fresh_rng)
        with pytest.raises(KeyMismatchError):
            a + b
        with pytest.raises(KeyMismatchError):
            a - b

    def test_operator_type_errors(self, keypair, fresh_rng):
        ct = keypair.public_key.encrypt(1, rng=fresh_rng)
        with pytest.raises(TypeError):
            ct + 1.5
        with pytest.raises(TypeError):
            ct * 2.0

    def test_hom_sum(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        cts = [pk.encrypt(i, rng=fresh_rng) for i in range(10)]
        assert sk.decrypt(hom_sum(cts)) == sum(range(10))

    def test_hom_sum_empty_raises(self):
        with pytest.raises(ValueError):
            hom_sum([])


class TestRerandomization:
    def test_preserves_plaintext_changes_ciphertext(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        ct = pk.encrypt(1234, rng=fresh_rng)
        refreshed = ct.rerandomize(fresh_rng)
        assert refreshed.ciphertext != ct.ciphertext
        assert sk.decrypt(refreshed) == 1234

    def test_repeated_refresh(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        ct = pk.encrypt(-77, rng=fresh_rng)
        for _ in range(5):
            ct = ct.rerandomize(fresh_rng)
        assert sk.decrypt(ct) == -77


class TestEncryptedNumberIdentity:
    def test_equality_and_hash(self, keypair, fresh_rng):
        pk = keypair.public_key
        ct = pk.encrypt(5, rng=fresh_rng)
        clone = EncryptedNumber(pk, ct.ciphertext)
        assert ct == clone and hash(ct) == hash(clone)
        assert ct != pk.encrypt(5, rng=fresh_rng)  # fresh randomness

    def test_repr_mentions_bits(self, keypair, fresh_rng):
        assert "256" in repr(keypair.public_key.encrypt(0, rng=fresh_rng))


class TestObfuscatorPool:
    def test_refill_and_take(self, keypair, fresh_rng):
        from repro.crypto.paillier import ObfuscatorPool

        pool = ObfuscatorPool(keypair.public_key, rng=fresh_rng)
        pool.refill(5)
        assert len(pool) == 5
        pool.take()
        assert len(pool) == 4

    def test_ensure_tops_up(self, keypair, fresh_rng):
        from repro.crypto.paillier import ObfuscatorPool

        pool = ObfuscatorPool(keypair.public_key, rng=fresh_rng)
        pool.refill(2)
        pool.ensure(6)
        assert len(pool) == 6
        pool.ensure(3)  # already above target: no change
        assert len(pool) == 6

    def test_take_from_empty_refills_inline(self, keypair, fresh_rng):
        from repro.crypto.paillier import ObfuscatorPool

        pool = ObfuscatorPool(keypair.public_key, rng=fresh_rng)
        assert pool.take() > 0

    def test_negative_refill_rejected(self, keypair, fresh_rng):
        from repro.crypto.paillier import ObfuscatorPool

        pool = ObfuscatorPool(keypair.public_key, rng=fresh_rng)
        with pytest.raises(ValueError):
            pool.refill(-1)

    def test_rerandomize_with_preserves_plaintext(self, keypair, fresh_rng):
        from repro.crypto.paillier import ObfuscatorPool

        pk, sk = keypair.public_key, keypair.private_key
        pool = ObfuscatorPool(pk, rng=fresh_rng)
        pool.refill(1)
        ct = pk.encrypt(-4321, rng=fresh_rng)
        refreshed = ct.rerandomize_with(pool.take())
        assert refreshed.ciphertext != ct.ciphertext
        assert sk.decrypt(refreshed) == -4321
