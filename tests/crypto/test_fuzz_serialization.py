"""Fuzz tests: malformed wire input must raise, never crash or hang.

A deployed SDC parses attacker-supplied bytes; every decoder must fail
closed with :class:`~repro.errors.SerializationError` (or a controlled
protocol error) on arbitrary garbage, truncations, and bit flips.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.serialization import (
    decode_bytes,
    decode_ciphertext,
    decode_ciphertext_matrix,
    decode_int,
    decode_private_key,
    decode_public_key,
    encode_ciphertext_matrix,
)
from repro.errors import ReproError, SerializationError
from repro.pisa.license import TransmissionLicense
from repro.pisa.messages import (
    PUUpdateMessage,
    SignExtractionRequest,
    SURequestMessage,
)

fuzz = settings(max_examples=120, deadline=None)
garbage = st.binary(min_size=0, max_size=200)


class TestPrimitiveDecoders:
    @fuzz
    @given(buffer=garbage)
    def test_decode_int_never_crashes(self, buffer):
        try:
            value, offset = decode_int(buffer)
            assert 0 <= offset <= len(buffer)
            assert value >= 0
        except SerializationError:
            pass

    @fuzz
    @given(buffer=garbage)
    def test_decode_bytes_never_crashes(self, buffer):
        try:
            decode_bytes(buffer)
        except SerializationError:
            pass

    @fuzz
    @given(buffer=garbage)
    def test_decode_keys_never_crash(self, buffer):
        for decoder in (decode_public_key, decode_private_key):
            try:
                decoder(buffer)
            except ReproError:
                pass


class TestMessageDecoders:
    @fuzz
    @given(buffer=garbage)
    def test_message_parsers_fail_closed(self, buffer, keypair):
        pk = keypair.public_key
        for parser in (
            lambda b: PUUpdateMessage.from_bytes(b, pk),
            lambda b: SURequestMessage.from_bytes(b, pk),
            lambda b: SignExtractionRequest.from_bytes(b, pk),
            lambda b: decode_ciphertext(b, pk),
            lambda b: decode_ciphertext_matrix(b, pk),
            TransmissionLicense.from_bytes,
        ):
            try:
                parser(buffer)
            except ReproError:
                pass
            except (UnicodeDecodeError, OverflowError, MemoryError):
                pytest.fail("decoder leaked a non-library exception")

    def test_bitflipped_update_parses_or_raises(self, keypair, fresh_rng):
        """A single flipped bit either still parses (into a different —
        possibly undecryptable — ciphertext) or raises cleanly."""
        pk = keypair.public_key
        msg = PUUpdateMessage(
            "pu-1", 3, tuple(pk.encrypt(v, rng=fresh_rng) for v in (1, 2, 3))
        )
        clean = msg.to_bytes()
        for flip_at in range(0, len(clean), 7):
            for flip_bit in (0, 5):
                blob = bytearray(clean)
                blob[flip_at] ^= 1 << flip_bit
                try:
                    PUUpdateMessage.from_bytes(bytes(blob), pk)
                except ReproError:
                    pass
                except UnicodeDecodeError:
                    pass  # pu_id flipped into invalid UTF-8: a parse error


class TestTruncations:
    def test_every_truncation_of_a_valid_matrix_raises(self, keypair, fresh_rng):
        pk = keypair.public_key
        matrix = [[pk.encrypt(i, rng=fresh_rng) for i in range(2)] for _ in range(2)]
        blob = encode_ciphertext_matrix(matrix)
        for cut in range(len(blob) - 1, max(len(blob) - 40, 0), -1):
            with pytest.raises(SerializationError):
                decode_ciphertext_matrix(blob[:cut], pk)

    def test_every_truncation_of_a_license_raises(self):
        lic = TransmissionLicense(
            su_id="su", issuer_id="sdc", request_digest=b"\x01" * 32,
            channels=(0, 1), issued_at=99,
        )
        blob = lic.to_bytes()
        for cut in range(len(blob) - 1, len(blob) - 30, -1):
            with pytest.raises(SerializationError):
                TransmissionLicense.from_bytes(blob[:cut])
