"""Unit and property tests for slot packing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.packing import SlotLayout
from repro.crypto.paillier import PaillierPublicKey
from repro.errors import ConfigurationError, EncodingRangeError


def fake_key(bits: int) -> PaillierPublicKey:
    return PaillierPublicKey((1 << (bits - 1)) + 15)


@pytest.fixture()
def layout():
    return SlotLayout(slot_bits=16, num_slots=4)


class TestGeometry:
    def test_for_key_budgets_pipeline(self):
        layout = SlotLayout.for_key(fake_key(2048), value_bits=67, scale_bits=64,
                                    headroom_bits=4)
        assert layout.slot_bits == 135
        assert layout.num_slots == (2048 - 2) // 135  # 15 slots

    def test_for_key_too_small_raises(self):
        with pytest.raises(ConfigurationError):
            SlotLayout.for_key(fake_key(64), value_bits=67, scale_bits=64)

    def test_shift(self, layout):
        assert layout.shift(0) == 1
        assert layout.shift(2) == 1 << 32
        with pytest.raises(EncodingRangeError):
            layout.shift(4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlotLayout(slot_bits=1, num_slots=2)
        with pytest.raises(ConfigurationError):
            SlotLayout(slot_bits=8, num_slots=0)


class TestPackUnpack:
    def test_roundtrip(self, layout):
        values = [1, 65535, 0, 42]
        assert layout.unpack(layout.pack(values)) == values

    def test_short_list_pads_zero(self, layout):
        assert layout.unpack(layout.pack([7])) == [7, 0, 0, 0]

    def test_count_limit(self, layout):
        assert layout.unpack(layout.pack([1, 2, 3]), count=2) == [1, 2]
        with pytest.raises(EncodingRangeError):
            layout.unpack(0, count=5)

    def test_value_range_enforced(self, layout):
        with pytest.raises(EncodingRangeError):
            layout.pack([1 << 16])
        with pytest.raises(EncodingRangeError):
            layout.pack([-1])

    def test_too_many_values(self, layout):
        with pytest.raises(EncodingRangeError):
            layout.pack([0] * 5)

    def test_overflow_detected_on_unpack(self, layout):
        with pytest.raises(EncodingRangeError):
            layout.unpack(1 << 64)
        with pytest.raises(EncodingRangeError):
            layout.unpack(-1)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**16 - 1),
                    min_size=0, max_size=4))
    def test_roundtrip_property(self, values):
        layout = SlotLayout(slot_bits=16, num_slots=4)
        assert layout.unpack(layout.pack(values))[: len(values)] == values


class TestChunking:
    def test_chunk_count(self, layout):
        assert layout.chunk_count(0) == 0
        assert layout.chunk_count(1) == 1
        assert layout.chunk_count(4) == 1
        assert layout.chunk_count(5) == 2

    def test_chunks_preserve_order(self, layout):
        chunks = layout.chunks(list(range(10)))
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]


class TestHomomorphicSlotAlgebra:
    """Packed plaintexts must behave slot-wise under Paillier ops."""

    def test_slotwise_addition(self, keypair, fresh_rng):
        layout = SlotLayout(slot_bits=20, num_slots=5)
        pk, sk = keypair.public_key, keypair.private_key
        a = [10, 20, 30, 40, 50]
        b = [1, 2, 3, 4, 5]
        ct = pk.encrypt(layout.pack(a), rng=fresh_rng) + pk.encrypt(
            layout.pack(b), rng=fresh_rng
        )
        assert layout.unpack(sk.decrypt(ct)) == [11, 22, 33, 44, 55]

    def test_slotwise_scalar(self, keypair, fresh_rng):
        layout = SlotLayout(slot_bits=20, num_slots=5)
        pk, sk = keypair.public_key, keypair.private_key
        ct = 7 * pk.encrypt(layout.pack([1, 2, 3]), rng=fresh_rng)
        assert layout.unpack(sk.decrypt(ct))[:3] == [7, 14, 21]

    def test_shift_places_single_value(self, keypair, fresh_rng):
        """The SDC's W̃ folding: shift an unpacked value into a slot."""
        layout = SlotLayout(slot_bits=20, num_slots=5)
        pk, sk = keypair.public_key, keypair.private_key
        w = pk.encrypt(99, rng=fresh_rng)
        base = pk.encrypt(layout.pack([5, 5, 5, 5, 5]), rng=fresh_rng)
        ct = base + w.scalar_mul(layout.shift(3))
        assert layout.unpack(sk.decrypt(ct)) == [5, 5, 5, 104, 5]

    def test_transient_negative_slots_cancel(self, keypair, fresh_rng):
        """Intermediate per-slot negativity is exact integer arithmetic."""
        layout = SlotLayout(slot_bits=20, num_slots=3)
        pk, sk = keypair.public_key, keypair.private_key
        a = pk.encrypt(layout.pack([5, 0, 9]), rng=fresh_rng)
        b = pk.encrypt(layout.pack([9, 0, 5]), rng=fresh_rng)
        # a − b has slot 0 at −4 (transient); adding 10 per slot fixes it.
        ct = (a - b).add_plain(layout.pack([10, 10, 10]))
        assert layout.unpack(sk.decrypt(ct)) == [6, 10, 14]
