"""Property-based tests for the Paillier invariants (DESIGN.md §6.1)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import generate_keypair
from repro.crypto.rand import DeterministicRandomSource

# One module-level keypair: hypothesis calls the test many times and key
# generation must not dominate.
_RNG = DeterministicRandomSource("paillier-props")
_KEYPAIR = generate_keypair(256, rng=_RNG)
_PK = _KEYPAIR.public_key
_SK = _KEYPAIR.private_key

# Stay inside the 60-bit paper range so sums/products cannot overflow the
# 256-bit test modulus' signed half-range.
values = st.integers(min_value=-(2**60), max_value=2**60)
small_scalars = st.integers(min_value=-(2**20), max_value=2**20)

relaxed = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@relaxed
@given(value=values)
def test_roundtrip(value):
    assert _SK.decrypt(_PK.encrypt(value, rng=_RNG)) == value


@relaxed
@given(a=values, b=values)
def test_homomorphic_addition(a, b):
    ct = _PK.encrypt(a, rng=_RNG) + _PK.encrypt(b, rng=_RNG)
    assert _SK.decrypt(ct) == a + b


@relaxed
@given(a=values, b=values)
def test_homomorphic_subtraction(a, b):
    ct = _PK.encrypt(a, rng=_RNG) - _PK.encrypt(b, rng=_RNG)
    assert _SK.decrypt(ct) == a - b


@relaxed
@given(a=values, k=small_scalars)
def test_scalar_multiplication(a, k):
    assert _SK.decrypt(k * _PK.encrypt(a, rng=_RNG)) == k * a


@relaxed
@given(a=values, b=values)
def test_plaintext_addition_matches_encrypted(a, b):
    via_plain = _PK.encrypt(a, rng=_RNG) + b
    assert _SK.decrypt(via_plain) == a + b


@relaxed
@given(a=values)
def test_rerandomization_invariant(a):
    ct = _PK.encrypt(a, rng=_RNG)
    refreshed = ct.rerandomize(_RNG)
    assert refreshed.ciphertext != ct.ciphertext
    assert _SK.decrypt(refreshed) == a


@relaxed
@given(a=values, b=values, k=small_scalars)
def test_affine_combination(a, b, k):
    """D(k⊗E(a) ⊕ E(b)) == k·a + b — the shape of every PISA step."""
    ct = _PK.encrypt(a, rng=_RNG) * k + _PK.encrypt(b, rng=_RNG)
    assert _SK.decrypt(ct) == k * a + b
