"""Unit tests for repro.crypto.numtheory."""

import pytest

from repro.crypto.numtheory import (
    CrtContext,
    crt_pair,
    generate_distinct_primes,
    generate_prime,
    is_probable_prime,
    lcm,
    modinv,
)
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import CryptoError

KNOWN_PRIMES = [2, 3, 5, 7, 97, 65537, 2**127 - 1, 2**521 - 1]
KNOWN_COMPOSITES = [1, 4, 91, 561, 1105, 41041, 2**128 - 1]  # incl. Carmichael


class TestIsProbablePrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_accepts_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_rejects_composites_and_carmichael(self, n):
        assert not is_probable_prime(n)

    def test_rejects_negatives_and_zero(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(-7)

    def test_small_even_numbers(self):
        assert not is_probable_prime(100)
        assert is_probable_prime(2)


class TestGeneratePrime:
    def test_exact_bit_length(self, fresh_rng):
        for bits in (16, 32, 64, 128):
            p = generate_prime(bits, rng=fresh_rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_too_small_raises(self, fresh_rng):
        with pytest.raises(CryptoError):
            generate_prime(4, rng=fresh_rng)

    def test_distinct_primes(self, fresh_rng):
        p, q = generate_distinct_primes(32, count=2, rng=fresh_rng)
        assert p != q
        assert is_probable_prime(p) and is_probable_prime(q)

    def test_deterministic_with_seeded_rng(self):
        a = generate_prime(64, rng=DeterministicRandomSource(7))
        b = generate_prime(64, rng=DeterministicRandomSource(7))
        assert a == b


class TestModinv:
    def test_inverse_property(self):
        assert (modinv(3, 11) * 3) % 11 == 1
        assert (modinv(17, 3120) * 17) % 3120 == 1

    def test_non_invertible_raises(self):
        with pytest.raises(CryptoError):
            modinv(6, 9)


class TestLcm:
    def test_values(self):
        assert lcm(4, 6) == 12
        assert lcm(7, 13) == 91
        assert lcm(10, 10) == 10

    def test_rejects_non_positive(self):
        with pytest.raises(CryptoError):
            lcm(0, 5)
        with pytest.raises(CryptoError):
            lcm(5, -1)


class TestCrt:
    def test_crt_pair_recovers_value(self):
        p, q = 101, 103
        for value in (0, 1, 55, 101 * 103 - 1, 5000):
            v = value % (p * q)
            assert crt_pair(v % p, v % q, p, q) == v

    def test_context_combine(self):
        ctx = CrtContext.create(101, 103)
        for value in (7, 9999, 101 * 103 - 1):
            assert ctx.combine(value % 101, value % 103) == value

    def test_context_rejects_equal_moduli(self):
        with pytest.raises(CryptoError):
            CrtContext.create(101, 101)

    def test_context_rejects_non_coprime(self):
        with pytest.raises(CryptoError):
            CrtContext.create(12, 18)
