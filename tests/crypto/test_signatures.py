"""Unit tests for RSA-FDH license signatures."""

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.signatures import (
    RsaFdhSigner,
    RsaFdhVerifier,
    full_domain_hash,
    generate_rsa_keypair,
)
from repro.errors import ConfigurationError, SignatureError


@pytest.fixture(scope="module")
def keys():
    return generate_rsa_keypair(128, rng=DeterministicRandomSource("rsa-tests"))


class TestKeyGeneration:
    def test_modulus_size(self, keys):
        public, private = keys
        assert public.key_bits == 128
        assert private.public_key is public

    def test_too_small_raises(self):
        with pytest.raises(ConfigurationError):
            generate_rsa_keypair(16)


class TestFullDomainHash:
    def test_deterministic(self, keys):
        public, _ = keys
        assert full_domain_hash(b"m", public.n) == full_domain_hash(b"m", public.n)

    def test_message_sensitivity(self, keys):
        public, _ = keys
        assert full_domain_hash(b"m1", public.n) != full_domain_hash(b"m2", public.n)

    def test_output_in_range(self, keys):
        public, _ = keys
        for msg in (b"", b"a", b"x" * 1000):
            assert 0 <= full_domain_hash(msg, public.n) < public.n


class TestSignVerify:
    def test_valid_signature(self, keys):
        public, private = keys
        sig = RsaFdhSigner(private).sign(b"license")
        assert RsaFdhVerifier(public).verify(b"license", sig)

    def test_tampered_message_fails(self, keys):
        public, private = keys
        sig = RsaFdhSigner(private).sign(b"license")
        assert not RsaFdhVerifier(public).verify(b"license2", sig)

    def test_tampered_signature_fails(self, keys):
        public, private = keys
        sig = RsaFdhSigner(private).sign(b"license")
        assert not RsaFdhVerifier(public).verify(b"license", sig + 1)

    def test_out_of_range_signature_fails(self, keys):
        public, _ = keys
        assert not RsaFdhVerifier(public).verify(b"license", -1)
        assert not RsaFdhVerifier(public).verify(b"license", public.n)

    def test_cross_key_fails(self, keys):
        public, private = keys
        other_public, _ = generate_rsa_keypair(
            128, rng=DeterministicRandomSource("rsa-other")
        )
        sig = RsaFdhSigner(private).sign(b"license")
        assert not RsaFdhVerifier(other_public).verify(b"license", sig)

    def test_max_value_bound(self, keys):
        _, private = keys
        signer = RsaFdhSigner(private)
        # A bound far below the modulus will (with overwhelming
        # probability over messages) reject some signature.
        with pytest.raises(SignatureError):
            for i in range(50):
                signer.sign(f"msg-{i}".encode(), max_value=2)

    def test_signature_fits_larger_plaintext_space(self, keys):
        _, private = keys
        signer = RsaFdhSigner(private)
        bound = private.public_key.n  # Paillier modulus would be larger
        sig = signer.sign(b"license", max_value=bound)
        assert sig < bound
