"""Unit tests for repro.crypto.rand."""

import pytest

from repro.crypto.rand import (
    DeterministicRandomSource,
    SystemRandomSource,
    default_rng,
)


class TestDeterministicRandomSource:
    def test_same_seed_same_stream(self):
        a = DeterministicRandomSource(42)
        b = DeterministicRandomSource(42)
        assert [a.randbits(37) for _ in range(20)] == [b.randbits(37) for _ in range(20)]

    def test_different_seeds_differ(self):
        a = DeterministicRandomSource(1)
        b = DeterministicRandomSource(2)
        assert [a.randbits(64) for _ in range(4)] != [b.randbits(64) for _ in range(4)]

    def test_accepts_str_and_bytes_seeds(self):
        assert DeterministicRandomSource("x").randbits(8) == DeterministicRandomSource(
            b"x"
        ).randbits(8)

    def test_fork_is_independent(self):
        base = DeterministicRandomSource(5)
        fork_a = base.fork("a")
        fork_b = base.fork("b")
        assert fork_a.randbits(64) != fork_b.randbits(64)
        # Forking does not perturb the parent stream.
        fresh = DeterministicRandomSource(5)
        assert base.randbits(64) == fresh.randbits(64)

    def test_randbits_zero(self):
        assert DeterministicRandomSource(0).randbits(0) == 0

    def test_randbits_negative_raises(self):
        with pytest.raises(ValueError):
            DeterministicRandomSource(0).randbits(-1)

    def test_randbits_within_range(self):
        rng = DeterministicRandomSource(9)
        for bits in (1, 8, 63, 257):
            for _ in range(10):
                assert 0 <= rng.randbits(bits) < (1 << bits)


class TestRandomSourceHelpers:
    def test_randbelow_bounds(self):
        rng = DeterministicRandomSource(3)
        for _ in range(200):
            assert 0 <= rng.randbelow(17) < 17

    def test_randbelow_rejects_non_positive(self):
        with pytest.raises(ValueError):
            DeterministicRandomSource(0).randbelow(0)

    def test_randrange_bounds(self):
        rng = DeterministicRandomSource(3)
        values = {rng.randrange(10, 15) for _ in range(200)}
        assert values == {10, 11, 12, 13, 14}

    def test_randrange_empty_raises(self):
        with pytest.raises(ValueError):
            DeterministicRandomSource(0).randrange(5, 5)

    def test_rand_odd_properties(self):
        rng = DeterministicRandomSource(4)
        for bits in (8, 16, 64):
            value = rng.rand_odd(bits)
            assert value % 2 == 1
            assert value.bit_length() == bits

    def test_rand_odd_too_small(self):
        with pytest.raises(ValueError):
            DeterministicRandomSource(0).rand_odd(1)

    def test_choice(self):
        rng = DeterministicRandomSource(4)
        seq = ["a", "b", "c"]
        assert {rng.choice(seq) for _ in range(50)} == set(seq)

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            DeterministicRandomSource(0).choice([])


class TestSystemSource:
    def test_randbits_range(self):
        rng = SystemRandomSource()
        assert 0 <= rng.randbits(16) < 1 << 16

    def test_default_rng_passthrough(self):
        custom = DeterministicRandomSource(1)
        assert default_rng(custom) is custom
        assert isinstance(default_rng(None), SystemRandomSource)
