"""Unit and property tests for threshold Paillier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.threshold import (
    PartialDecryption,
    combine_partials,
    generate_threshold_keypair,
)
from repro.errors import ConfigurationError, CryptoError, DecryptionError

_KEYPAIR = generate_threshold_keypair(
    256, num_shares=2, rng=DeterministicRandomSource("threshold-tests")
)
_PK = _KEYPAIR.public_key


class TestGeneration:
    def test_share_count(self):
        assert _KEYPAIR.num_shares == 2
        assert [s.index for s in _KEYPAIR.shares] == [0, 1]

    def test_three_shares(self, fresh_rng):
        keypair = generate_threshold_keypair(128, num_shares=3, rng=fresh_rng)
        assert keypair.num_shares == 3

    def test_validation(self, fresh_rng):
        with pytest.raises(ConfigurationError):
            generate_threshold_keypair(128, num_shares=1, rng=fresh_rng)
        with pytest.raises(ConfigurationError):
            generate_threshold_keypair(8, rng=fresh_rng)

    def test_shares_differ(self):
        assert _KEYPAIR.shares[0].exponent != _KEYPAIR.shares[1].exponent


class TestDecryption:
    @pytest.mark.parametrize("value", [0, 1, -1, 12345, -(2**59), 2**59])
    def test_roundtrip(self, fresh_rng, value):
        ct = _PK.encrypt(value, rng=fresh_rng)
        partials = [share.partial_decrypt(ct) for share in _KEYPAIR.shares]
        assert combine_partials(_PK, partials) == value

    def test_order_independent(self, fresh_rng):
        ct = _PK.encrypt(42, rng=fresh_rng)
        partials = [share.partial_decrypt(ct) for share in _KEYPAIR.shares]
        assert combine_partials(_PK, list(reversed(partials))) == 42

    def test_works_after_homomorphic_ops(self, fresh_rng):
        """Threshold decryption must commute with the protocol algebra."""
        a = _PK.encrypt(100, rng=fresh_rng)
        b = _PK.encrypt(-58, rng=fresh_rng)
        ct = (a + b) * 3
        partials = [share.partial_decrypt(ct) for share in _KEYPAIR.shares]
        assert combine_partials(_PK, partials) == 126

    def test_three_share_roundtrip(self, fresh_rng):
        keypair = generate_threshold_keypair(128, num_shares=3, rng=fresh_rng)
        ct = keypair.public_key.encrypt(-7, rng=fresh_rng)
        partials = [share.partial_decrypt(ct) for share in keypair.shares]
        assert combine_partials(keypair.public_key, partials) == -7

    @settings(max_examples=25, deadline=None)
    @given(value=st.integers(min_value=-(2**60), max_value=2**60))
    def test_roundtrip_property(self, value):
        rng = DeterministicRandomSource(value & 0xFFFF)
        ct = _PK.encrypt(value, rng=rng)
        partials = [share.partial_decrypt(ct) for share in _KEYPAIR.shares]
        assert combine_partials(_PK, partials) == value


class TestShareIsolation:
    """The STP-free design's point: one share decrypts nothing."""

    def test_single_partial_rejected(self, fresh_rng):
        ct = _PK.encrypt(5, rng=fresh_rng)
        partial = _KEYPAIR.shares[0].partial_decrypt(ct)
        with pytest.raises(DecryptionError):
            combine_partials(_PK, [partial])

    def test_duplicate_partials_rejected(self, fresh_rng):
        ct = _PK.encrypt(5, rng=fresh_rng)
        partial = _KEYPAIR.shares[0].partial_decrypt(ct)
        with pytest.raises(DecryptionError):
            combine_partials(_PK, [partial, partial])

    def test_empty_combine_rejected(self):
        with pytest.raises(DecryptionError):
            combine_partials(_PK, [])

    def test_partial_value_is_not_plaintext_related(self, fresh_rng):
        """A lone partial is a full-size group element, not 1 + m·n."""
        ct = _PK.encrypt(5, rng=fresh_rng)
        partial = _KEYPAIR.shares[0].partial_decrypt(ct)
        assert partial.value % _PK.n != 1

    def test_foreign_ciphertext_rejected(self, fresh_rng):
        from repro.crypto.paillier import generate_keypair

        other = generate_keypair(256, rng=fresh_rng)
        ct = other.public_key.encrypt(5, rng=fresh_rng)
        with pytest.raises(CryptoError):
            _KEYPAIR.shares[0].partial_decrypt(ct)

    def test_mismatched_partials_detected(self, fresh_rng):
        """Partials of two DIFFERENT ciphertexts do not silently combine."""
        ct_a = _PK.encrypt(5, rng=fresh_rng)
        ct_b = _PK.encrypt(9, rng=fresh_rng)
        partials = [
            _KEYPAIR.shares[0].partial_decrypt(ct_a),
            _KEYPAIR.shares[1].partial_decrypt(ct_b),
        ]
        with pytest.raises(DecryptionError):
            combine_partials(_PK, partials)
