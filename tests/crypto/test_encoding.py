"""Unit and property tests for plaintext encodings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.encoding import (
    FixedPointEncoder,
    SignedEncoder,
    decode_signed,
    encode_signed,
)
from repro.errors import EncodingRangeError

MODULUS = 2**89 - 1  # an arbitrary odd modulus


class TestSignedEncoding:
    @pytest.mark.parametrize("value", [0, 1, -1, 1000, -1000, MODULUS // 2, -(MODULUS // 2)])
    def test_roundtrip(self, value):
        assert decode_signed(encode_signed(value, MODULUS), MODULUS) == value

    def test_negative_maps_to_upper_half(self):
        assert encode_signed(-1, MODULUS) == MODULUS - 1

    def test_out_of_range_raises(self):
        with pytest.raises(EncodingRangeError):
            encode_signed(MODULUS // 2 + 1, MODULUS)
        with pytest.raises(EncodingRangeError):
            encode_signed(-(MODULUS // 2) - 1, MODULUS)

    def test_decode_rejects_bad_residue(self):
        with pytest.raises(EncodingRangeError):
            decode_signed(-1, MODULUS)
        with pytest.raises(EncodingRangeError):
            decode_signed(MODULUS, MODULUS)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=-(MODULUS // 2), max_value=MODULUS // 2))
    def test_roundtrip_property(self, value):
        assert decode_signed(encode_signed(value, MODULUS), MODULUS) == value


class TestSignedEncoder:
    def test_range_enforcement(self):
        encoder = SignedEncoder(MODULUS, value_bits=16)
        assert encoder.max_value == 2**16 - 1
        assert encoder.decode(encoder.encode(-30000)) == -30000
        with pytest.raises(EncodingRangeError):
            encoder.encode(2**16)

    def test_value_bits_must_fit_modulus(self):
        with pytest.raises(EncodingRangeError):
            SignedEncoder(257, value_bits=60)

    def test_rejects_non_positive_bits(self):
        with pytest.raises(EncodingRangeError):
            SignedEncoder(MODULUS, value_bits=0)


class TestFixedPointEncoder:
    def test_roundtrip_at_scale(self):
        encoder = FixedPointEncoder(decimals=6)
        assert encoder.decode(encoder.encode(1.5)) == pytest.approx(1.5)
        assert encoder.encode(1.5) == 1_500_000

    def test_quantisation_floor(self):
        encoder = FixedPointEncoder(decimals=3)
        assert encoder.encode(0.00001) == 0

    def test_negative_values(self):
        encoder = FixedPointEncoder(decimals=2)
        assert encoder.encode(-1.25) == -125

    def test_rounding_not_truncation(self):
        encoder = FixedPointEncoder(decimals=0)
        assert encoder.encode(2.6) == 3

    def test_db_alias(self):
        encoder = FixedPointEncoder(decimals=1)
        assert encoder.encode_db(-84.0) == -840

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_decode_within_half_ulp(self, value):
        encoder = FixedPointEncoder(decimals=6)
        assert abs(encoder.decode(encoder.encode(value)) - value) <= 0.5 / encoder.scale
