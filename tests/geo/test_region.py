"""Unit tests for SU privacy regions."""

import pytest

from repro.errors import GridError
from repro.geo.grid import BlockGrid
from repro.geo.region import PrivacyRegion


@pytest.fixture()
def grid():
    return BlockGrid(rows=4, cols=6, block_size_m=10.0)


class TestConstructors:
    def test_full_region(self, grid):
        region = PrivacyRegion.full(grid)
        assert region.num_blocks == 24
        assert region.privacy_level == 1.0
        assert all(region.contains(i) for i in range(24))

    def test_rows_slice(self, grid):
        """The paper's 'somewhere in the north' example shape."""
        region = PrivacyRegion.rows_slice(grid, 0, 1)
        assert region.num_blocks == 12
        assert region.privacy_level == pytest.approx(0.5)
        assert region.contains(0) and region.contains(11)
        assert not region.contains(12)

    def test_rows_slice_validation(self, grid):
        with pytest.raises(GridError):
            PrivacyRegion.rows_slice(grid, 2, 1)
        with pytest.raises(GridError):
            PrivacyRegion.rows_slice(grid, 0, 4)

    def test_fraction(self, grid):
        region = PrivacyRegion.fraction(grid, 0.25)
        assert region.num_blocks == 6
        assert region.sorted_indices() == list(range(6))

    def test_fraction_validation(self, grid):
        with pytest.raises(GridError):
            PrivacyRegion.fraction(grid, 0.0)
        with pytest.raises(GridError):
            PrivacyRegion.fraction(grid, 1.5)

    def test_fraction_at_least_one_block(self, grid):
        assert PrivacyRegion.fraction(grid, 1e-9).num_blocks == 1

    def test_around(self, grid):
        region = PrivacyRegion.around(grid, 9, 10.0)
        assert set(region.block_indices) == {3, 8, 9, 10, 15}

    def test_custom_validation(self, grid):
        with pytest.raises(GridError):
            PrivacyRegion(grid, frozenset())
        with pytest.raises(GridError):
            PrivacyRegion(grid, frozenset({99}))


class TestQueries:
    def test_dunder_protocols(self, grid):
        region = PrivacyRegion.fraction(grid, 0.5)
        assert len(region) == 12
        assert 0 in region
        assert 23 not in region

    def test_sorted_indices_deterministic(self, grid):
        region = PrivacyRegion(grid, frozenset({5, 1, 9}))
        assert region.sorted_indices() == [1, 5, 9]
