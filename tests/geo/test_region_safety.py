"""Tests for the partial-region protection-gap analysis."""

import pytest

from repro.geo.region import PrivacyRegion
from repro.geo.region_safety import region_undertest_report, undertested_cells
from repro.watch.entities import PUReceiver, SUTransmitter
from repro.watch.sdc import PlaintextSDC
from repro.watch.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def safety_scenario():
    return build_scenario(ScenarioConfig(seed=4, num_sus=1))


@pytest.fixture(scope="module")
def su(safety_scenario):
    return safety_scenario.sus[0]


class TestFullPrivacyIsSafe:
    def test_full_region_hides_nothing(self, safety_scenario, su):
        region = PrivacyRegion.full(safety_scenario.environment.grid)
        report = region_undertest_report(safety_scenario.environment, su, region)
        assert report.is_safe
        assert report.omitted_interference_fraction == 0.0
        assert not report.hides_violation


class TestPartialRegions:
    def test_tight_region_drops_interference(self, safety_scenario, su):
        grid = safety_scenario.environment.grid
        region = PrivacyRegion(grid, frozenset({su.block_index}),
                               label="just-me")
        report = region_undertest_report(safety_scenario.environment, su, region)
        assert not report.is_safe
        # The own block dominates the mass (h(d) is steep), but many
        # cells go untested.
        assert report.omitted_interference_fraction > 0.0
        assert len(report.omitted_cells) > safety_scenario.environment.num_blocks
        cells = undertested_cells(safety_scenario.environment, su, region)
        assert set(cells) == set(report.omitted_cells)
        assert all(b != su.block_index for _, b in cells)

    def test_severity_shrinks_with_region(self, safety_scenario, su):
        env = safety_scenario.environment
        fractions = []
        for radius in (0.0, 20.0, 1000.0):
            region = PrivacyRegion.around(env.grid, su.block_index, radius)
            report = region_undertest_report(env, su, region)
            fractions.append(report.omitted_interference_fraction)
        assert fractions[0] > fractions[1] > fractions[2] == 0.0

    def test_hidden_violation_detected(self, safety_scenario, su):
        """A loud SU with a PU just outside its tiny region: the report
        must flag that an actual denial went untested."""
        env = safety_scenario.environment
        grid = env.grid
        loud = SUTransmitter("loud", block_index=su.block_index,
                             tx_power_dbm=14.0)
        neighbour = (su.block_index + 1) % grid.num_blocks
        sdc = PlaintextSDC(env)
        sdc.pu_update(PUReceiver(
            "near-pu", block_index=neighbour, channel_slot=0,
            signal_strength_mw=1e-9,
        ))
        region = PrivacyRegion(grid, frozenset({su.block_index}))
        report = region_undertest_report(env, loud, region, budget=sdc.budget)
        assert report.hides_violation
        # Cross-check: full-region decision denies, regioned grants.
        assert not sdc.process_request(loud).granted
        assert sdc.process_request(loud, region=region).granted

    def test_e_only_budget_is_lower_bound(self, safety_scenario, su):
        """Without the PU budget, severity can only be under-stated."""
        env = safety_scenario.environment
        region = PrivacyRegion(env.grid, frozenset({su.block_index}))
        sdc = PlaintextSDC(env)
        for pu in safety_scenario.pus:
            sdc.pu_update(pu)
        with_e = region_undertest_report(env, su, region)
        with_n = region_undertest_report(env, su, region, budget=sdc.budget)
        assert with_n.worst_omitted_budget_ratio >= with_e.worst_omitted_budget_ratio
