"""Unit tests for the service-area block grid."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GridError
from repro.geo.grid import BlockGrid


@pytest.fixture()
def grid():
    return BlockGrid(rows=4, cols=6, block_size_m=10.0)


class TestBasics:
    def test_dimensions(self, grid):
        assert grid.num_blocks == 24
        assert grid.width_m == 60.0
        assert grid.height_m == 40.0

    def test_validation(self):
        with pytest.raises(GridError):
            BlockGrid(rows=0, cols=5)
        with pytest.raises(GridError):
            BlockGrid(rows=5, cols=5, block_size_m=0.0)

    def test_block_lookup_row_major(self, grid):
        block = grid.block(7)  # row 1, col 1
        assert (block.row, block.col) == (1, 1)
        assert block.center_x_m == pytest.approx(15.0)
        assert block.center_y_m == pytest.approx(15.0)

    def test_index_of_inverse(self, grid):
        for index in range(grid.num_blocks):
            block = grid.block(index)
            assert grid.index_of(block.row, block.col) == index

    def test_index_bounds(self, grid):
        with pytest.raises(GridError):
            grid.block(24)
        with pytest.raises(GridError):
            grid.block(-1)
        with pytest.raises(GridError):
            grid.index_of(4, 0)

    def test_blocks_iterator(self, grid):
        blocks = list(grid.blocks())
        assert len(blocks) == 24
        assert [b.index for b in blocks] == list(range(24))

    def test_origin_offset(self):
        grid = BlockGrid(rows=2, cols=2, block_size_m=10.0, origin_x_m=100.0, origin_y_m=50.0)
        assert grid.block(0).center_x_m == pytest.approx(105.0)
        assert grid.block(0).center_y_m == pytest.approx(55.0)


class TestBlockAt:
    def test_point_lookup(self, grid):
        assert grid.block_at(0.1, 0.1).index == 0
        assert grid.block_at(59.9, 39.9).index == 23
        assert grid.block_at(25.0, 15.0).index == grid.index_of(1, 2)

    def test_outside_raises(self, grid):
        with pytest.raises(GridError):
            grid.block_at(-0.1, 5.0)
        with pytest.raises(GridError):
            grid.block_at(5.0, 40.1)


class TestDistances:
    def test_adjacent_blocks(self, grid):
        assert grid.distance_m(0, 1) == pytest.approx(10.0)
        assert grid.distance_m(0, 6) == pytest.approx(10.0)

    def test_diagonal(self, grid):
        assert grid.distance_m(0, 7) == pytest.approx(10.0 * math.sqrt(2))

    def test_symmetry(self, grid):
        for a, b in ((0, 23), (5, 18), (11, 12)):
            assert grid.distance_m(a, b) == grid.distance_m(b, a)

    def test_self_distance_zero(self, grid):
        assert grid.distance_m(9, 9) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(a=st.integers(0, 23), b=st.integers(0, 23), c=st.integers(0, 23))
    def test_triangle_inequality(self, a, b, c):
        grid = BlockGrid(rows=4, cols=6, block_size_m=10.0)
        assert grid.distance_m(a, c) <= grid.distance_m(a, b) + grid.distance_m(b, c) + 1e-9


class TestBlocksWithin:
    def test_zero_radius_is_self(self, grid):
        assert grid.blocks_within(9, 0.0) == [9]

    def test_small_radius_cross(self, grid):
        result = set(grid.blocks_within(9, 10.0))
        assert result == {3, 8, 9, 10, 15}

    def test_large_radius_covers_all(self, grid):
        assert set(grid.blocks_within(0, 1000.0)) == set(range(24))

    def test_respects_boundaries(self, grid):
        result = set(grid.blocks_within(0, 10.0))
        assert result == {0, 1, 6}

    def test_negative_radius_raises(self, grid):
        with pytest.raises(GridError):
            grid.blocks_within(0, -5.0)

    def test_all_returned_within_radius(self, grid):
        radius = 25.0
        for index in grid.blocks_within(9, radius):
            assert grid.distance_m(9, index) <= radius
