"""Unit tests for the path-loss models."""

import math

import pytest

from repro.errors import RadioError
from repro.radio.pathloss import (
    ExtendedHataModel,
    FreeSpaceModel,
    HataModel,
    LogDistanceModel,
    TwoRayGroundModel,
)

UHF = 600e6  # a mid-band UHF TV frequency
WIFI = 2.437e9


class TestFreeSpace:
    def test_textbook_value(self):
        # FSPL at 2.4 GHz, 100 m: 20·log10(4π·100/0.1249) ≈ 80.1 dB.
        model = FreeSpaceModel(2.4e9)
        assert model.loss_db(100.0) == pytest.approx(80.1, abs=0.2)

    def test_inverse_square_law(self):
        model = FreeSpaceModel(UHF)
        assert model.loss_db(2000.0) - model.loss_db(1000.0) == pytest.approx(
            20.0 * math.log10(2.0)
        )

    def test_gain_in_unit_interval_far_field(self):
        model = FreeSpaceModel(UHF)
        for d in (10.0, 1e3, 1e6):
            assert 0.0 < model.gain_linear(d) < 1.0

    def test_clamps_below_min_distance(self):
        model = FreeSpaceModel(UHF)
        assert model.loss_db(0.0) == model.loss_db(model.min_distance_m)

    def test_negative_distance_raises(self):
        with pytest.raises(RadioError):
            FreeSpaceModel(UHF).loss_db(-1.0)

    def test_rejects_bad_frequency(self):
        with pytest.raises(RadioError):
            FreeSpaceModel(0.0)


class TestSolveDistanceForGain:
    def test_inverts_the_model(self):
        model = FreeSpaceModel(UHF)
        for d in (100.0, 5e3, 2e5):
            gain = model.gain_linear(d)
            recovered = model.solve_distance_for_gain(gain)
            assert recovered == pytest.approx(d, rel=1e-6)

    def test_trivially_reached_at_lower_bound(self):
        model = FreeSpaceModel(UHF)
        assert model.solve_distance_for_gain(1.0, d_low=5.0) == 5.0

    def test_unreachable_gain_raises(self):
        model = FreeSpaceModel(UHF)
        with pytest.raises(RadioError):
            model.solve_distance_for_gain(1e-50, d_high=1e4)

    def test_rejects_non_positive_gain(self):
        with pytest.raises(RadioError):
            FreeSpaceModel(UHF).solve_distance_for_gain(0.0)


class TestLogDistance:
    def test_matches_free_space_at_reference(self):
        model = LogDistanceModel(UHF, exponent=3.5, d0_m=10.0)
        fs = FreeSpaceModel(UHF)
        assert model.loss_db(10.0) == pytest.approx(fs.loss_db(10.0))

    def test_exponent_slope(self):
        model = LogDistanceModel(UHF, exponent=3.0, d0_m=1.0)
        assert model.loss_db(1000.0) - model.loss_db(100.0) == pytest.approx(30.0)

    def test_higher_exponent_more_loss(self):
        gentle = LogDistanceModel(UHF, exponent=2.0)
        harsh = LogDistanceModel(UHF, exponent=4.0)
        assert harsh.loss_db(500.0) > gentle.loss_db(500.0)

    def test_rejects_unphysical_exponent(self):
        with pytest.raises(RadioError):
            LogDistanceModel(UHF, exponent=0.5)

    def test_rejects_bad_reference(self):
        with pytest.raises(RadioError):
            LogDistanceModel(UHF, d0_m=0.0)


class TestTwoRay:
    def test_free_space_before_crossover(self):
        model = TwoRayGroundModel(UHF, tx_height_m=10.0, rx_height_m=2.0)
        fs = FreeSpaceModel(UHF)
        d = model.crossover_m / 2.0
        assert model.loss_db(d) == pytest.approx(fs.loss_db(d))

    def test_fourth_power_after_crossover(self):
        model = TwoRayGroundModel(UHF, tx_height_m=10.0, rx_height_m=2.0)
        d = model.crossover_m * 2.0
        assert model.loss_db(2 * d) - model.loss_db(d) == pytest.approx(
            40.0 * math.log10(2.0)
        )

    def test_rejects_bad_heights(self):
        with pytest.raises(RadioError):
            TwoRayGroundModel(UHF, tx_height_m=0.0, rx_height_m=2.0)


class TestHata:
    def test_monotone_in_distance(self):
        model = HataModel(UHF, base_height_m=100.0)
        losses = [model.loss_db(d) for d in (500, 1000, 5000, 20000)]
        assert losses == sorted(losses)

    def test_taller_base_less_loss(self):
        short = HataModel(UHF, base_height_m=30.0)
        tall = HataModel(UHF, base_height_m=200.0)
        assert tall.loss_db(5000.0) < short.loss_db(5000.0)

    def test_frequency_range_enforced(self):
        with pytest.raises(RadioError):
            HataModel(50e6)
        with pytest.raises(RadioError):
            HataModel(3e9)

    def test_height_ranges_enforced(self):
        with pytest.raises(RadioError):
            HataModel(UHF, base_height_m=500.0)
        with pytest.raises(RadioError):
            HataModel(UHF, mobile_height_m=0.1)


class TestExtendedHata:
    def test_environment_ordering(self):
        """Urban ≥ suburban ≥ rural loss at the same distance."""
        kwargs = dict(base_height_m=100.0, mobile_height_m=2.0)
        urban = ExtendedHataModel(UHF, environment="urban", **kwargs)
        suburban = ExtendedHataModel(UHF, environment="suburban", **kwargs)
        rural = ExtendedHataModel(UHF, environment="rural", **kwargs)
        d = 8000.0
        assert urban.loss_db(d) > suburban.loss_db(d) > rural.loss_db(d)

    def test_urban_reduces_to_hata(self):
        hata = HataModel(UHF, base_height_m=50.0)
        extended = ExtendedHataModel(UHF, base_height_m=50.0, environment="urban")
        assert extended.loss_db(3000.0) == pytest.approx(hata.loss_db(3000.0))

    def test_unknown_environment_rejected(self):
        with pytest.raises(RadioError):
            ExtendedHataModel(UHF, environment="orbital")

    def test_loss_exceeds_free_space_at_range(self):
        model = ExtendedHataModel(UHF, base_height_m=100.0)
        fs = FreeSpaceModel(UHF)
        assert model.loss_db(10_000.0) > fs.loss_db(10_000.0)


class TestCost231Hata:
    def test_frequency_range(self):
        from repro.radio.pathloss import Cost231HataModel

        with pytest.raises(RadioError):
            Cost231HataModel(600e6)  # UHF is classic Hata's territory
        with pytest.raises(RadioError):
            Cost231HataModel(3e9)
        Cost231HataModel(1.8e9)  # PCS band OK
        Cost231HataModel(2.437e9)  # the testbed's WiFi channel 6

    def test_monotone_in_distance(self):
        from repro.radio.pathloss import Cost231HataModel

        model = Cost231HataModel(1.8e9, base_height_m=40.0)
        losses = [model.loss_db(d) for d in (200, 1000, 5000)]
        assert losses == sorted(losses)

    def test_metropolitan_adds_3db(self):
        from repro.radio.pathloss import Cost231HataModel

        suburban = Cost231HataModel(1.8e9)
        metro = Cost231HataModel(1.8e9, metropolitan=True)
        assert metro.loss_db(2000.0) == pytest.approx(
            suburban.loss_db(2000.0) + 3.0
        )

    def test_more_loss_than_uhf_hata(self):
        """2 GHz propagates worse than UHF at the same geometry."""
        from repro.radio.pathloss import Cost231HataModel

        uhf = HataModel(900e6, base_height_m=40.0)
        pcs = Cost231HataModel(1.8e9, base_height_m=40.0)
        assert pcs.loss_db(3000.0) > uhf.loss_db(3000.0)

    def test_height_validation(self):
        from repro.radio.pathloss import Cost231HataModel

        with pytest.raises(RadioError):
            Cost231HataModel(1.8e9, base_height_m=0.5)
        with pytest.raises(RadioError):
            Cost231HataModel(1.8e9, mobile_height_m=30.0)
