"""Unit tests for the simplified irregular-terrain model."""

import numpy as np
import pytest

from repro.errors import RadioError
from repro.radio.itm import IrregularTerrainModel
from repro.radio.pathloss import FreeSpaceModel
from repro.radio.terrain import SyntheticTerrain

UHF = 600e6


@pytest.fixture(scope="module")
def terrain():
    return SyntheticTerrain(size_m=10_000.0, relief_m=120.0, seed=7)


@pytest.fixture(scope="module")
def model(terrain):
    return IrregularTerrainModel(UHF, terrain, tx_height_m=100.0, rx_height_m=10.0)


class TestDistanceInterface:
    def test_loss_at_least_free_space(self, model):
        fs = FreeSpaceModel(UHF)
        for d in (100.0, 1e3, 9e3):
            assert model.loss_db(d) >= fs.loss_db(d)

    def test_monotone_in_distance(self, model):
        losses = [model.loss_db(d) for d in (100.0, 1e3, 5e3, 9e3)]
        assert losses == sorted(losses)

    def test_climate_loss_adds(self, terrain):
        base = IrregularTerrainModel(UHF, terrain)
        wet = IrregularTerrainModel(UHF, terrain, climate_loss_db=3.0)
        assert wet.loss_db(1000.0) == pytest.approx(base.loss_db(1000.0) + 3.0)

    def test_rejects_bad_heights(self, terrain):
        with pytest.raises(RadioError):
            IrregularTerrainModel(UHF, terrain, tx_height_m=0.0)


class TestPointToPoint:
    def test_loss_at_least_free_space(self, model):
        fs = FreeSpaceModel(UHF)
        tx, rx = (1000.0, 1000.0), (8000.0, 7000.0)
        d = np.hypot(tx[0] - rx[0], tx[1] - rx[1])
        assert model.loss_between_db(tx, rx) >= fs.loss_db(d)

    def test_gain_is_consistent(self, model):
        tx, rx = (500.0, 500.0), (5000.0, 5000.0)
        loss = model.loss_between_db(tx, rx)
        assert model.gain_between(tx, rx) == pytest.approx(10 ** (-loss / 10))

    def test_blocked_path_loses_more_than_flat(self):
        """A ridge across the path should add diffraction loss."""
        flat = SyntheticTerrain(size_m=5000.0, relief_m=0.5, seed=0)
        hilly = SyntheticTerrain(size_m=5000.0, relief_m=300.0, seed=0)
        low = IrregularTerrainModel(UHF, flat, tx_height_m=10.0, rx_height_m=2.0)
        high = IrregularTerrainModel(UHF, hilly, tx_height_m=10.0, rx_height_m=2.0)
        tx, rx = (100.0, 2500.0), (4900.0, 2500.0)
        assert high.loss_between_db(tx, rx) > low.loss_between_db(tx, rx)


class TestDiffractionComponent:
    def test_clear_path_no_diffraction(self, model):
        profile = np.zeros(16)  # flat ground far below both antennas
        assert model._diffraction_loss_db(profile, 1000.0) == 0.0

    def test_obstruction_produces_loss(self, model):
        profile = np.zeros(17)
        profile[8] = 500.0  # a spike well above the LoS ray
        assert model._diffraction_loss_db(profile, 1000.0) > 6.0
