"""Unit tests for power/ratio conversions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.units import (
    db_to_linear,
    dbm_to_mw,
    dbm_to_watts,
    linear_to_db,
    mw_to_dbm,
    thermal_noise_dbm,
    watts_to_dbm,
)


class TestDbmConversions:
    def test_reference_points(self):
        assert dbm_to_mw(0.0) == pytest.approx(1.0)
        assert dbm_to_mw(30.0) == pytest.approx(1000.0)
        assert dbm_to_mw(-30.0) == pytest.approx(0.001)

    def test_inverse(self):
        for dbm in (-120.0, -84.0, 0.0, 36.0):
            assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm)

    def test_mw_to_dbm_rejects_non_positive(self):
        with pytest.raises(ValueError):
            mw_to_dbm(0.0)
        with pytest.raises(ValueError):
            mw_to_dbm(-1.0)

    def test_watts(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)
        assert watts_to_dbm(4.0) == pytest.approx(36.02, abs=0.01)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=-150, max_value=90))
    def test_roundtrip_property(self, dbm):
        assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm, abs=1e-9)


class TestDbConversions:
    def test_reference_points(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(3.0) == pytest.approx(1.995, abs=0.01)

    def test_inverse(self):
        for db in (-40.0, 0.0, 15.0):
            assert linear_to_db(db_to_linear(db)) == pytest.approx(db)

    def test_rejects_non_positive_ratio(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)


class TestThermalNoise:
    def test_one_hz(self):
        assert thermal_noise_dbm(1.0) == pytest.approx(-174.0)

    def test_tv_channel_bandwidth(self):
        # 6 MHz channel: −174 + 10·log10(6e6) ≈ −106.2 dBm.
        assert thermal_noise_dbm(6e6) == pytest.approx(-106.2, abs=0.1)

    def test_noise_figure_adds(self):
        assert thermal_noise_dbm(1e6, noise_figure_db=7.0) == pytest.approx(
            thermal_noise_dbm(1e6) + 7.0
        )

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            thermal_noise_dbm(0.0)
