"""Unit tests for the synthetic terrain generator."""

import numpy as np
import pytest

from repro.errors import RadioError
from repro.radio.terrain import SyntheticTerrain


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = SyntheticTerrain(seed=3)
        b = SyntheticTerrain(seed=3)
        assert np.array_equal(a.elevations, b.elevations)

    def test_different_seeds_differ(self):
        a = SyntheticTerrain(seed=1)
        b = SyntheticTerrain(seed=2)
        assert not np.array_equal(a.elevations, b.elevations)

    def test_resolution_rounds_to_power_of_two_plus_one(self):
        terrain = SyntheticTerrain(resolution=100)
        assert terrain.grid_points == 129

    def test_relief_respected(self):
        terrain = SyntheticTerrain(base_elevation_m=100.0, relief_m=50.0, seed=0)
        assert np.max(terrain.elevations) <= 125.0 + 1e-9
        assert np.min(terrain.elevations) >= 75.0 - 1e-9

    def test_rejects_bad_parameters(self):
        with pytest.raises(RadioError):
            SyntheticTerrain(size_m=0)
        with pytest.raises(RadioError):
            SyntheticTerrain(roughness=1.5)


class TestSampling:
    def test_elevation_matches_grid_nodes(self):
        terrain = SyntheticTerrain(size_m=1000.0, resolution=33, seed=5)
        step = 1000.0 / (terrain.grid_points - 1)
        assert terrain.elevation_at(0.0, 0.0) == pytest.approx(
            float(terrain.elevations[0, 0])
        )
        assert terrain.elevation_at(step * 3, step * 7) == pytest.approx(
            float(terrain.elevations[7, 3])
        )

    def test_bilinear_between_nodes(self):
        terrain = SyntheticTerrain(size_m=100.0, resolution=17, seed=5)
        mid = terrain.elevation_at(50.0, 50.0)
        assert np.min(terrain.elevations) <= mid <= np.max(terrain.elevations)

    def test_outside_tile_raises(self):
        terrain = SyntheticTerrain(size_m=100.0)
        with pytest.raises(RadioError):
            terrain.elevation_at(-1.0, 0.0)
        with pytest.raises(RadioError):
            terrain.elevation_at(0.0, 101.0)


class TestProfiles:
    def test_profile_endpoints(self):
        terrain = SyntheticTerrain(size_m=500.0, seed=2)
        profile = terrain.profile((0.0, 0.0), (400.0, 300.0), samples=32)
        assert len(profile) == 32
        assert profile[0] == pytest.approx(terrain.elevation_at(0.0, 0.0))
        assert profile[-1] == pytest.approx(terrain.elevation_at(400.0, 300.0))

    def test_profile_needs_two_samples(self):
        terrain = SyntheticTerrain()
        with pytest.raises(RadioError):
            terrain.profile((0, 0), (1, 1), samples=1)

    def test_statistics(self):
        terrain = SyntheticTerrain(base_elevation_m=200.0, relief_m=60.0, seed=1)
        assert 170.0 < terrain.mean_elevation() < 230.0
        assert 0.0 < terrain.terrain_irregularity() <= 60.0
