"""Unit tests for antenna/EIRP arithmetic."""

import pytest

from repro.errors import RadioError
from repro.radio.antenna import Antenna, eirp_dbm, eirp_mw


class TestEirpFormula:
    def test_paper_formula(self):
        """§III-D: EIRP = PT + GA − LS."""
        assert eirp_dbm(20.0, 6.0, 2.0) == pytest.approx(24.0)

    def test_no_gain_no_loss(self):
        assert eirp_dbm(17.0, 0.0) == pytest.approx(17.0)

    def test_linear_form(self):
        assert eirp_mw(30.0, 0.0) == pytest.approx(1000.0)
        assert eirp_mw(30.0, 3.0) == pytest.approx(1995.26, abs=0.1)

    def test_negative_line_loss_rejected(self):
        with pytest.raises(RadioError):
            eirp_dbm(20.0, 0.0, -1.0)


class TestAntenna:
    def test_eirp_method(self):
        antenna = Antenna(gain_dbi=5.0, height_m=3.0, line_loss_db=1.0)
        assert antenna.eirp_dbm(20.0) == pytest.approx(24.0)

    def test_defaults(self):
        antenna = Antenna()
        assert antenna.eirp_dbm(10.0) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(RadioError):
            Antenna(height_m=0.0)
        with pytest.raises(RadioError):
            Antenna(line_loss_db=-2.0)

    def test_frozen(self):
        antenna = Antenna()
        with pytest.raises(AttributeError):
            antenna.gain_dbi = 10.0
