"""Unit tests for TV/WiFi channel plans."""

import pytest

from repro.errors import RadioError
from repro.radio.channel import (
    WIFI_CHANNEL_6,
    ChannelPlan,
    TvChannel,
    us_wifi_channel,
)


class TestWifiChannels:
    def test_paper_channel_6(self):
        """§VI-B: channel 6, centre 2.437 GHz, 22 MHz."""
        assert WIFI_CHANNEL_6.number == 6
        assert WIFI_CHANNEL_6.center_frequency_hz == pytest.approx(2.437e9)
        assert WIFI_CHANNEL_6.bandwidth_hz == pytest.approx(22e6)

    def test_us_plan_spacing(self):
        assert us_wifi_channel(1).center_frequency_hz == pytest.approx(2.412e9)
        assert us_wifi_channel(11).center_frequency_hz == pytest.approx(2.462e9)
        assert us_wifi_channel(6) == WIFI_CHANNEL_6

    def test_out_of_plan_rejected(self):
        with pytest.raises(RadioError):
            us_wifi_channel(12)


class TestTvChannel:
    def test_edges(self):
        ch = TvChannel(number=14, center_frequency_hz=473e6)
        assert ch.low_edge_hz == pytest.approx(470e6)
        assert ch.high_edge_hz == pytest.approx(476e6)


class TestChannelPlan:
    def test_physical_channel_count(self):
        plan = ChannelPlan(num_slots=10)
        assert len(plan.physical_channels) == 38  # US UHF 14-51

    def test_first_physical_frequency(self):
        plan = ChannelPlan(num_slots=10)
        ch14 = plan.physical_channels[0]
        assert ch14.number == 14
        assert ch14.center_frequency_hz == pytest.approx(473e6)

    def test_band_is_uhf(self):
        plan = ChannelPlan(num_slots=100)
        for slot in range(plan.num_slots):
            f = plan.frequency_for_slot(slot)
            assert 470e6 < f < 700e6

    def test_virtual_slots_wrap_round_robin(self):
        plan = ChannelPlan(num_slots=100)
        assert plan.physical_for_slot(0).number == plan.physical_for_slot(38).number
        assert plan.same_physical(0, 38)
        assert not plan.same_physical(0, 1)

    def test_slot_bounds(self):
        plan = ChannelPlan(num_slots=5)
        with pytest.raises(RadioError):
            plan.physical_for_slot(5)
        with pytest.raises(RadioError):
            plan.physical_for_slot(-1)

    def test_needs_a_slot(self):
        with pytest.raises(RadioError):
            ChannelPlan(num_slots=0)
