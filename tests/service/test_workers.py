"""Worker-pool executor: correctness, chunking, and protocol equivalence."""

import pytest

from repro.crypto.parallel import SerialExecutor, default_executor
from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.protocol import PisaCoordinator
from repro.service.workers import ProcessWorkerPool, default_worker_count

TEST_KEY_BITS = 256


class TestSerialExecutor:
    def test_matches_builtin_pow(self):
        executor = SerialExecutor()
        jobs = [(3, 5, 7), (2, 10, 1000), (123456789, 3, 97)]
        assert executor.pow_many(jobs) == [pow(*job) for job in jobs]
        assert executor.jobs_executed == 3

    def test_default_executor_is_serial(self):
        assert isinstance(default_executor(None), SerialExecutor)

    def test_default_executor_passthrough(self):
        executor = SerialExecutor()
        assert default_executor(executor) is executor


class TestProcessWorkerPool:
    def test_results_match_serial_in_order(self):
        jobs = [(base, 65537, 10**9 + 7) for base in range(2, 40)]
        with ProcessWorkerPool(max_workers=2, min_parallel_jobs=1) as pool:
            assert pool.pow_many(jobs) == SerialExecutor().pow_many(jobs)

    def test_small_batches_run_inline(self):
        with ProcessWorkerPool(max_workers=2, min_parallel_jobs=8) as pool:
            assert pool.pow_many([(3, 4, 5)]) == [pow(3, 4, 5)]
            assert pool._pool is None  # never forked

    def test_counts_jobs_and_batches(self):
        with ProcessWorkerPool(max_workers=1) as pool:
            pool.pow_many([(2, 2, 9), (3, 3, 11)])
            pool.pow_many([(5, 5, 13)])
        assert pool.jobs_executed == 3
        assert pool.batches_executed == 2

    def test_empty_batch(self):
        with ProcessWorkerPool(max_workers=2) as pool:
            assert pool.pow_many([]) == []

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ProcessWorkerPool(max_workers=0)

    def test_default_worker_count_floor(self):
        assert default_worker_count() >= 2

    def test_warm_up_starts_pool(self):
        with ProcessWorkerPool(max_workers=2, min_parallel_jobs=1) as pool:
            pool.warm_up()
            assert pool._pool is not None


class TestSignExtractionEquivalence:
    """The satellite claim: swapping executors never changes protocol bytes.

    All randomness is drawn in the parent process in protocol order
    before any batch dispatches, so the serial executor and the process
    pool must produce byte-identical sign-extraction transcripts.
    """

    @staticmethod
    def _transcript(scenario, executor):
        coordinator = PisaCoordinator(
            scenario.environment,
            key_bits=TEST_KEY_BITS,
            rng=DeterministicRandomSource("executor-equivalence"),
            executor=executor,
        )
        for pu in scenario.pus:
            coordinator.enroll_pu(pu)
        client = coordinator.enroll_su(scenario.sus[0])
        request = client.prepare_request()
        extraction = coordinator.sdc.start_request(request)
        conversion = coordinator.stp.handle_sign_extraction(extraction)
        return request.to_bytes(), extraction.to_bytes(), conversion.to_bytes()

    def test_pool_and_serial_transcripts_identical(self, scenario):
        serial = self._transcript(scenario, SerialExecutor())
        with ProcessWorkerPool(max_workers=2, min_parallel_jobs=1) as pool:
            pooled = self._transcript(scenario, pool)
        assert serial[0] == pooled[0]  # SU request
        assert serial[1] == pooled[1]  # SDC blinding (eq. 14)
        assert serial[2] == pooled[2]  # STP sign extraction (eq. 15)
        assert pool.jobs_executed > 0  # the pool really ran the batches
