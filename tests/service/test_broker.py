"""Broker scheduling semantics (stub allocator) and one real integration."""

import asyncio

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ProtocolError, ShardDownError
from repro.pisa.protocol import PisaCoordinator
from repro.service.batching import AllocationResult, BatchAllocator
from repro.service.broker import (
    REASON_DEADLINE_EXPIRED,
    REASON_INTERNAL_ERROR,
    REASON_QUEUE_FULL,
    REASON_SHUTTING_DOWN,
    ServiceConfig,
    SpectrumAccessBroker,
)

TEST_KEY_BITS = 256


class _Grant:
    granted = True


class StubAllocator:
    """Grants everything instantly; records the epochs it saw."""

    def __init__(self, fail: bool = False) -> None:
        self.epochs = []
        self.fail = fail

    def allocate(self, epoch, spans=None):
        if self.fail:
            raise RuntimeError("allocator exploded")
        self.epochs.append(epoch)
        return [
            AllocationResult(
                su_id=su_id,
                granted=True,
                outcome=_Grant(),
                response=None,
                request_bytes=0,
                response_bytes=0,
                batch_size=len(epoch.items),
            )
            for su_id, _ in epoch.items
        ]


def _broker(allocator=None, pu_handler=None, **config_kwargs) -> SpectrumAccessBroker:
    return SpectrumAccessBroker(
        allocator=allocator if allocator is not None else StubAllocator(),
        pu_update_handler=pu_handler,
        config=ServiceConfig(**config_kwargs),
    )


class TestRequestFlow:
    def test_single_request_granted(self):
        async def scenario():
            async with _broker(batch_window_s=0.01) as broker:
                return await broker.submit_request("su-1", object())

        decision = asyncio.run(scenario())
        assert decision.status == "granted"
        assert decision.ran
        assert decision.reason is None
        assert decision.batch_size == 1
        assert decision.latency_s >= 0.0

    def test_concurrent_requests_share_an_epoch(self):
        allocator = StubAllocator()

        async def scenario():
            async with _broker(allocator, batch_window_s=0.1, max_batch=8) as broker:
                return await asyncio.gather(
                    broker.submit_request("su-1", object()),
                    broker.submit_request("su-2", object()),
                )

        decisions = asyncio.run(scenario())
        assert [d.batch_size for d in decisions] == [2, 2]
        assert len(allocator.epochs) == 1

    def test_max_batch_dispatches_early(self):
        allocator = StubAllocator()

        async def scenario():
            # Window far beyond the test runtime: only the size cap can
            # dispatch these.
            async with _broker(allocator, batch_window_s=60.0, max_batch=2) as broker:
                return await asyncio.gather(
                    broker.submit_request("su-1", object()),
                    broker.submit_request("su-2", object()),
                )

        decisions = asyncio.run(scenario())
        assert all(d.status == "granted" for d in decisions)
        assert len(allocator.epochs) == 1

    def test_metrics_counters(self):
        async def scenario():
            broker = _broker(batch_window_s=0.01)
            async with broker:
                await broker.submit_request("su-1", object())
            return broker.metrics.snapshot()

        snap = asyncio.run(scenario())
        assert snap["counters"]["requests_submitted"] == 1
        assert snap["counters"]["requests_granted"] == 1
        assert snap["histograms"]["request_latency_s"]["count"] == 1
        assert snap["histograms"]["batch_size"]["count"] == 1


class TestRejections:
    def test_deadline_expired(self):
        async def scenario():
            async with _broker(batch_window_s=0.05) as broker:
                return await broker.submit_request(
                    "su-1", object(), deadline_s=0.0
                )

        decision = asyncio.run(scenario())
        assert decision.status == "rejected"
        assert decision.reason == REASON_DEADLINE_EXPIRED
        assert not decision.ran

    def test_zero_deadline_never_reaches_the_allocator(self):
        allocator = StubAllocator()

        async def scenario():
            async with _broker(allocator, batch_window_s=0.01) as broker:
                return await broker.submit_request(
                    "su-1", object(), deadline_s=0.0
                )

        decision = asyncio.run(scenario())
        assert decision.reason == REASON_DEADLINE_EXPIRED
        assert allocator.epochs == []  # admission control, not a failed run

    def test_expired_while_queued_is_rejected_not_dispatched(self):
        """A deadline that lapses between admission and queue pull must
        produce the distinct deadline error — the protocol never runs."""
        allocator = StubAllocator()

        async def scenario():
            # First clock read (admission) sees t=100; every later read
            # sees t=102 — past the t=101 deadline, as if the ticket sat
            # queued behind a slow epoch.
            times = [100.0, 102.0]

            def clock():
                return times.pop(0) if len(times) > 1 else times[0]

            broker = SpectrumAccessBroker(
                allocator=allocator,
                config=ServiceConfig(batch_window_s=0.01),
                clock=clock,
            )
            async with broker:
                return await broker.submit_request(
                    "su-1", object(), deadline_s=1.0
                )

        decision = asyncio.run(scenario())
        assert decision.status == "rejected"
        assert decision.reason == REASON_DEADLINE_EXPIRED
        assert allocator.epochs == []

    def test_drain_distinguishes_expired_from_live(self):
        """Shutdown drain: an already-expired ticket reports its own
        failure mode, a live one reports the shutdown."""

        async def scenario():
            now = [100.0]
            broker = SpectrumAccessBroker(
                allocator=StubAllocator(),
                config=ServiceConfig(batch_window_s=60.0),
                clock=lambda: now[0],
            )
            broker._running = True  # queue without running the loop
            expired = asyncio.ensure_future(
                broker.submit_request("su-old", object(), deadline_s=0.5)
            )
            live = asyncio.ensure_future(
                broker.submit_request("su-new", object(), deadline_s=60.0)
            )
            await asyncio.sleep(0)  # both tickets reach the queue
            now[0] = 101.0  # su-old's deadline has lapsed, su-new's has not
            broker._drain_rejecting()
            return await expired, await live

        old, new = asyncio.run(scenario())
        assert old.reason == REASON_DEADLINE_EXPIRED
        assert new.reason == REASON_SHUTTING_DOWN

    def test_queue_full(self):
        async def scenario():
            async with _broker(
                batch_window_s=60.0, max_batch=8, max_pending=1
            ) as broker:
                first = asyncio.ensure_future(
                    broker.submit_request("su-1", object())
                )
                await asyncio.sleep(0)  # let the first pass admission
                second = await broker.submit_request("su-2", object())
                return second, first  # stop() flushes and resolves first

        second, first_future = asyncio.run(scenario())
        assert second.status == "rejected"
        assert second.reason == REASON_QUEUE_FULL

    def test_rejected_after_stop(self):
        async def scenario():
            broker = _broker(batch_window_s=0.01)
            await broker.start()
            await broker.stop()
            return await broker.submit_request("su-1", object())

        decision = asyncio.run(scenario())
        assert decision.reason == REASON_SHUTTING_DOWN

    def test_allocator_failure_rejects_not_hangs(self):
        async def scenario():
            async with _broker(
                StubAllocator(fail=True), batch_window_s=0.01
            ) as broker:
                return await asyncio.wait_for(
                    broker.submit_request("su-1", object()), timeout=5.0
                )

        decision = asyncio.run(scenario())
        assert decision.status == "rejected"
        assert decision.reason == REASON_INTERNAL_ERROR


class FlakyClusterAllocator(StubAllocator):
    """Fails the first ``failures`` passes with a cluster error."""

    def __init__(self, failures: int = 1) -> None:
        super().__init__()
        self.failures = failures
        self.calls = 0

    def allocate(self, epoch, spans=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise ShardDownError("primary died mid-epoch")
        return super().allocate(epoch, spans=spans)


class TestClusterRetry:
    def test_shard_failure_retries_the_epoch_once(self):
        allocator = FlakyClusterAllocator(failures=1)

        async def scenario():
            async with _broker(allocator, batch_window_s=0.01) as broker:
                decision = await broker.submit_request("su-1", object())
                return decision, broker.metrics.snapshot()

        decision, metrics = asyncio.run(scenario())
        assert decision.status == "granted"
        assert allocator.calls == 2
        retries = [
            value
            for name, value in metrics["counters"].items()
            if "epoch_cluster_retries" in name
        ]
        assert retries == [1]

    def test_persistent_cluster_failure_rejects(self):
        allocator = FlakyClusterAllocator(failures=2)

        async def scenario():
            async with _broker(allocator, batch_window_s=0.01) as broker:
                return await broker.submit_request("su-1", object())

        decision = asyncio.run(scenario())
        assert decision.status == "rejected"
        assert decision.reason == REASON_INTERNAL_ERROR
        assert allocator.calls == 2  # one retry, then give up


class TestPuUpdates:
    def test_updates_applied_between_epochs(self):
        seen = []

        async def scenario():
            broker = _broker(pu_handler=seen.append, batch_window_s=0.01)
            async with broker:
                broker.submit_pu_update("update-1")
                await broker.submit_request("su-1", object())
            return broker.metrics.snapshot()

        snap = asyncio.run(scenario())
        assert seen == ["update-1"]
        assert snap["counters"]["pu_updates_applied"] == 1

    def test_update_without_handler_rejected(self):
        broker = _broker()
        with pytest.raises(ProtocolError):
            broker.submit_pu_update("update-1")


class TestLifecycle:
    def test_double_start_rejected(self):
        async def scenario():
            broker = _broker()
            await broker.start()
            try:
                with pytest.raises(ProtocolError):
                    await broker.start()
            finally:
                await broker.stop()

        asyncio.run(scenario())

    def test_stop_idempotent(self):
        async def scenario():
            broker = _broker()
            await broker.start()
            await broker.stop()
            await broker.stop()

        asyncio.run(scenario())

    def test_concurrent_stop_is_safe(self):
        """Regression (ASY004): two stop() calls racing through the drain
        await used to trip the loop-task assert / clobber state; the
        lifecycle lock serializes them."""

        async def scenario():
            broker = _broker()
            await broker.start()
            await asyncio.gather(broker.stop(), broker.stop(), broker.stop())
            assert broker._loop_task is None
            assert broker._running is False

        asyncio.run(scenario())

    def test_concurrent_stop_then_restart(self):
        async def scenario():
            broker = _broker()
            await broker.start()
            await asyncio.gather(broker.stop(), broker.stop())
            await broker.start()
            await broker.stop()

        asyncio.run(scenario())


class TestIntegration:
    """One real allocation through broker + BatchAllocator + coordinator."""

    def test_end_to_end_decision_matches_direct_round(self, scenario):
        def deploy():
            coordinator = PisaCoordinator(
                scenario.environment,
                key_bits=TEST_KEY_BITS,
                rng=DeterministicRandomSource("broker-integration"),
            )
            for pu in scenario.pus:
                coordinator.enroll_pu(pu)
            coordinator.enroll_su(scenario.sus[0])
            return coordinator

        direct = deploy()
        direct_report = direct.run_request_round(scenario.sus[0].su_id)

        coordinator = deploy()
        client = coordinator.su_client(scenario.sus[0].su_id)
        request = client.prepare_request()

        async def run_service():
            broker = SpectrumAccessBroker(
                allocator=BatchAllocator.for_coordinator(coordinator),
                pu_update_handler=coordinator.sdc.handle_pu_update,
                config=ServiceConfig(batch_window_s=0.01),
            )
            async with broker:
                return await broker.submit_request(
                    scenario.sus[0].su_id, request
                )

        decision = asyncio.run(run_service())
        assert decision.ran
        assert (decision.status == "granted") == direct_report.granted
        assert decision.outcome.granted == direct_report.granted


class TestResolutionDedupe:
    """Regression: a ticket resolved twice must count once in metrics."""

    def _ticket(self, loop):
        from repro.service.broker import _Ticket

        return _Ticket(
            request_id="req-dedupe",
            su_id="su-1",
            request=object(),
            submitted_at=0.0,
            deadline_at=0.0,
            future=loop.create_future(),
        )

    def test_double_rejection_counts_once(self):
        async def scenario():
            async with _broker(batch_window_s=0.01) as broker:
                ticket = self._ticket(asyncio.get_running_loop())
                broker._pending = 1
                # Historically: deadline check rejected the ticket, then a
                # failed epoch pass rejected it again — double-decrementing
                # the queue and double-counting requests_rejected.
                broker._resolve_rejection(ticket, REASON_DEADLINE_EXPIRED)
                broker._resolve_rejection(ticket, REASON_INTERNAL_ERROR)
                return broker.metrics.snapshot(), broker._pending

        snap, pending = asyncio.run(scenario())
        assert pending == 0  # decremented exactly once
        rejected = sum(
            value
            for name, value in snap["counters"].items()
            if name.startswith("requests_rejected")
        )
        assert rejected == 1
        assert snap["counters"]["requests_deduped"] == 1

    def test_rejected_ticket_cannot_be_granted_later(self):
        async def scenario():
            async with _broker(batch_window_s=0.01) as broker:
                ticket = self._ticket(asyncio.get_running_loop())
                broker._pending = 1
                broker._resolve_rejection(ticket, REASON_DEADLINE_EXPIRED)
                # The dedupe guard is what the epoch grant loop consults.
                return broker._mark_resolved(ticket)

        assert asyncio.run(scenario()) is False

    def test_request_ids_are_unique_per_submission(self):
        async def scenario():
            async with _broker(batch_window_s=0.01, max_batch=8) as broker:
                task_a = asyncio.create_task(
                    broker.submit_request("su-1", object())
                )
                task_b = asyncio.create_task(
                    broker.submit_request("su-1", object())
                )
                await asyncio.gather(task_a, task_b)
                return broker.metrics.snapshot()

        snap = asyncio.run(scenario())
        assert snap["counters"]["requests_granted"] == 2
        assert "requests_deduped" not in snap["counters"]
