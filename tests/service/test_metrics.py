"""Unit tests for the service metrics registry."""

import json

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labelled,
)


class TestLabels:
    def test_plain_name(self):
        assert labelled("requests") == "requests"

    def test_labels_sorted_deterministically(self):
        assert labelled("rejected", reason="full", stage="admit") == (
            "rejected{reason=full,stage=admit}"
        )
        assert labelled("rejected", stage="admit", reason="full") == (
            "rejected{reason=full,stage=admit}"
        )


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5

    def test_monotonic(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.snapshot() == 7


class TestHistogram:
    def test_exact_totals(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(6.0)
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == pytest.approx(2.0)

    def test_percentiles(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert histogram.percentile(95) == pytest.approx(95.0, abs=1.0)
        assert histogram.percentile(99) == pytest.approx(99.0, abs=1.0)

    def test_reservoir_bounds_memory_but_not_totals(self):
        histogram = Histogram(reservoir=10)
        for value in range(1000):
            histogram.observe(float(value))
        assert histogram.count == 1000
        assert len(histogram._samples) == 10
        # Percentiles reflect the most recent window.
        assert histogram.percentile(50) >= 990.0

    def test_empty_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["p99"] == 0.0


class TestRegistry:
    def test_same_name_same_instance(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc()
        assert registry.counter("hits").snapshot() == 2

    def test_labelled_metrics_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("rejected", reason="full").inc()
        registry.counter("rejected", reason="deadline").inc(2)
        snap = registry.snapshot()
        assert snap["counters"]["rejected{reason=full}"] == 1
        assert snap["counters"]["rejected{reason=deadline}"] == 2

    def test_timer_records_elapsed(self):
        ticks = iter([1.0, 3.5])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        with registry.timer("phase_s"):
            pass
        snap = registry.snapshot()["histograms"]["phase_s"]
        assert snap["count"] == 1
        assert snap["sum"] == pytest.approx(2.5)

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1.5)
        registry.histogram("c").observe(0.25)
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["a"] == 1
        assert parsed["gauges"]["b"] == 1.5
        assert parsed["histograms"]["c"]["count"] == 1
