"""The old ``repro.service.metrics`` survives only as a deprecation shim.

Its unit tests moved to ``tests/telemetry/test_metrics.py`` alongside
the real implementation; what this file pins is the *shim contract*:
importing the old path warns, and hands back the very same objects as
:mod:`repro.telemetry`, so metrics recorded through a legacy import land
in the same registry instances as everything else.
"""

import importlib
import sys
import warnings

import repro.telemetry as telemetry


def _fresh_import():
    """(Re-)import the shim so its module-level warning fires."""
    sys.modules.pop("repro.service.metrics", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        module = importlib.import_module("repro.service.metrics")
    return module, caught


class TestDeprecationShim:
    def test_import_emits_deprecation_warning(self):
        _, caught = _fresh_import()
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations, "importing the shim must warn"
        assert "repro.telemetry" in str(deprecations[0].message)

    def test_shim_reexports_telemetry_classes_identically(self):
        module, _ = _fresh_import()
        assert module.Counter is telemetry.Counter
        assert module.Gauge is telemetry.Gauge
        assert module.Histogram is telemetry.Histogram
        assert module.MetricsRegistry is telemetry.MetricsRegistry
        assert module.labelled is telemetry.labelled

    def test_legacy_registry_is_interoperable(self):
        # A registry built via the old path is a telemetry registry —
        # one instance can serve old and new call sites simultaneously.
        module, _ = _fresh_import()
        registry = module.MetricsRegistry()
        assert isinstance(registry, telemetry.MetricsRegistry)
        registry.counter("hits").inc()
        assert "# TYPE hits counter" in registry.to_prometheus()
