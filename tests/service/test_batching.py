"""Epoch-batcher window semantics (pure logic, injected clocks)."""

import pytest

from repro.errors import ProtocolError
from repro.service.batching import (
    BatchSignExtractionRequest,
    BatchSignExtractionResponse,
    EpochBatcher,
)


class TestEmptyBatcher:
    def test_pop_ready_with_nothing_open(self):
        batcher = EpochBatcher(window_s=0.1, max_batch=4)
        assert batcher.pop_ready(now=100.0) is None

    def test_flush_with_nothing_open(self):
        batcher = EpochBatcher(window_s=0.1, max_batch=4)
        assert batcher.flush() is None

    def test_idle_has_no_deadline(self):
        batcher = EpochBatcher(window_s=0.1, max_batch=4)
        assert batcher.next_due_at() is None
        assert batcher.pending == 0


class TestWindowSemantics:
    def test_first_add_opens_epoch_with_deadline(self):
        batcher = EpochBatcher(window_s=0.5, max_batch=4)
        assert batcher.add("a", now=10.0) is None
        assert batcher.next_due_at() == pytest.approx(10.5)
        assert batcher.pending == 1

    def test_single_request_dispatches_at_window_close(self):
        batcher = EpochBatcher(window_s=0.5, max_batch=4)
        batcher.add("a", now=10.0)
        assert batcher.pop_ready(now=10.4) is None  # window still open
        epoch = batcher.pop_ready(now=10.5)
        assert epoch is not None
        assert epoch.items == ["a"]
        assert batcher.pending == 0

    def test_window_anchored_to_first_item(self):
        batcher = EpochBatcher(window_s=1.0, max_batch=10)
        batcher.add("a", now=5.0)
        batcher.add("b", now=5.9)  # does not extend the deadline
        assert batcher.next_due_at() == pytest.approx(6.0)
        epoch = batcher.pop_ready(now=6.0)
        assert epoch.items == ["a", "b"]

    def test_zero_window_dispatches_immediately_on_poll(self):
        batcher = EpochBatcher(window_s=0.0, max_batch=10)
        batcher.add("a", now=1.0)
        assert batcher.pop_ready(now=1.0).items == ["a"]


class TestOverflow:
    def test_max_batch_closes_early(self):
        batcher = EpochBatcher(window_s=100.0, max_batch=2)
        assert batcher.add("a", now=0.0) is None
        epoch = batcher.add("b", now=0.1)
        assert epoch is not None
        assert epoch.items == ["a", "b"]

    def test_overflow_past_max_batch_opens_next_epoch(self):
        batcher = EpochBatcher(window_s=100.0, max_batch=2)
        batcher.add("a", now=0.0)
        first = batcher.add("b", now=0.1)
        assert batcher.add("c", now=0.2) is None  # lands in a new epoch
        assert batcher.pending == 1
        second = batcher.flush()
        assert first.epoch_id != second.epoch_id
        assert second.items == ["c"]
        assert second.due_at == pytest.approx(100.2)

    def test_epoch_ids_increase(self):
        batcher = EpochBatcher(window_s=100.0, max_batch=1)
        ids = [batcher.add(i, now=float(i)).epoch_id for i in range(3)]
        assert ids == [0, 1, 2]


class TestFlush:
    def test_flush_ignores_deadline(self):
        batcher = EpochBatcher(window_s=100.0, max_batch=10)
        batcher.add("a", now=0.0)
        epoch = batcher.flush()
        assert epoch.items == ["a"]
        assert batcher.pending == 0


class TestValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(ProtocolError):
            EpochBatcher(window_s=-1.0, max_batch=2)

    def test_zero_max_batch_rejected(self):
        with pytest.raises(ProtocolError):
            EpochBatcher(window_s=0.1, max_batch=0)


class _FakeWireMessage:
    def __init__(self, payload: bytes) -> None:
        self.payload = payload

    def to_bytes(self) -> bytes:
        return self.payload


class TestEnvelopes:
    def test_batch_envelope_wire_size_covers_members(self):
        members = (_FakeWireMessage(b"x" * 10), _FakeWireMessage(b"y" * 20))
        request = BatchSignExtractionRequest(epoch_id=3, requests=members)
        assert request.wire_size() > 30  # members + framing

    def test_request_and_response_round_trip_bytes(self):
        members = (_FakeWireMessage(b"abc"),)
        request = BatchSignExtractionRequest(epoch_id=1, requests=members)
        response = BatchSignExtractionResponse(epoch_id=1, responses=members)
        assert b"abc" in request.to_bytes()
        assert b"abc" in response.to_bytes()
        assert b"epoch-1" in request.to_bytes()
