"""Loadtest config validation and report arithmetic (no crypto here —
the CLI test runs the full pipeline once)."""

import pytest

from repro.errors import ConfigurationError
from repro.service.broker import ServiceDecision
from repro.service.loadtest import LoadtestConfig, LoadtestReport


def _decision(status: str, reason: str | None = None) -> ServiceDecision:
    return ServiceDecision(
        su_id="su-1", status=status, reason=reason,
        latency_s=0.1, batch_size=1,
    )


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = LoadtestConfig()
        assert config.num_requests >= 1

    def test_zero_requests_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadtestConfig(num_requests=0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadtestConfig(arrivals_per_second=0.0)

    def test_zero_sus_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadtestConfig(num_sus=0)


class TestReport:
    def _report(self) -> LoadtestReport:
        decisions = (
            _decision("granted"),
            _decision("granted"),
            _decision("denied"),
            _decision("rejected", reason="queue_full"),
        )
        return LoadtestReport(
            decisions=decisions,
            wall_seconds=2.0,
            metrics={"counters": {}, "gauges": {}, "histograms": {}},
        )

    def test_counts(self):
        report = self._report()
        assert report.completed == 3
        assert report.granted == 2
        assert report.rejected == 1

    def test_throughput_counts_only_completed(self):
        assert self._report().throughput_rps == pytest.approx(1.5)

    def test_missing_histograms_default_to_zero(self):
        report = self._report()
        assert report.latency_stats()["count"] == 0
        assert report.batch_stats()["count"] == 0

    def test_table_and_json_shapes(self):
        report = self._report()
        rows = dict(report.as_table_rows())
        assert rows["requests submitted"] == "4"
        payload = report.to_json_dict()
        assert payload["completed"] == 3
        assert payload["throughput_rps"] == pytest.approx(1.5)
