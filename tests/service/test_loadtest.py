"""Loadtest config validation and report arithmetic (no crypto here —
the CLI test runs the full pipeline once)."""

import pytest

from repro.errors import ConfigurationError
from repro.service.broker import ServiceDecision
from repro.service.loadtest import LoadtestConfig, LoadtestReport


def _decision(status: str, reason: str | None = None) -> ServiceDecision:
    return ServiceDecision(
        su_id="su-1", status=status, reason=reason,
        latency_s=0.1, batch_size=1,
    )


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = LoadtestConfig()
        assert config.num_requests >= 1

    def test_zero_requests_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadtestConfig(num_requests=0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadtestConfig(arrivals_per_second=0.0)

    def test_zero_sus_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadtestConfig(num_sus=0)


class TestReport:
    def _report(self) -> LoadtestReport:
        decisions = (
            _decision("granted"),
            _decision("granted"),
            _decision("denied"),
            _decision("rejected", reason="queue_full"),
        )
        return LoadtestReport(
            decisions=decisions,
            wall_seconds=2.0,
            metrics={"counters": {}, "gauges": {}, "histograms": {}},
        )

    def test_counts(self):
        report = self._report()
        assert report.completed == 3
        assert report.granted == 2
        assert report.rejected == 1

    def test_throughput_counts_only_completed(self):
        assert self._report().throughput_rps == pytest.approx(1.5)

    def test_missing_histograms_default_to_zero(self):
        report = self._report()
        assert report.latency_stats()["count"] == 0
        assert report.batch_stats()["count"] == 0

    def test_table_and_json_shapes(self):
        report = self._report()
        rows = dict(report.as_table_rows())
        assert rows["requests submitted"] == "4"
        payload = report.to_json_dict()
        assert payload["completed"] == 3
        assert payload["throughput_rps"] == pytest.approx(1.5)


class TestClusterConfigValidation:
    def test_negative_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadtestConfig(shards=-1)

    def test_kill_shard_requires_sharded_run(self):
        with pytest.raises(ConfigurationError):
            LoadtestConfig(kill_shard_after=2)

    def test_kill_shard_with_shards_accepted(self):
        config = LoadtestConfig(shards=2, kill_shard_after=2)
        assert config.shards == 2


class TestClusterLoadtest:
    def test_two_shard_run_with_mid_run_kill_completes(self):
        """The §VI-style smoke: a 2-shard service survives losing a
        primary mid-run and still decides every request."""
        from repro.service.loadtest import run_loadtest

        config = LoadtestConfig(
            seed=3,
            num_requests=4,
            num_sus=2,
            num_pu_switches=1,
            key_bits=256,
            shards=2,
            kill_shard_after=2,
        )
        report = run_loadtest(config)
        assert report.completed == 4
        assert report.rejected == 0
