"""Workload-driven loadtests: determinism, CBRS tiering, transcripts.

Full-crypto runs are kept tiny (a handful of requests at 256-bit keys
where the builders allow, 512-bit packed otherwise); the properties
under test are ordering and byte-equality, not throughput.
"""

import pytest

from repro.errors import ConfigurationError
from repro.net.recording import TranscriptTransport
from repro.resilience.chaos import FROZEN_CLOCK
from repro.service.broker import REASON_TIER_BUDGET, ServiceConfig
from repro.service.loadtest import LoadtestConfig, run_loadtest
from repro.telemetry.metrics import MetricsRegistry

#: Byte-identity configuration: one request per epoch, no batching
#: window, so epochs serialize in submission order on every plane.
TIERED_CONFIG = LoadtestConfig(
    seed=11,
    num_requests=6,
    arrivals_per_second=300.0,
    num_sus=6,
    num_pu_switches=1,
    key_bits=512,
    scenario="cbrs-tiered",
    workload="diurnal",
    tier_capacity=1,
    service=ServiceConfig(batch_window_s=0.0, max_batch=1),
)


class TestWorkloadConfigValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadtestConfig(scenario="mars-band")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadtestConfig(workload="tsunami")

    def test_negative_tier_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadtestConfig(tier_capacity=-1)

    def test_named_shapes_accepted(self):
        config = LoadtestConfig(scenario="cbrs-tiered", workload="flash-crowd")
        assert config.scenario == "cbrs-tiered"
        assert config.workload == "flash-crowd"


@pytest.fixture(scope="module")
def tiered_runs():
    """Two identical tiered runs with recorded transcripts."""
    runs = []
    for _ in range(2):
        metrics = MetricsRegistry()
        transport = TranscriptTransport()
        report = run_loadtest(
            TIERED_CONFIG,
            metrics=metrics,
            transport=transport,
            clock=lambda: FROZEN_CLOCK,
        )
        runs.append((report, tuple(transport.fingerprints), metrics))
    return runs


class TestTieredWorkloadRun:
    def test_repeated_runs_byte_identical(self, tiered_runs):
        (_, fps_a, _), (_, fps_b, _) = tiered_runs
        assert len(fps_a) > 0
        assert fps_a == fps_b

    def test_decisions_identical(self, tiered_runs):
        (report_a, _, _), (report_b, _, _) = tiered_runs
        key = lambda r: [  # noqa: E731
            (d.su_id, d.status, d.reason) for d in r.decisions
        ]
        assert key(report_a) == key(report_b)

    def test_tier_budget_rejections_surface(self, tiered_runs):
        report, _, _ = tiered_runs[0]
        reasons = {d.reason for d in report.decisions if d.status == "rejected"}
        assert REASON_TIER_BUDGET in reasons

    def test_tier_metric_families_present(self, tiered_runs):
        _, _, metrics = tiered_runs[0]
        prom = metrics.to_prometheus()
        assert "# TYPE grants_total counter" in prom
        assert "# TYPE preemptions_total counter" in prom
        assert "# TYPE tier_rejections_total counter" in prom

    def test_incumbent_activity_counted(self, tiered_runs):
        """The schedule's one physical PU switch lands as incumbent
        activity in the per-tier grant family."""
        _, _, metrics = tiered_runs[0]
        counters = metrics.snapshot()["counters"]
        assert counters.get("grants_total{tier=incumbent}", 0) >= 1

    def test_all_requests_accounted(self, tiered_runs):
        report, _, _ = tiered_runs[0]
        assert len(report.decisions) == TIERED_CONFIG.num_requests


class TestUhfWorkloadRun:
    def test_plain_scenario_runs_workload_without_admission(self):
        config = LoadtestConfig(
            seed=5,
            num_requests=4,
            arrivals_per_second=300.0,
            num_sus=2,
            num_pu_switches=0,
            key_bits=512,
            workload="flash-crowd",
            service=ServiceConfig(batch_window_s=0.0, max_batch=1),
        )
        report = run_loadtest(config, clock=lambda: FROZEN_CLOCK)
        assert len(report.decisions) == 4
        assert all(d.reason != REASON_TIER_BUDGET for d in report.decisions)
