"""Unit tests for the CBRS tiered-access scenario."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.cbrs import (
    TIER_GAA,
    TIER_PAL,
    CbrsConfig,
    TieredAdmission,
    assign_tiers,
    build_cbrs_scenario,
    derive_gaa_capacity,
)
from repro.sim.registry import (
    SCENARIO_CBRS_TIERED,
    build_named_scenario,
    scenario_names,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.watch.scenario import ScenarioConfig


class TestTierAssignment:
    def test_every_nth_is_pal(self):
        tiers = assign_tiers(7, pal_every=3)
        assert tiers["su-0"] == TIER_PAL
        assert tiers["su-3"] == TIER_PAL
        assert tiers["su-6"] == TIER_PAL
        assert tiers["su-1"] == TIER_GAA
        assert tiers["su-5"] == TIER_GAA

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CbrsConfig(pal_every=0)
        with pytest.raises(ConfigurationError):
            CbrsConfig(gaa_capacity=-1)


class TestBuiltScenario:
    def test_capacity_derived_from_watch(self):
        built = build_cbrs_scenario(CbrsConfig(base=ScenarioConfig(seed=5)))
        assert built.capacity >= 1
        assert built.capacity == derive_gaa_capacity(built.scenario)

    def test_explicit_capacity_wins(self):
        built = build_cbrs_scenario(
            CbrsConfig(base=ScenarioConfig(seed=5), gaa_capacity=2)
        )
        assert built.capacity == 2

    def test_base_scenario_unmodified(self):
        """The environment must be a plain build_scenario output so
        socket workers rebuild it from the base config alone."""
        from repro.watch.scenario import build_scenario

        base = ScenarioConfig(seed=5)
        built = build_cbrs_scenario(CbrsConfig(base=base))
        plain = build_scenario(base)
        assert len(built.scenario.sus) == len(plain.sus)
        assert built.scenario.environment.num_channels == (
            plain.environment.num_channels
        )

    def test_registry_names(self):
        assert SCENARIO_CBRS_TIERED in scenario_names()
        assert "uhf" in scenario_names()

    def test_registry_builds_admission(self):
        built = build_named_scenario(
            SCENARIO_CBRS_TIERED, seed=3, num_sus=4, gaa_capacity=2
        )
        admission = built.admission(MetricsRegistry())
        assert admission is not None
        assert admission.capacity == 2

    def test_uhf_has_no_admission(self):
        built = build_named_scenario("uhf", seed=3, num_sus=4)
        assert built.admission(MetricsRegistry()) is None

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            build_named_scenario("mars-band")


def make_admission(capacity=2, num_sus=6, metrics=None):
    return TieredAdmission(
        assign_tiers(num_sus, pal_every=3), capacity, metrics
    )


class TestTieredAdmission:
    def test_under_capacity_everyone_admitted(self):
        adm = make_admission(capacity=5)
        assert adm.on_submit("su-1")  # gaa
        assert adm.on_submit("su-0")  # pal
        assert adm.active_leases == {"su-1": TIER_GAA, "su-0": TIER_PAL}

    def test_gaa_rejected_at_capacity(self):
        adm = make_admission(capacity=1)
        assert adm.on_submit("su-1")
        assert not adm.on_submit("su-2")
        assert adm.events[-1] == ("reject", "su-2")

    def test_pal_preempts_oldest_gaa(self):
        adm = make_admission(capacity=2)
        assert adm.on_submit("su-1")  # gaa, oldest
        assert adm.on_submit("su-2")  # gaa
        assert adm.on_submit("su-0")  # pal preempts su-1
        assert adm.active_leases == {"su-2": TIER_GAA, "su-0": TIER_PAL}
        # The ordering the tentpole pins: preempt recorded BEFORE admit.
        assert adm.events[-2:] == [("preempt", "su-1"), ("admit", "su-0")]

    def test_preemption_ordering_event_log(self):
        adm = make_admission(capacity=1)
        adm.on_submit("su-1")
        adm.on_submit("su-0")
        preempt_at = adm.events.index(("preempt", "su-1"))
        admit_at = adm.events.index(("admit", "su-0"))
        assert preempt_at < admit_at

    def test_pal_rejected_when_no_gaa_victim(self):
        adm = make_admission(capacity=1)
        assert adm.on_submit("su-0")  # pal holds the only slot
        assert not adm.on_submit("su-3")  # another pal: nothing to evict
        assert adm.events[-1] == ("reject", "su-3")

    def test_resubmission_refreshes_own_lease(self):
        adm = make_admission(capacity=1)
        assert adm.on_submit("su-1")
        assert adm.on_submit("su-1")  # refresh, not a second slot
        assert len(adm.active_leases) == 1

    def test_refresh_keeps_lease_age(self):
        """A refreshed GAA lease keeps its age — it stays the preferred
        preemption victim."""
        adm = make_admission(capacity=2)
        adm.on_submit("su-1")  # oldest gaa
        adm.on_submit("su-2")
        adm.on_submit("su-1")  # refresh must not make su-2 the oldest
        adm.on_submit("su-0")  # pal preempts
        assert ("preempt", "su-1") in adm.events

    def test_preempted_victim_can_rerequest(self):
        adm = make_admission(capacity=1)
        adm.on_submit("su-1")
        adm.on_submit("su-0")  # preempts su-1
        assert not adm.on_submit("su-1")  # band full of PAL now
        assert adm.active_leases == {"su-0": TIER_PAL}

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            make_admission(capacity=0)

    def test_non_requesting_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            TieredAdmission({"su-0": "incumbent"}, capacity=1)

    def test_unmapped_su_defaults_to_gaa(self):
        adm = make_admission(capacity=1)
        assert adm.tier("su-999") == TIER_GAA


class TestTierMetrics:
    def test_families_pre_registered_at_zero(self):
        metrics = MetricsRegistry()
        make_admission(metrics=metrics)
        prom = metrics.to_prometheus()
        for family in (
            "grants_total", "preemptions_total", "tier_rejections_total"
        ):
            assert f"# TYPE {family} counter" in prom
        for tier in ("incumbent", "pal", "gaa"):
            assert f'grants_total{{tier="{tier}"}} 0' in prom

    def test_counters_track_decisions(self):
        metrics = MetricsRegistry()
        adm = make_admission(capacity=1, metrics=metrics)
        adm.on_submit("su-1")
        adm.on_submit("su-2")          # gaa rejection
        adm.on_submit("su-0")          # pal preempts su-1
        adm.on_granted("su-0")
        adm.on_pu_update()             # incumbent activity
        counters = metrics.snapshot()["counters"]
        assert counters["tier_rejections_total{tier=gaa}"] == 1
        assert counters["preemptions_total{tier=gaa}"] == 1
        assert counters["grants_total{tier=pal}"] == 1
        assert counters["grants_total{tier=incumbent}"] == 1
