"""Property tests for the deterministic traffic models."""

import math

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ConfigurationError
from repro.geo.grid import BlockGrid
from repro.sim.events import EventQueue
from repro.sim.traffic import (
    KIND_PU_SWITCH,
    KIND_SU_MOVE,
    KIND_SU_REQUEST,
    DiurnalTraffic,
    FlashCrowdTraffic,
    PoissonTraffic,
    PuChurnModel,
    RandomWaypointMobility,
    build_schedule,
    exponential_gap,
    resolve_workload,
    unit_float,
    workload_names,
)


def numerical_integral(model, horizon_s, steps=20_000):
    dt = horizon_s / steps
    return sum(
        model.rate_per_s((i + 0.5) * dt) for i in range(steps)
    ) * dt


class TestPrimitives:
    def test_unit_float_range(self):
        rng = DeterministicRandomSource(1)
        draws = [unit_float(rng) for _ in range(2000)]
        assert all(0.0 <= u < 1.0 for u in draws)
        assert sum(draws) / len(draws) == pytest.approx(0.5, abs=0.05)

    def test_exponential_gap_mean(self):
        rng = DeterministicRandomSource(2)
        gaps = [exponential_gap(rng, 4.0) for _ in range(5000)]
        assert sum(gaps) / len(gaps) == pytest.approx(0.25, rel=0.1)

    def test_exponential_gap_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            exponential_gap(DeterministicRandomSource(0), 0.0)


class TestExpectedCounts:
    """∫λ(t)dt closed forms must match numerical integration and the
    empirical arrival totals — "rates integrate to configured totals"."""

    def test_poisson_closed_form(self):
        model = PoissonTraffic(3.0)
        assert model.expected_count(100.0) == pytest.approx(300.0)

    @pytest.mark.parametrize("horizon", [250.0, 1000.0, 1234.5])
    def test_diurnal_closed_form_matches_integral(self, horizon):
        model = DiurnalTraffic(2.0, amplitude=0.8, period_s=1000.0, phase_s=50.0)
        assert model.expected_count(horizon) == pytest.approx(
            numerical_integral(model, horizon), rel=1e-3
        )

    def test_diurnal_whole_period_integrates_to_mean(self):
        model = DiurnalTraffic(2.0, amplitude=0.8, period_s=600.0)
        assert model.expected_count(600.0) == pytest.approx(1200.0, rel=1e-9)

    @pytest.mark.parametrize("horizon", [50.0, 120.0, 400.0])
    def test_flash_crowd_closed_form_matches_integral(self, horizon):
        model = FlashCrowdTraffic(
            1.5, burst_start_s=100.0, burst_duration_s=60.0, multiplier=6.0
        )
        assert model.expected_count(horizon) == pytest.approx(
            numerical_integral(model, horizon), rel=1e-3
        )

    def test_empirical_arrivals_match_expected(self):
        """Thinning must deliver the configured total, not just a shape."""
        model = DiurnalTraffic(5.0, amplitude=0.8, period_s=200.0)
        rng = DeterministicRandomSource(3)
        horizon = 1000.0
        stream = model.arrivals(rng)
        count = 0
        for t in stream:
            if t > horizon:
                break
            count += 1
        expected = model.expected_count(horizon)
        assert count == pytest.approx(expected, rel=0.05)

    def test_flash_crowd_burst_density(self):
        model = FlashCrowdTraffic(
            1.0, burst_start_s=400.0, burst_duration_s=200.0, multiplier=6.0
        )
        rng = DeterministicRandomSource(4)
        inside = outside = 0
        for t in model.arrivals(rng):
            if t > 1000.0:
                break
            if 400.0 <= t < 600.0:
                inside += 1
            else:
                outside += 1
        # 200 s at 6x vs 800 s at 1x: the burst should hold ~60% of mass.
        assert inside / (inside + outside) == pytest.approx(0.6, abs=0.08)


class TestScheduleDeterminism:
    def build(self, seed, workload="diurnal"):
        return build_schedule(
            workload,
            rng=DeterministicRandomSource(seed).fork("workload"),
            rate_per_s=2.0,
            num_requests=40,
            num_sus=5,
            num_pus=3,
            num_channels=4,
            pu_churn_per_hour=300.0,
            grid=BlockGrid(rows=4, cols=4, block_size_m=100.0),
        )

    @pytest.mark.parametrize("workload", workload_names())
    def test_identical_seeds_identical_digests(self, workload):
        a = self.build(11, workload)
        b = self.build(11, workload)
        assert a.events == b.events
        assert a.digest() == b.digest()

    def test_different_seeds_differ(self):
        assert self.build(11).digest() != self.build(12).digest()

    def test_events_time_ordered(self):
        events = self.build(7).events
        keys = [(e.time_s,) for e in events]
        assert keys == sorted(keys)

    def test_request_budget_exact(self):
        schedule = self.build(7)
        assert schedule.num_requests == 40

    def test_pu_switch_cap(self):
        schedule = build_schedule(
            "pu-churn-storm",
            rng=DeterministicRandomSource(5).fork("workload"),
            rate_per_s=1.0,
            num_requests=10,
            num_sus=3,
            num_pus=2,
            num_channels=4,
            max_pu_switches=3,
            pu_churn_per_hour=3600.0,
        )
        assert schedule.num_pu_switches <= 3

    def test_mobility_requires_grid(self):
        with pytest.raises(ConfigurationError):
            build_schedule(
                "mobility",
                rng=DeterministicRandomSource(0),
                rate_per_s=1.0,
                num_requests=4,
                num_sus=2,
            )

    def test_mobility_emits_moves(self):
        schedule = self.build(9, "mobility")
        kinds = {e.kind for e in schedule.events}
        assert KIND_SU_MOVE in kinds and KIND_SU_REQUEST in kinds

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workload("tsunami")

    def test_subject_indices_in_range(self):
        for event in self.build(13).events:
            if event.kind == KIND_SU_REQUEST:
                assert 0 <= event.index < 5
            elif event.kind == KIND_PU_SWITCH:
                assert 0 <= event.index < 3
                assert 0 <= event.slot < 4


class TestChurnAndMobility:
    def test_churn_draw_order_is_per_pu(self):
        """PU 0's whole stream draws before PU 1's, so adding a PU never
        perturbs the earlier PUs' events."""
        model = PuChurnModel(virtual_rate_per_hour=3600.0, physical_fraction=0.5)
        two = model.switches(
            DeterministicRandomSource(8), num_pus=2, horizon_s=30.0,
            num_channels=4,
        )
        three = model.switches(
            DeterministicRandomSource(8), num_pus=3, horizon_s=30.0,
            num_channels=4,
        )
        assert [e for e in three if e.index < 2] == two

    def test_churn_physical_fraction(self):
        model = PuChurnModel(virtual_rate_per_hour=3600.0, physical_fraction=0.2)
        events = model.switches(
            DeterministicRandomSource(9), num_pus=4, horizon_s=2000.0,
            num_channels=4,
        )
        frac = sum(e.physical for e in events) / len(events)
        assert frac == pytest.approx(0.2, abs=0.05)

    def test_waypoints_within_grid(self):
        grid = BlockGrid(rows=3, cols=5, block_size_m=50.0)
        starts, moves = RandomWaypointMobility(grid).waypoints(
            DeterministicRandomSource(10), num_sus=4, horizon_s=3600.0
        )
        assert len(starts) == 4
        assert all(0 <= b < grid.num_blocks for b in starts)
        assert all(0 <= e.block < grid.num_blocks for e in moves)
        assert moves  # an hour at walking speed crosses blocks


class TestEventQueueDeterminism:
    def test_tie_break_is_schedule_order(self):
        """Same-instant events pop in scheduling order, every time."""
        for _ in range(3):
            queue = EventQueue()
            for label in ("a", "b", "c", "d"):
                queue.schedule_at(1.0, label)
            assert [queue.pop().kind for _ in range(4)] == ["a", "b", "c", "d"]

    def test_start_offset(self):
        queue = EventQueue(start_s=100.0)
        assert queue.now == 100.0
        queue.schedule(5.0, "x")
        assert queue.pop().time == 105.0

    def test_clock_tracks_queue(self):
        queue = EventQueue()
        clock = queue.clock()
        queue.schedule(2.0, "x")
        assert clock() == 0.0
        queue.pop()
        assert clock() == 2.0

    def test_interleaved_sources_stable(self):
        """Merging two event streams is insensitive to push order when
        times differ, and schedule-ordered when they collide."""
        first, second = EventQueue(), EventQueue()
        times = [0.5, 0.5, 1.0, 2.0]
        for t in times:
            first.schedule_at(t, f"t{t}")
        for t in reversed(times):
            second.schedule_at(t, f"t{t}")
        popped_first = [first.pop().time for _ in range(4)]
        popped_second = [second.pop().time for _ in range(4)]
        assert popped_first == popped_second == sorted(times)


def test_schedule_horizon_is_last_event():
    schedule = build_schedule(
        "steady",
        rng=DeterministicRandomSource(3),
        rate_per_s=1.0,
        num_requests=5,
        num_sus=2,
    )
    assert schedule.horizon_s == schedule.events[-1].time_s
    assert math.isfinite(schedule.horizon_s)
