"""Unit tests for the discrete-event core."""

import pytest

from repro.sim.events import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.schedule(5.0, "late")
        queue.schedule(1.0, "early")
        queue.schedule(3.0, "middle")
        assert [queue.pop().kind for _ in range(3)] == ["early", "middle", "late"]

    def test_clock_advances(self):
        queue = EventQueue()
        queue.schedule(2.5, "x")
        queue.pop()
        assert queue.now == 2.5

    def test_fifo_among_simultaneous(self):
        queue = EventQueue()
        queue.schedule(1.0, "first")
        queue.schedule(1.0, "second")
        assert [queue.pop().kind, queue.pop().kind] == ["first", "second"]

    def test_schedule_relative_to_now(self):
        queue = EventQueue()
        queue.schedule(1.0, "a")
        queue.pop()
        queue.schedule(1.0, "b")
        assert queue.pop().time == 2.0

    def test_schedule_at_absolute(self):
        queue = EventQueue()
        queue.schedule_at(7.0, "x")
        assert queue.pop().time == 7.0

    def test_past_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1.0, "x")
        queue.schedule(5.0, "x")
        queue.pop()
        with pytest.raises(ValueError):
            queue.schedule_at(1.0, "y")

    def test_empty_pop(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.schedule(1.0, "x")
        assert queue and len(queue) == 1

    def test_payload_carried(self):
        queue = EventQueue()
        queue.schedule(1.0, "x", payload={"k": 1})
        assert queue.pop().payload == {"k": 1}
