"""Integration tests for the deployment simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.costmodel import ServiceCostModel
from repro.sim.simulator import DeploymentSimulator
from repro.sim.workload import WorkloadConfig
from tests.sim.test_costmodel import PAPER_PROFILE


@pytest.fixture(scope="module")
def model():
    return ServiceCostModel(PAPER_PROFILE, num_channels=100, num_blocks=600)


@pytest.fixture(scope="module")
def packed_model():
    return ServiceCostModel(
        PAPER_PROFILE, num_channels=100, num_blocks=600, packing_factor=12
    )


class TestBasicRun:
    def test_produces_requests(self, scenario, model):
        sim = DeploymentSimulator(
            scenario, model, WorkloadConfig(su_requests_per_hour=2, seed=0)
        )
        report = sim.run(4 * 3600)
        assert report.num_requests > 0
        assert 0.0 <= report.grant_ratio <= 1.0
        assert report.mean_latency_s > 0

    def test_deterministic_per_seed(self, scenario, model):
        def run(seed):
            sim = DeploymentSimulator(
                scenario, model, WorkloadConfig(su_requests_per_hour=2, seed=seed)
            )
            return sim.run(2 * 3600)

        a, b = run(7), run(7)
        assert a.num_requests == b.num_requests
        assert a.mean_latency_s == b.mean_latency_s
        assert run(8).num_requests != a.num_requests or (
            run(8).mean_latency_s != a.mean_latency_s
        )

    def test_duration_validation(self, scenario, model):
        sim = DeploymentSimulator(scenario, model)
        with pytest.raises(ConfigurationError):
            sim.run(0)

    def test_no_sus_rejected(self, model):
        from repro.watch.scenario import ScenarioConfig, build_scenario

        empty = build_scenario(ScenarioConfig(seed=0, num_sus=0))
        with pytest.raises(ConfigurationError):
            DeploymentSimulator(empty, model)


class TestQueueingBehaviour:
    def test_overload_inflates_latency(self, scenario, model):
        """Arrivals beyond the bottleneck's saturation rate must queue."""

        def mean_latency(rate):
            sim = DeploymentSimulator(
                scenario, model, WorkloadConfig(su_requests_per_hour=rate, seed=3)
            )
            return sim.run(6 * 3600).mean_latency_s

        assert mean_latency(8.0) > 2 * mean_latency(0.25)

    def test_stp_is_the_bottleneck_at_paper_scale(self, scenario, model):
        """A finding the paper does not report: the STP's 60 000
        decrypt+encrypt pairs exceed the SDC's homomorphic work."""
        assert model.costs.stp_convert_s > 2 * model.costs.sdc_per_request_s
        sim = DeploymentSimulator(
            scenario, model, WorkloadConfig(su_requests_per_hour=4, seed=1)
        )
        report = sim.run(4 * 3600)
        assert report.stp_utilization >= report.sdc_utilization

    def test_packing_raises_capacity(self, scenario, model, packed_model):
        def p95(m):
            sim = DeploymentSimulator(
                scenario, m, WorkloadConfig(su_requests_per_hour=4, seed=5)
            )
            return sim.run(4 * 3600).latency_percentile_s(95)

        assert p95(packed_model) < p95(model) / 3


class TestPuChurn:
    def test_virtual_switches_suppressed(self, scenario, model):
        sim = DeploymentSimulator(
            scenario, model,
            WorkloadConfig(su_requests_per_hour=1, physical_switch_fraction=0.2,
                           seed=2),
        )
        report = sim.run(8 * 3600)
        total = report.pu_updates + report.virtual_switches_suppressed
        assert total > 0
        # Roughly the configured 20% reach the SDC.
        assert report.pu_updates < total * 0.5

    def test_report_rows_render(self, scenario, model):
        sim = DeploymentSimulator(
            scenario, model, WorkloadConfig(su_requests_per_hour=1, seed=0)
        )
        rows = sim.run(3600).as_table_rows()
        assert len(rows) == 9


class TestHorizontalScaling:
    def test_more_stp_workers_cut_latency(self, scenario, model):
        """The STP bottleneck parallelises: c-server queues drain faster."""

        def p95(workers):
            sim = DeploymentSimulator(
                scenario, model,
                WorkloadConfig(su_requests_per_hour=4, seed=6),
                stp_workers=workers,
            )
            return sim.run(6 * 3600).latency_percentile_s(95)

        assert p95(8) < p95(1) / 2

    def test_worker_validation(self, scenario, model):
        with pytest.raises(ConfigurationError):
            DeploymentSimulator(scenario, model, sdc_workers=0)

    def test_utilization_normalised_per_worker(self, scenario, model):
        sim = DeploymentSimulator(
            scenario, model,
            WorkloadConfig(su_requests_per_hour=1, seed=7),
            stp_workers=16,
        )
        report = sim.run(4 * 3600)
        assert report.stp_utilization <= 1.0
