"""Unit tests for workload generators."""

import numpy as np
import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ConfigurationError
from repro.sim.workload import PoissonArrivals, PuSwitchProcess, WorkloadConfig


class TestWorkloadConfig:
    def test_defaults_follow_paper(self):
        config = WorkloadConfig()
        assert 2.3 <= config.pu_virtual_switches_per_hour <= 2.7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(su_requests_per_hour=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(physical_switch_fraction=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(cached_request_fraction=-0.1)


class TestPoissonArrivals:
    def test_mean_gap(self):
        rng = DeterministicRandomSource(0)
        arrivals = PoissonArrivals(rate_per_hour=60.0, rng=rng)
        gaps = [arrivals.next_gap_s() for _ in range(3000)]
        assert np.mean(gaps) == pytest.approx(60.0, rel=0.1)

    def test_gaps_positive(self):
        rng = DeterministicRandomSource(1)
        arrivals = PoissonArrivals(rate_per_hour=10.0, rng=rng)
        assert all(arrivals.next_gap_s() > 0 for _ in range(100))

    def test_same_seed_same_gaps(self):
        a = PoissonArrivals(30.0, DeterministicRandomSource(9))
        b = PoissonArrivals(30.0, DeterministicRandomSource(9))
        assert [a.next_gap_s() for _ in range(50)] == [
            b.next_gap_s() for _ in range(50)
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0, DeterministicRandomSource(0))


class TestPuSwitchProcess:
    def test_physical_fraction(self):
        rng = DeterministicRandomSource(2)
        process = PuSwitchProcess(2.5, physical_fraction=0.2, rng=rng)
        flags = [process.next_switch()[1] for _ in range(4000)]
        assert np.mean(flags) == pytest.approx(0.2, abs=0.03)

    def test_mean_switch_gap(self):
        rng = DeterministicRandomSource(3)
        process = PuSwitchProcess(2.5, physical_fraction=0.2, rng=rng)
        gaps = [process.next_switch()[0] for _ in range(3000)]
        assert np.mean(gaps) == pytest.approx(3600.0 / 2.5, rel=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PuSwitchProcess(0.0, 0.2, DeterministicRandomSource(0))
