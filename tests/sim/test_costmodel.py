"""Unit tests for the simulator's service-cost model."""

import pytest

from repro.analysis.scaling import PaillierCostProfile
from repro.errors import ConfigurationError
from repro.sim.costmodel import ServiceCostModel

#: Table II's GMP numbers — the "paper hardware" profile.
PAPER_PROFILE = PaillierCostProfile(
    key_bits=2048,
    encryption_s=0.030378,
    decryption_s=0.021170,
    hom_add_s=4e-6,
    hom_sub_s=7.3e-5,
    hom_scale_small_s=1.564e-3,
    hom_scale_full_s=0.018867,
    rerandomize_s=0.030,
)


class TestServiceCosts:
    def test_matches_paper_processing_time(self):
        """With Table II's primitives the modelled SDC time should land
        near the paper's ≈219 s Figure 6 number."""
        model = ServiceCostModel(PAPER_PROFILE, num_channels=100, num_blocks=600)
        assert 100 < model.costs.sdc_per_request_s < 400

    def test_preparation_matches_paper_order(self):
        """Fresh preparation ≈ cells × encryption ≈ 1800 s with Table II
        constants (the paper's 221 s additionally skips cells beyond
        d^c; see EXPERIMENTS.md)."""
        model = ServiceCostModel(PAPER_PROFILE, num_channels=100, num_blocks=600)
        assert model.costs.su_prepare_s == pytest.approx(
            60_000 * PAPER_PROFILE.encryption_s
        )

    def test_refresh_is_cheap(self):
        model = ServiceCostModel(PAPER_PROFILE, num_channels=100, num_blocks=600)
        assert model.costs.su_refresh_s < model.costs.su_prepare_s / 100

    def test_packing_divides_heavy_phases(self):
        base = ServiceCostModel(PAPER_PROFILE, 100, 600)
        packed = ServiceCostModel(PAPER_PROFILE, 100, 600, packing_factor=12)
        assert packed.costs.su_prepare_s == pytest.approx(
            base.costs.su_prepare_s / 12
        )
        assert packed.costs.stp_convert_s == pytest.approx(
            base.costs.stp_convert_s / 12
        )
        assert packed.request_bytes == base.request_bytes // 12

    def test_fresh_beta_costs_more(self):
        cheap = ServiceCostModel(PAPER_PROFILE, 100, 600)
        fresh = ServiceCostModel(
            PAPER_PROFILE, 100, 600, fresh_beta_encryption=True
        )
        assert fresh.costs.sdc_phase1_s > 3 * cheap.costs.sdc_phase1_s

    def test_saturation_rate(self):
        model = ServiceCostModel(PAPER_PROFILE, 100, 600)
        assert model.saturation_rate_per_hour() == pytest.approx(
            3600.0 / model.costs.sdc_per_request_s
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceCostModel(PAPER_PROFILE, 100, 600, packing_factor=0)
