"""Unit tests for the simulator's service-cost model."""

import pytest

from repro.analysis.scaling import PaillierCostProfile
from repro.errors import ConfigurationError
from repro.sim.costmodel import (
    BENCH_BLOCKS,
    BENCH_CHANNELS,
    MeasuredRound,
    ServiceCostModel,
    load_measured_round,
    paper_profile,
)

#: Table II's GMP numbers — the "paper hardware" profile.
PAPER_PROFILE = PaillierCostProfile(
    key_bits=2048,
    encryption_s=0.030378,
    decryption_s=0.021170,
    hom_add_s=4e-6,
    hom_sub_s=7.3e-5,
    hom_scale_small_s=1.564e-3,
    hom_scale_full_s=0.018867,
    rerandomize_s=0.030,
)


class TestServiceCosts:
    def test_matches_paper_processing_time(self):
        """With Table II's primitives the modelled SDC time should land
        near the paper's ≈219 s Figure 6 number."""
        model = ServiceCostModel(PAPER_PROFILE, num_channels=100, num_blocks=600)
        assert 100 < model.costs.sdc_per_request_s < 400

    def test_preparation_matches_paper_order(self):
        """Fresh preparation ≈ cells × encryption ≈ 1800 s with Table II
        constants (the paper's 221 s additionally skips cells beyond
        d^c; see EXPERIMENTS.md)."""
        model = ServiceCostModel(PAPER_PROFILE, num_channels=100, num_blocks=600)
        assert model.costs.su_prepare_s == pytest.approx(
            60_000 * PAPER_PROFILE.encryption_s
        )

    def test_refresh_is_cheap(self):
        model = ServiceCostModel(PAPER_PROFILE, num_channels=100, num_blocks=600)
        assert model.costs.su_refresh_s < model.costs.su_prepare_s / 100

    def test_packing_divides_heavy_phases(self):
        base = ServiceCostModel(PAPER_PROFILE, 100, 600)
        packed = ServiceCostModel(PAPER_PROFILE, 100, 600, packing_factor=12)
        assert packed.costs.su_prepare_s == pytest.approx(
            base.costs.su_prepare_s / 12
        )
        assert packed.costs.stp_convert_s == pytest.approx(
            base.costs.stp_convert_s / 12
        )
        assert packed.request_bytes == base.request_bytes // 12

    def test_fresh_beta_costs_more(self):
        cheap = ServiceCostModel(PAPER_PROFILE, 100, 600)
        fresh = ServiceCostModel(
            PAPER_PROFILE, 100, 600, fresh_beta_encryption=True
        )
        assert fresh.costs.sdc_phase1_s > 3 * cheap.costs.sdc_phase1_s

    def test_saturation_rate(self):
        model = ServiceCostModel(PAPER_PROFILE, 100, 600)
        assert model.saturation_rate_per_hour() == pytest.approx(
            3600.0 / model.costs.sdc_per_request_s
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceCostModel(PAPER_PROFILE, 100, 600, packing_factor=0)


class TestBenchSeeding:
    """PhaseCosts calibrated from the latest BENCH_service.json entry."""

    def write(self, tmp_path, payload):
        import json

        path = tmp_path / "BENCH_service.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_history_layout_takes_latest(self, tmp_path):
        path = self.write(tmp_path, {"history": [
            {"baseline": {"seconds_per_request": 9.0}, "key_bits": 512},
            {"baseline": {"seconds_per_request": 3.5}, "key_bits": 512,
             "timestamp": "2026-08-08T00:00:00Z"},
        ]})
        measured = load_measured_round(path)
        assert measured is not None
        assert measured.seconds_per_request == 3.5
        assert measured.key_bits == 512
        assert measured.timestamp == "2026-08-08T00:00:00Z"

    def test_legacy_single_entry_layout(self, tmp_path):
        path = self.write(tmp_path, {
            "baseline": {"seconds_per_request": 2.25}, "key_bits": 512,
        })
        measured = load_measured_round(path)
        assert measured is not None
        assert measured.seconds_per_request == 2.25

    def test_missing_file_falls_back_to_none(self, tmp_path):
        assert load_measured_round(tmp_path / "nope.json") is None

    def test_garbage_falls_back_to_none(self, tmp_path):
        path = tmp_path / "BENCH_service.json"
        path.write_text("{not json", encoding="utf-8")
        assert load_measured_round(path) is None

    def test_missing_baseline_falls_back_to_none(self, tmp_path):
        assert load_measured_round(
            self.write(tmp_path, {"history": [{"key_bits": 512}]})
        ) is None
        assert load_measured_round(
            self.write(tmp_path, {"baseline": {"seconds_per_request": -1}})
        ) is None

    def test_repo_bench_history_loads(self):
        """The checked-in BENCH_service.json must seed the model."""
        measured = load_measured_round()
        assert measured is not None
        assert measured.seconds_per_request > 0

    def test_calibration_scales_every_phase(self):
        measured = MeasuredRound(seconds_per_request=3.6, key_bits=512)
        factor = ServiceCostModel.calibration_from(PAPER_PROFILE, measured)
        base = ServiceCostModel(PAPER_PROFILE, 100, 600)
        scaled = ServiceCostModel(PAPER_PROFILE, 100, 600, calibration=factor)
        assert scaled.calibration == factor
        assert scaled.costs.sdc_phase1_s == pytest.approx(
            base.costs.sdc_phase1_s * factor
        )
        assert scaled.costs.su_decrypt_s == pytest.approx(
            base.costs.su_decrypt_s * factor
        )

    def test_calibration_reproduces_measured_round_at_bench_scale(self):
        measured = MeasuredRound(seconds_per_request=3.6, key_bits=512)
        factor = ServiceCostModel.calibration_from(PAPER_PROFILE, measured)
        model = ServiceCostModel(
            PAPER_PROFILE, BENCH_CHANNELS, BENCH_BLOCKS, calibration=factor
        )
        round_s = (
            model.costs.su_prepare_s + model.costs.sdc_phase1_s
            + model.costs.stp_convert_s + model.costs.sdc_phase2_s
            + model.costs.su_decrypt_s
        )
        assert round_s == pytest.approx(3.6, rel=1e-9)

    def test_scaled_validates_factor(self):
        base = ServiceCostModel(PAPER_PROFILE, 100, 600)
        with pytest.raises(ConfigurationError):
            base.costs.scaled(0.0)
        with pytest.raises(ConfigurationError):
            ServiceCostModel(PAPER_PROFILE, 100, 600, calibration=-2.0)

    def test_paper_profile_matches_table_ii(self):
        profile = paper_profile()
        assert profile.key_bits == 2048
        assert profile.encryption_s == PAPER_PROFILE.encryption_s
        assert profile.rerandomize_s == PAPER_PROFILE.rerandomize_s
