"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["demo"],
            ["demo", "--packed"],
            ["demo", "--two-server", "--key-bits", "128"],
            ["testbed", "--seed", "2"],
            ["zones", "--probe-dbm", "12"],
            ["simulate", "--hours", "2", "--rate", "0.5", "--packing", "4"],
            ["profile", "--key-bits", "128"],
            ["audit"],
            ["audit", "src/repro", "--select", "CRY001", "--format", "json"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_audit_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.paths == ["src/repro"]
        assert args.baseline == "audit-baseline.json"
        assert not args.update_baseline


class TestExecution:
    def test_demo(self, capsys):
        assert main(["demo", "--seed", "3", "--key-bits", "128"]) == 0
        out = capsys.readouterr().out
        assert "decision for" in out
        assert "GRANTED" in out or "DENIED" in out

    def test_demo_variant_conflict(self, capsys):
        assert main(["demo", "--packed", "--two-server"]) == 2

    def test_demo_two_server(self, capsys):
        assert main(["demo", "--seed", "3", "--key-bits", "128",
                     "--two-server"]) == 0
        assert "two-server" in capsys.readouterr().out

    def test_zones(self, capsys):
        assert main(["zones"]) == 0
        out = capsys.readouterr().out
        assert "reuse gain" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--hours", "2", "--rate", "0.5"]) == 0
        assert "requests served" in capsys.readouterr().out

    def test_profile(self, capsys):
        assert main(["profile", "--key-bits", "128", "--iterations", "3"]) == 0
        assert "Encryption" in capsys.readouterr().out

    def test_testbed(self, capsys):
        assert main(["testbed", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "scenario-4" in out


class TestNewerCommands:
    def test_negotiate(self, capsys):
        assert main(["negotiate", "--seed", "4", "--resolution-db", "4"]) == 0
        out = capsys.readouterr().out
        assert "max admissible power" in out or "inadmissible" in out

    def test_capacity(self, capsys):
        assert main(["capacity"]) == 0
        assert "spectrum-reuse multiple" in capsys.readouterr().out

    def test_new_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["negotiate", "--block", "3"]).block == 3
        assert parser.parse_args(["capacity", "--probe-dbm", "10"]).probe_dbm == 10


class TestServeLoadtest:
    def test_parses_with_defaults(self):
        args = build_parser().parse_args(["serve-loadtest"])
        assert args.command == "serve-loadtest"
        assert args.workers == 0
        assert args.max_batch == 8
        assert args.json is None

    def test_parses_full_flag_set(self):
        args = build_parser().parse_args([
            "serve-loadtest", "--seed", "3", "--requests", "4", "--rate", "80",
            "--sus", "2", "--window-ms", "25", "--max-batch", "2",
            "--workers", "2", "--key-bits", "512", "--json", "out.json",
        ])
        assert args.requests == 4
        assert args.window_ms == 25.0
        assert args.json == "out.json"

    def test_runs_and_writes_json(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        assert main([
            "serve-loadtest", "--seed", "3", "--requests", "3", "--rate", "200",
            "--sus", "2", "--window-ms", "20", "--max-batch", "2",
            "--json", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "throughput" in printed
        import json

        report = json.loads(out.read_text())
        assert report["requests"] == 3
        assert report["completed"] + report["rejected"] == 3
        assert "latency_s" in report and "batch_size" in report


class TestTelemetryCommands:
    def test_trace_parses_with_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.command == "trace"
        assert args.requests == 4
        assert args.json is None

    def test_metrics_dump_parses_with_defaults(self):
        args = build_parser().parse_args(["metrics-dump"])
        assert args.command == "metrics-dump"
        assert args.requests == 8
        assert args.format == "prom"

    def test_trace_prints_span_tree_and_writes_json(self, capsys, tmp_path):
        out = tmp_path / "spans.json"
        assert main([
            "trace", "--seed", "3", "--requests", "2", "--rate", "200",
            "--sus", "2", "--key-bits", "256", "--shards", "2",
            "--json", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "request" in printed
        assert "phase1" in printed and "phase2" in printed
        import json

        spans = json.loads(out.read_text())
        assert len(spans) == 2  # one root span per request
        assert all(span["name"] == "request" for span in spans)

    def test_metrics_dump_prometheus_to_file(self, capsys, tmp_path):
        out = tmp_path / "metrics.prom"
        assert main([
            "metrics-dump", "--seed", "3", "--requests", "2", "--rate", "200",
            "--sus", "2", "--key-bits", "256", "--output", str(out),
        ]) == 0
        text = out.read_text()
        assert "# TYPE requests_submitted counter" in text
        assert "# TYPE request_latency_s histogram" in text

    def test_metrics_dump_json_to_stdout(self, capsys):
        assert main([
            "metrics-dump", "--seed", "3", "--requests", "2", "--rate", "200",
            "--sus", "2", "--key-bits", "256", "--format", "json",
        ]) == 0
        import json

        parsed = json.loads(capsys.readouterr().out)
        assert parsed["counters"]["requests_submitted"] == 2
