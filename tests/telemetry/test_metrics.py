"""Unit tests for the unified metrics registry (moved from tests/service)."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labelled,
    parse_labelled,
)


class TestLabels:
    def test_plain_name(self):
        assert labelled("requests") == "requests"

    def test_labels_sorted_deterministically(self):
        assert labelled("rejected", reason="full", stage="admit") == (
            "rejected{reason=full,stage=admit}"
        )
        assert labelled("rejected", stage="admit", reason="full") == (
            "rejected{reason=full,stage=admit}"
        )

    def test_parse_roundtrip(self):
        key = labelled("rejected", reason="full", stage="admit")
        assert parse_labelled(key) == (
            "rejected", {"reason": "full", "stage": "admit"}
        )
        assert parse_labelled("plain") == ("plain", {})

    def test_secret_label_names_rejected(self):
        with pytest.raises(TelemetryError):
            labelled("ops", sk="oops")
        with pytest.raises(TelemetryError):
            labelled("ops", alpha=3)


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5

    def test_monotonic(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.snapshot() == 7


class TestHistogram:
    def test_exact_totals(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(6.0)
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == pytest.approx(2.0)

    def test_percentiles(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert histogram.percentile(95) == pytest.approx(95.0, abs=1.0)
        assert histogram.percentile(99) == pytest.approx(99.0, abs=1.0)

    def test_reservoir_bounds_memory_but_not_totals(self):
        histogram = Histogram(reservoir=10)
        for value in range(1000):
            histogram.observe(float(value))
        assert histogram.count == 1000
        assert len(histogram._samples) == 10
        # Percentiles reflect the most recent window.
        assert histogram.percentile(50) >= 990.0

    def test_empty_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["p99"] == 0.0

    def test_cumulative_buckets_are_monotone_and_exact(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        buckets = histogram.cumulative_buckets()
        assert buckets == ((0.1, 1), (1.0, 2), (10.0, 3), (float("inf"), 4))


class TestRegistry:
    def test_same_name_same_instance(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc()
        assert registry.counter("hits").snapshot() == 2

    def test_labelled_metrics_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("rejected", reason="full").inc()
        registry.counter("rejected", reason="deadline").inc(2)
        snap = registry.snapshot()
        assert snap["counters"]["rejected{reason=full}"] == 1
        assert snap["counters"]["rejected{reason=deadline}"] == 2

    def test_timer_records_elapsed(self):
        ticks = iter([1.0, 3.5])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        with registry.timer("phase_s"):
            pass
        snap = registry.snapshot()["histograms"]["phase_s"]
        assert snap["count"] == 1
        assert snap["sum"] == pytest.approx(2.5)

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1.5)
        registry.histogram("c").observe(0.25)
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["a"] == 1
        assert parsed["gauges"]["b"] == 1.5
        assert parsed["histograms"]["c"]["count"] == 1


class TestPrometheusExposition:
    def test_counters_and_gauges_render_with_types(self):
        registry = MetricsRegistry()
        registry.counter("hits", route="a").inc(3)
        registry.gauge("depth").set(2)
        text = registry.to_prometheus()
        assert "# TYPE hits counter" in text
        assert 'hits{route="a"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        lines = registry.to_prometheus().splitlines()
        assert "# TYPE lat histogram" in lines
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 3' in lines
        assert any(line.startswith("lat_sum ") for line in lines)
        assert "lat_count 3" in lines

    def test_bucket_order_is_ascending_le(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t", buckets=(0.5, 2.5, 10.0))
        histogram.observe(1.0)
        lines = [
            line for line in registry.to_prometheus().splitlines()
            if line.startswith("t_bucket")
        ]
        les = [line.split('le="')[1].split('"')[0] for line in lines]
        assert les == ["0.5", "2.5", "10", "+Inf"]

    def test_families_sorted_and_type_emitted_once(self):
        registry = MetricsRegistry()
        registry.counter("b_total", x="2").inc()
        registry.counter("b_total", x="1").inc()
        registry.counter("a_total").inc()
        text = registry.to_prometheus()
        assert text.index("a_total") < text.index("b_total")
        assert text.count("# TYPE b_total counter") == 1
        assert text.index('b_total{x="1"}') < text.index('b_total{x="2"}')

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", link='su-0->"sdc"\n').inc()
        text = registry.to_prometheus()
        assert '\\"sdc\\"' in text
        assert "\\n" in text
