"""Acceptance tests: tracing the 2-shard loadtest end to end.

The telemetry contract, asserted on one seeded ``serve-loadtest``-shaped
run (2 shards, scenario seed 5, every request granted):

(a) the traced run's protocol transcript is byte-identical to an
    untraced run with the same seeds — tracing draws span ids from its
    own RNG and never touches protocol randomness;
(b) every granted request's span tree covers admission → batch →
    phase-1 → per-shard scatter → STP → phase-2 → license;
(c) one Prometheus exposition carries the broker, cluster, retry, and
    transport metric families.

Byte comparison (a) needs a fully serialised draw order: the loadtest
is open-loop *across* SUs, so with several SUs in flight the shared
protocol RNG is consumed in scheduling-dependent order (true with or
without tracing).  The neutrality run therefore uses one SU — the
per-SU closed loop serialises every draw — plus a frozen license clock
and ``max_batch=1`` so epoch framing is arrival-independent.  The span
and exposition assertions keep the multi-SU shape, whose span *trees*
are scheduling-independent even though its transcripts are not.
"""

import pytest

from repro.crypto.hashing import sha256
from repro.net.transport import MultiplexedTransport
from repro.service.broker import ServiceConfig
from repro.service.loadtest import LoadtestConfig, run_loadtest
from repro.telemetry import MetricsRegistry, Tracer
from repro.watch.scenario import ScenarioConfig, build_scenario

NUM_REQUESTS = 4
SHARDS = 2


class RecordingTransport(MultiplexedTransport):
    """Fingerprints every protocol-level payload (shard links excluded,
    matching the chaos harness's transcript definition)."""

    def __init__(self) -> None:
        super().__init__()
        self.fingerprints: list[tuple[str, str, str]] = []

    def _record(self, message, sender, receiver, size, delay) -> None:
        super()._record(message, sender, receiver, size, delay)
        if sender.startswith(("shard-", "router")) or receiver.startswith(
            ("shard-", "router")
        ):
            return
        payload = (
            message.to_bytes()
            if hasattr(message, "to_bytes")
            else repr(message).encode("utf-8")
        )
        self.fingerprints.append(
            (sender, receiver, sha256(payload).hex())
        )


def _config(num_sus: int = 3) -> LoadtestConfig:
    return LoadtestConfig(
        seed=7,
        num_requests=NUM_REQUESTS,
        arrivals_per_second=500.0,
        num_sus=num_sus,
        num_pu_switches=0,
        key_bits=256,
        shards=SHARDS,
        service=ServiceConfig(batch_window_s=0.0, max_batch=1),
    )


def _run(traced: bool, num_sus: int = 3):
    scenario = build_scenario(ScenarioConfig(seed=5))
    transport = RecordingTransport()
    tracer = Tracer() if traced else None
    metrics = MetricsRegistry()
    report = run_loadtest(
        _config(num_sus),
        metrics=metrics,
        scenario=scenario,
        tracer=tracer,
        transport=transport,
        clock=lambda: 1_700_000_000.0,
    )
    return report, tracer, metrics, transport


@pytest.fixture(scope="module")
def traced_run():
    return _run(traced=True)


class TestTranscriptNeutrality:
    def test_all_requests_granted(self, traced_run):
        report = traced_run[0]
        assert report.granted == NUM_REQUESTS

    def test_traced_transcript_is_byte_identical(self):
        # Single SU: the closed loop serialises every shared-RNG draw,
        # so the transcript is a pure function of the seeds and the
        # comparison is meaningful (multi-SU runs interleave draws in
        # scheduling-dependent order, traced or not).
        _, _, _, traced_transport = _run(traced=True, num_sus=1)
        _, _, _, untraced_transport = _run(traced=False, num_sus=1)
        assert traced_transport.fingerprints, "no protocol messages captured"
        assert (
            traced_transport.fingerprints == untraced_transport.fingerprints
        )


class TestSpanCoverage:
    REQUIRED_PHASES = ("admission", "batch", "phase1", "stp", "phase2", "license")

    def test_one_root_span_per_request(self, traced_run):
        tracer = traced_run[1]
        assert len(tracer.roots) == NUM_REQUESTS
        assert all(root.name == "request" for root in tracer.roots)

    def test_every_granted_request_covers_all_phases(self, traced_run):
        report, tracer = traced_run[0], traced_run[1]
        granted_sus = [
            d.su_id for d in report.decisions if d.status == "granted"
        ]
        assert granted_sus
        for root in tracer.roots:
            assert root.attributes["status"] == "granted"
            phases = [span.name for span in root.children]
            for required in self.REQUIRED_PHASES:
                assert required in phases, (
                    f"request span missing {required!r}: {phases}"
                )

    def test_scatter_spans_nest_under_both_phases(self, traced_run):
        tracer = traced_run[1]
        for root in tracer.roots:
            for phase_name in ("phase1", "phase2"):
                phase = next(
                    s for s in root.children if s.name == phase_name
                )
                shards = sorted(
                    s.attributes["shard"] for s in phase.children
                )
                assert shards == [f"shard-{i}" for i in range(SHARDS)]

    def test_spans_are_closed_with_durations(self, traced_run):
        tracer = traced_run[1]
        for root in tracer.roots:
            stack = [root]
            while stack:
                span = stack.pop()
                assert span.ended_at is not None, f"{span.name} never ended"
                assert span.duration_s >= 0.0
                stack.extend(span.children)

    def test_traced_runs_share_span_signatures(self, traced_run):
        # A second traced run (fresh tracer, same seeds) produces the
        # same structural span trees — ids and durations differ, shape
        # and statuses don't.
        _, tracer, _, _ = traced_run
        _, second, _, _ = _run(traced=True)
        assert [r.signature() for r in tracer.roots] == [
            r.signature() for r in second.roots
        ]


class TestExposition:
    REQUIRED_FAMILIES = (
        "requests_submitted",     # broker admission
        "requests_granted",       # broker outcomes
        "request_latency_s",      # broker latency histogram
        "cluster_subqueries_total",   # shard scatter plane
        "retry_attempts_total",   # policy engine
        "transport_records_total",    # per-link transfer accounting
        "transport_bytes_total",
    )

    def test_exposition_has_all_families(self, traced_run):
        text = traced_run[2].to_prometheus()
        for family in self.REQUIRED_FAMILIES:
            assert f"# TYPE {family} " in text, f"missing family {family}"

    def test_subquery_counters_match_scatter_volume(self, traced_run):
        snap = traced_run[2].snapshot()["counters"]
        for i in range(SHARDS):
            subqueries = snap[f"cluster_subqueries_total{{shard=shard-{i}}}"]
            # PU enrolment updates route through the same shard-call
            # plane as request scatter, so they count as sub-queries too.
            pu_routed = snap.get(
                f"cluster_pu_updates_routed_total{{shard=shard-{i}}}", 0
            )
            # Each request scatters phase 1 and phase 2 to every shard.
            assert subqueries == 2 * NUM_REQUESTS + pu_routed
