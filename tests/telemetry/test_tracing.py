"""Unit tests for the span tracer."""

import threading

import pytest

from repro.errors import TelemetryError
from repro.telemetry import Span, Tracer, child


class TestSpanIds:
    def test_ids_are_deterministic_for_a_seeded_tracer(self):
        first = Tracer()
        second = Tracer()
        a = first.start_span("request")
        b = second.start_span("request")
        assert a.span_id == b.span_id
        assert a.child("phase1").span_id == b.child("phase1").span_id

    def test_ids_are_unique_within_a_tracer(self):
        tracer = Tracer()
        ids = {tracer.start_span("s").span_id for _ in range(64)}
        assert len(ids) == 64

    def test_id_allocation_is_thread_safe(self):
        tracer = Tracer()
        seen = []

        def spin():
            for _ in range(100):
                seen.append(tracer.start_span("s").span_id)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == 400


class TestSpanTree:
    def test_children_nest_and_parent_ids_link(self):
        tracer = Tracer()
        root = tracer.start_span("request")
        phase = root.child("phase1")
        leaf = phase.child("shard", shard="shard-0")
        assert phase.parent_id == root.span_id
        assert leaf.parent_id == phase.span_id
        assert [s.name for s in root.find("shard")] == ["shard"]

    def test_signature_excludes_ids_durations_attributes(self):
        first = Tracer()
        second = Tracer()
        a = first.start_span("request", su="su-0")
        a.child("phase1", blocks=24).end()
        a.end()
        b = second.start_span("request", su="su-99")
        b.child("phase1", blocks=7).end()
        b.end()
        assert a.signature() == b.signature()

    def test_signature_includes_status(self):
        tracer = Tracer()
        ok = tracer.start_span("op")
        ok.end()
        failed = tracer.start_span("op")
        failed.record_error(ValueError("boom"))
        failed.end()
        assert ok.signature() != failed.signature()
        assert failed.status == "error:ValueError"

    def test_context_manager_ends_and_records_errors(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.start_span("op") as span:
                raise RuntimeError("boom")
        assert span.ended_at is not None
        assert span.status == "error:RuntimeError"

    def test_to_dict_and_render(self):
        tracer = Tracer()
        root = tracer.start_span("request", su="su-0")
        root.child("phase1").end()
        root.end()
        as_dict = root.to_dict()
        assert as_dict["name"] == "request"
        assert as_dict["children"][0]["name"] == "phase1"
        rendered = tracer.render()
        assert "request" in rendered and "phase1" in rendered


class TestAttributeHygiene:
    def test_secret_named_attribute_rejected(self):
        tracer = Tracer()
        with pytest.raises(TelemetryError):
            tracer.start_span("op", sk=1)
        span = tracer.start_span("op")
        with pytest.raises(TelemetryError):
            span.set_attribute("alpha", 2)

    def test_huge_int_attribute_rejected(self):
        span = Tracer().start_span("op")
        with pytest.raises(TelemetryError):
            span.set_attribute("value", 1 << 64)
        span.set_attribute("value", 123)  # ordinary ints are fine


class TestHelpers:
    def test_child_helper_tolerates_none(self):
        assert child(None, "phase1") is None
        root = Tracer().start_span("request")
        assert child(root, "phase1").name == "phase1"

    def test_phase_latency_aggregates_by_name(self):
        ticks = iter(float(i) for i in range(100))
        tracer = Tracer(clock=lambda: next(ticks))
        root = tracer.start_span("request")
        root.child("phase1").end()
        root.child("phase1").end()
        root.end()
        stats = tracer.phase_latency()
        assert stats["phase1"]["count"] == 2
        assert stats["request"]["count"] == 1
        assert stats["phase1"]["mean_s"] > 0

    def test_span_is_slotted(self):
        span = Tracer().start_span("op")
        assert not hasattr(span, "__dict__")
        assert isinstance(span, Span)
