"""Unit tests for timers, phase profiles, and cProfile capture."""

import pytest

from repro.telemetry import ProfileCapture, Timer, percentile, phase_profile


class TestPercentile:
    def test_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 100) == 100.0

    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0


class TestTimer:
    def _ticking(self, *durations):
        ticks = []
        now = 0.0
        for d in durations:
            ticks.extend([now, now + d])
            now += d
        it = iter(ticks)
        return Timer(name="t", clock=lambda: next(it))

    def test_laps_accumulate(self):
        timer = self._ticking(1.0, 3.0)
        with timer.lap():
            pass
        with timer.lap():
            pass
        assert timer.count == 2
        assert timer.total_s == pytest.approx(4.0)
        assert timer.mean_s == pytest.approx(2.0)
        assert timer.min_s == pytest.approx(1.0)
        assert timer.max_s == pytest.approx(3.0)

    def test_time_returns_result(self):
        timer = self._ticking(0.5)
        assert timer.time(lambda: "ok") == "ok"
        assert timer.count == 1

    def test_reset_discards_laps(self):
        timer = self._ticking(1.0, 2.0)
        with timer.lap():
            pass
        timer.reset()
        assert timer.count == 0
        with timer.lap():
            pass
        assert timer.total_s == pytest.approx(2.0)

    def test_summary_keys(self):
        timer = self._ticking(1.0)
        with timer.lap():
            pass
        summary = timer.summary()
        for key in ("count", "total_s", "mean_s", "min_s", "max_s", "p50_s", "p95_s"):
            assert key in summary


class TestPhaseProfile:
    def test_profiles_every_phase(self):
        ticks = iter(float(i) for i in range(100))
        result = phase_profile(
            {"a": lambda: None, "b": lambda: None},
            rounds=3,
            clock=lambda: next(ticks),
        )
        assert set(result) == {"a", "b"}
        assert result["a"]["count"] == 3

    def test_rejects_nonpositive_rounds(self):
        with pytest.raises(ValueError):
            phase_profile({"a": lambda: None}, rounds=0)


class TestProfileCapture:
    def test_capture_and_report(self):
        capture = ProfileCapture()
        with capture.capture():
            sum(range(1000))
        with capture.capture():
            sum(range(1000))
        assert capture.captures == 2
        report = capture.report(limit=5)
        assert "cumulative" in report or "function calls" in report
