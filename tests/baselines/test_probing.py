"""Tests for the probing attack and the breach comparison."""

import pytest

from repro.baselines.probing import ProbingAttack, sdc_breach_view
from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.protocol import PisaCoordinator
from repro.watch.sdc import PlaintextSDC
from repro.watch.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def attack_scenario():
    return build_scenario(ScenarioConfig(
        seed=5, grid_rows=6, grid_cols=6, num_channels=3,
        num_towers=2, num_pus=3, num_sus=0,
    ))


@pytest.fixture(scope="module")
def oracle(attack_scenario):
    sdc = PlaintextSDC(attack_scenario.environment)
    for pu in attack_scenario.pus:
        sdc.pu_update(pu)

    def decide(su, channel):
        return sdc.process_request(su, channels=[channel]).granted

    return decide


class TestProbingSweep:
    def test_recovers_active_pus(self, attack_scenario, oracle):
        """The §II threat is real: decisions leak PU cells."""
        attack = ProbingAttack(attack_scenario.environment, oracle,
                               probe_power_dbm=10.0)
        report = attack.sweep(attack_scenario.pus)
        assert report.recall == 1.0  # every active PU cell flagged
        # Denial clusters include neighbours, so precision < 1 but the
        # inferred set must stay local (not the whole grid).
        env = attack_scenario.environment
        assert len(report.inferred_cells) < env.num_channels * env.num_blocks / 2

    def test_probe_budget(self, attack_scenario, oracle):
        attack = ProbingAttack(attack_scenario.environment, oracle)
        report = attack.sweep(attack_scenario.pus)
        env = attack_scenario.environment
        assert report.probes_used == env.num_channels * env.num_blocks

    def test_no_pus_nothing_inferred(self, attack_scenario):
        sdc = PlaintextSDC(attack_scenario.environment)

        def decide(su, channel):
            return sdc.process_request(su, channels=[channel]).granted

        attack = ProbingAttack(attack_scenario.environment, decide,
                               probe_power_dbm=10.0)
        report = attack.sweep([])
        assert report.inferred_cells == frozenset()
        assert report.recall == 1.0


class TestBreachComparison:
    def test_watch_breach_recovers_channel(self, attack_scenario):
        result = sdc_breach_view(
            attack_scenario.environment, attack_scenario.pus
        )
        assert result["watch"] == 1.0

    def test_pisa_breach_is_a_guess(self, attack_scenario):
        """Over many deployments the ciphertext 'attack' hits ≈1/C."""
        hits = 0
        trials = 8
        for seed in range(trials):
            coordinator = PisaCoordinator(
                attack_scenario.environment,
                key_bits=192,
                rng=DeterministicRandomSource(f"breach-{seed}"),
            )
            for pu in attack_scenario.pus:
                coordinator.enroll_pu(pu)
            result = sdc_breach_view(
                attack_scenario.environment, attack_scenario.pus,
                coordinator=coordinator,
            )
            hits += result["pisa"]
            assert result["pisa_baseline"] == pytest.approx(1 / 3)
        # 8 trials at p = 1/3: P[hits = 8] ≈ 1.5e-4; require non-perfect.
        assert hits < trials
