"""Unit and property tests for the bitwise secure-comparison baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.securecmp import SecureComparisonProtocol
from repro.crypto.paillier import generate_keypair
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import BlindingError, ProtocolError

VALUE_BITS = 20

_KEYPAIR = generate_keypair(256, rng=DeterministicRandomSource("securecmp"))


@pytest.fixture()
def protocol(fresh_rng):
    return SecureComparisonProtocol(
        _KEYPAIR, value_bits=VALUE_BITS, kappa=20, rng=fresh_rng
    )


class TestCorrectness:
    @pytest.mark.parametrize(
        "value", [-(2**VALUE_BITS) + 1, -1000, -1, 0, 1, 999, 2**VALUE_BITS - 1]
    )
    def test_boundary_values(self, protocol, fresh_rng, value):
        ct = _KEYPAIR.public_key.encrypt(value, rng=fresh_rng)
        assert protocol.is_non_positive(ct) == (value <= 0)

    @settings(max_examples=15, deadline=None)
    @given(value=st.integers(min_value=-(2**VALUE_BITS) + 1, max_value=2**VALUE_BITS - 1))
    def test_random_values(self, value):
        rng = DeterministicRandomSource(value & 0xFFFFFF)
        protocol = SecureComparisonProtocol(
            _KEYPAIR, value_bits=VALUE_BITS, kappa=20, rng=rng
        )
        ct = _KEYPAIR.public_key.encrypt(value, rng=rng)
        assert protocol.is_non_positive(ct) == (value <= 0)


class TestValidation:
    def test_key_too_small_rejected(self, fresh_rng):
        small = generate_keypair(64, rng=fresh_rng)
        with pytest.raises(BlindingError):
            SecureComparisonProtocol(small, value_bits=40, kappa=40)

    def test_foreign_ciphertext_rejected(self, protocol, fresh_rng):
        other = generate_keypair(256, rng=fresh_rng)
        ct = other.public_key.encrypt(1, rng=fresh_rng)
        with pytest.raises(ProtocolError):
            protocol.is_non_positive(ct)


class TestCostAccounting:
    def test_bitwise_costs_dominate(self, protocol, fresh_rng):
        """The ablation's point: Θ(ℓ) encryptions/decryptions per compare."""
        ct = _KEYPAIR.public_key.encrypt(5, rng=fresh_rng)
        protocol.is_non_positive(ct)
        stats = protocol.stats
        assert stats.comparisons == 1
        # ℓ = value_bits + κ + 1 = 41 bits → ≥ 41 encryptions and 42 decryptions.
        assert stats.encryptions >= protocol.bit_length
        assert stats.decryptions >= protocol.bit_length + 1
        assert stats.communication_legs == 3  # vs PISA's single leg
        assert stats.bytes_transferred > 0

    def test_costs_accumulate(self, protocol, fresh_rng):
        for value in (1, -1, 5):
            protocol.is_non_positive(_KEYPAIR.public_key.encrypt(value, rng=fresh_rng))
        assert protocol.stats.comparisons == 3
        assert protocol.stats.communication_legs == 9
