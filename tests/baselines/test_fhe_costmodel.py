"""Unit tests for the FHE cost model."""

import pytest

from repro.baselines.fhe_costmodel import (
    GHS_MB_PER_BLOCK,
    GHS_SECONDS_PER_BLOCK,
    FheCostModel,
)
from repro.errors import ConfigurationError


class TestBlocks:
    def test_exact_division(self):
        model = FheCostModel()
        # 100 channels × 600 blocks × 60 bits / 128 = 28125 blocks.
        assert model.blocks_for_matrix(100, 600, 60) == 28_125

    def test_rounds_up(self):
        model = FheCostModel()
        assert model.blocks_for_matrix(1, 1, 1) == 1
        assert model.blocks_for_matrix(1, 1, 129) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FheCostModel().blocks_for_matrix(0, 1, 1)


class TestEstimates:
    def test_paper_scale_is_impractical(self):
        """The point of §VI-A's comparison: generic FHE takes days/TBs."""
        est = FheCostModel().estimate_request(100, 600, 60)
        assert est.time_hours > 24  # vs PISA's ≈4 min processing
        assert est.memory_mb > 100_000  # hundreds of GB

    def test_linear_in_cells(self):
        model = FheCostModel()
        small = model.estimate_request(10, 60, 60)
        large = model.estimate_request(100, 60, 60)
        assert large.time_seconds == pytest.approx(10 * small.time_seconds, rel=0.01)

    def test_constants_from_citation(self):
        est = FheCostModel().estimate_request(1, 1, 128)
        assert est.time_seconds == pytest.approx(GHS_SECONDS_PER_BLOCK)
        assert est.memory_mb == pytest.approx(GHS_MB_PER_BLOCK)

    def test_custom_constants(self):
        est = FheCostModel(seconds_per_block=1.0, mb_per_block=2.0).estimate_request(
            1, 1, 128
        )
        assert est.time_seconds == 1.0
        assert est.memory_mb == 2.0

    def test_constant_validation(self):
        with pytest.raises(ConfigurationError):
            FheCostModel(seconds_per_block=0.0)
