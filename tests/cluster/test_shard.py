"""Unit tests for the per-partition SDC shard worker."""

import pytest

from repro.cluster.shard import SdcShard
from repro.errors import ProtocolError, SerializationError, ShardDownError
from repro.pisa.storage import restore_shard_state, serialize_shard_state


def make_shard(small_scenario, keypair, blocks=(), shard_id="shard-0"):
    return SdcShard(
        shard_id,
        small_scenario.environment,
        keypair.public_key,
        blocks=tuple(blocks),
    )


class TestOwnership:
    def test_assign_and_release(self, small_scenario, keypair):
        shard = make_shard(small_scenario, keypair)
        shard.assign_blocks((3, 1, 2))
        assert shard.blocks == (1, 2, 3)
        assert shard.owns(2)
        shard.release_blocks((2,))
        assert not shard.owns(2)
        assert shard.blocks == (1, 3)

    def test_update_for_unowned_block_rejected(
        self, small_scenario, keypair, pu_updates
    ):
        update = pu_updates[0]
        blocks = set(range(small_scenario.environment.num_blocks))
        blocks.discard(update.block_index)
        shard = make_shard(small_scenario, keypair, blocks=blocks)
        with pytest.raises(ProtocolError, match="does not own"):
            shard.handle_pu_update(update)

    def test_update_for_owned_block_accepted(
        self, small_scenario, keypair, pu_updates
    ):
        update = pu_updates[0]
        shard = make_shard(small_scenario, keypair, blocks=(update.block_index,))
        shard.handle_pu_update(update)
        assert shard.num_tracked_pus == 1
        assert shard.pus_on_blocks((update.block_index,)) == (update.pu_id,)


class TestPuState:
    def test_remove_pu_returns_its_update(
        self, small_scenario, keypair, pu_updates
    ):
        update = pu_updates[0]
        shard = make_shard(small_scenario, keypair, blocks=(update.block_index,))
        shard.handle_pu_update(update)
        removed = shard.remove_pu(update.pu_id)
        assert removed is not None
        assert removed.pu_id == update.pu_id
        assert removed.block_index == update.block_index
        assert shard.num_tracked_pus == 0

    def test_remove_unknown_pu_is_noop(self, small_scenario, keypair):
        shard = make_shard(small_scenario, keypair)
        assert shard.remove_pu("nobody") is None

    def test_resubmitted_update_replaces_previous(
        self, small_scenario, keypair, pu_updates
    ):
        update = pu_updates[0]
        shard = make_shard(small_scenario, keypair, blocks=(update.block_index,))
        shard.handle_pu_update(update)
        shard.handle_pu_update(update)
        assert shard.num_tracked_pus == 1
        # ⊖ old ⊕ new leaves the aggregate describing exactly one update.
        messages = shard.pu_update_messages()
        assert len(messages) == 1


class TestLifecycle:
    def test_killed_shard_raises_on_every_entry_point(
        self, small_scenario, keypair, pu_updates
    ):
        update = pu_updates[0]
        shard = make_shard(small_scenario, keypair, blocks=(update.block_index,))
        shard.kill()
        with pytest.raises(ShardDownError):
            shard.handle_pu_update(update)
        with pytest.raises(ShardDownError):
            shard.commit_epoch(0)

    def test_commit_epoch_watermark_is_monotone(self, small_scenario, keypair):
        shard = make_shard(small_scenario, keypair)
        assert shard.last_committed_epoch == -1
        shard.commit_epoch(2)
        shard.commit_epoch(1)  # stale commit must not regress
        assert shard.last_committed_epoch == 2


class TestSnapshotRoundTrip:
    def test_round_trip_restores_blocks_epoch_and_pu_state(
        self, small_scenario, keypair, pu_updates
    ):
        blocks = tuple(sorted({u.block_index for u in pu_updates} | {0, 7}))
        shard = make_shard(small_scenario, keypair, blocks=blocks)
        for update in pu_updates:
            shard.handle_pu_update(update)
        shard.commit_epoch(4)

        blob = serialize_shard_state(shard)
        restored = make_shard(small_scenario, keypair)
        epoch = restore_shard_state(restored, blob)

        assert epoch == 4
        assert restored.last_committed_epoch == 4
        assert restored.blocks == shard.blocks
        assert restored.num_tracked_pus == shard.num_tracked_pus
        # The replayed aggregate matches ciphertext for ciphertext.
        assert [m.to_bytes() for m in restored.pu_update_messages()] == [
            m.to_bytes() for m in shard.pu_update_messages()
        ]

    def test_serialization_is_deterministic(
        self, small_scenario, keypair, pu_updates
    ):
        shard = make_shard(
            small_scenario,
            keypair,
            blocks=tuple(range(small_scenario.environment.num_blocks)),
        )
        for update in pu_updates:
            shard.handle_pu_update(update)
        assert serialize_shard_state(shard) == serialize_shard_state(shard)

    def test_restore_refuses_wrong_shard_id(
        self, small_scenario, keypair
    ):
        shard = make_shard(small_scenario, keypair, blocks=(0,), shard_id="a")
        blob = serialize_shard_state(shard)
        other = make_shard(small_scenario, keypair, shard_id="b")
        with pytest.raises(SerializationError):
            restore_shard_state(other, blob)

    def test_restore_refuses_nonempty_target(
        self, small_scenario, keypair, pu_updates
    ):
        update = pu_updates[0]
        shard = make_shard(small_scenario, keypair, blocks=(update.block_index,))
        blob = serialize_shard_state(shard)
        target = make_shard(small_scenario, keypair, blocks=(update.block_index,))
        target.handle_pu_update(update)
        with pytest.raises(SerializationError):
            restore_shard_state(target, blob)

    def test_restore_refuses_garbage(self, small_scenario, keypair):
        target = make_shard(small_scenario, keypair)
        with pytest.raises(SerializationError):
            restore_shard_state(target, b"not a snapshot")

    def test_restore_refuses_trailing_bytes(
        self, small_scenario, keypair
    ):
        shard = make_shard(small_scenario, keypair, blocks=(0,))
        blob = serialize_shard_state(shard) + b"\x00"
        target = make_shard(small_scenario, keypair)
        with pytest.raises(SerializationError):
            restore_shard_state(target, blob)
