"""Unit tests for scatter-gather routing, retries, and failover.

The router is exercised against real (tiny) shards via a
:class:`~repro.cluster.ClusterCoordinator`, plus a few direct
constructions where the scenario-free surface suffices.
"""

import pytest

from repro.cluster.membership import ClusterMembership
from repro.cluster.replica import ShardReplicaSet
from repro.cluster.router import ShardRouter
from repro.cluster.shard import SdcShard
from repro.errors import ClusterError, ShardDownError
from repro.net.transport import MultiplexedTransport

from tests.cluster.conftest import build_cluster


@pytest.fixture()
def cluster():
    _, coordinator = build_cluster(num_shards=2, num_sus=1)
    yield coordinator
    coordinator.close()


def make_router(small_scenario, keypair, shard_ids=("a", "b"), **kwargs):
    membership = ClusterMembership(tuple(shard_ids))
    replica_sets = {}
    for shard_id in shard_ids:
        replica_sets[shard_id] = ShardReplicaSet(
            shard_id,
            shard_factory=lambda role, sid=shard_id: SdcShard(
                sid, small_scenario.environment, keypair.public_key
            ),
        )
    assignment = membership.ring.assignment(
        tuple(range(small_scenario.environment.num_blocks))
    )
    for shard_id, blocks in assignment.items():
        replica_sets[shard_id].assign_blocks(blocks)
    return ShardRouter(membership, replica_sets, **kwargs)


class TestPlacement:
    def test_split_columns_partitions_the_request(self, cluster):
        blocks = tuple(range(cluster.environment.num_blocks))
        split = cluster.router.split_columns(blocks)
        seen = sorted(k for cols in split.values() for k in cols)
        assert seen == list(range(len(blocks)))
        ring = cluster.membership.ring
        for shard_id, cols in split.items():
            assert cols == tuple(sorted(cols))
            for k in cols:
                assert ring.node_for(blocks[k]) == shard_id

    def test_split_skips_shards_without_disclosed_blocks(self, cluster):
        ring = cluster.membership.ring
        # Pick one block owned by shard-0 only.
        block = next(
            b
            for b in range(cluster.environment.num_blocks)
            if ring.node_for(b) == "shard-0"
        )
        split = cluster.router.split_columns((block,))
        assert split == {"shard-0": (0,)}


class TestPuRouting:
    def test_update_lands_on_owning_shard_and_both_replicas(
        self, small_scenario, keypair, pu_updates
    ):
        router = make_router(small_scenario, keypair)
        try:
            update = pu_updates[0]
            owner = router.membership.ring.node_for(update.block_index)
            routed_to = router.route_pu_update(update)
            assert routed_to == owner
            replica_set = router.replica_set(owner)
            assert replica_set.primary.num_tracked_pus == 1
            assert replica_set.standby.num_tracked_pus == 1
            assert router.stats.pu_updates_routed == 1
        finally:
            router.close()


class TestFailover:
    def test_dead_primary_is_promoted_and_retried(
        self, small_scenario, keypair, pu_updates
    ):
        router = make_router(small_scenario, keypair)
        try:
            update = pu_updates[0]
            owner = router.membership.ring.node_for(update.block_index)
            router.replica_set(owner).kill_primary()
            router.route_pu_update(update)
            assert router.stats.failovers == 1
            assert router.stats.subquery_failures == 1
            assert router.replica_set(owner).primary.alive
        finally:
            router.close()

    def test_retries_are_bounded(self, small_scenario, keypair):
        router = make_router(small_scenario, keypair, max_attempts=2)
        try:

            def always_down(primary, request):
                raise ShardDownError("injected")

            with pytest.raises(ShardDownError, match="failed 2 attempts"):
                router._call_shard("a", object(), always_down)
            # Promotion happened between the two attempts.
            assert router.stats.subquery_failures == 2
            assert router.stats.failovers == 1
        finally:
            router.close()

    def test_unrecoverable_shard_fails_loudly(
        self, small_scenario, keypair, pu_updates
    ):
        router = make_router(small_scenario, keypair, max_attempts=2)
        try:
            update = pu_updates[0]
            owner = router.membership.ring.node_for(update.block_index)
            replica_set = router.replica_set(owner)
            # Both replicas dead: there is nothing left to promote.
            replica_set.kill_primary()
            replica_set.standby.kill()
            with pytest.raises(ShardDownError, match="cannot be recovered"):
                router.route_pu_update(update)
        finally:
            router.close()

    def test_cut_wire_counts_as_shard_failure(
        self, small_scenario, keypair, pu_updates
    ):
        transport = MultiplexedTransport()
        router = make_router(small_scenario, keypair, transport=transport)
        try:
            update = pu_updates[0]
            owner = router.membership.ring.node_for(update.block_index)
            transport.fail_endpoint(owner)
            router.route_pu_update(update)
            # Recovery restored the endpoint along with the promotion.
            assert router.stats.failovers == 1
            assert transport.link_is_up("router", owner)
        finally:
            router.close()

    def test_check_liveness_promotes_idle_crashed_shard(
        self, small_scenario, keypair
    ):
        router = make_router(small_scenario, keypair)
        try:
            replica_set = router.replica_set("a")
            replica_set.kill_primary()
            later = replica_set.heartbeat_age() + 10.0
            promoted = router.check_liveness(now=later)
            assert promoted == ("a",)
            assert router.replica_set("a").primary.alive
        finally:
            router.close()


class TestTransportAccounting:
    def test_subqueries_are_accounted_per_link(
        self, small_scenario, keypair, pu_updates
    ):
        transport = MultiplexedTransport()
        router = make_router(small_scenario, keypair, transport=transport)
        try:
            update = pu_updates[0]
            owner = router.route_pu_update(update)
            senders = {(r.sender, r.receiver) for r in transport.records}
            assert ("router", owner) in senders
            assert (owner, "router") in senders
        finally:
            router.close()


class TestAdministration:
    def test_unknown_shard_rejected(self, small_scenario, keypair):
        router = make_router(small_scenario, keypair)
        try:
            with pytest.raises(ClusterError):
                router.replica_set("ghost")
        finally:
            router.close()

    def test_invalid_max_attempts_rejected(self, small_scenario, keypair):
        with pytest.raises(ClusterError):
            make_router(small_scenario, keypair, max_attempts=0)

    def test_commit_epoch_reaches_every_shard(self, small_scenario, keypair):
        router = make_router(small_scenario, keypair)
        try:
            router.commit_epoch(7)
            for shard_id in router.shard_ids:
                replica_set = router.replica_set(shard_id)
                assert replica_set.primary.last_committed_epoch == 7
                assert replica_set.standby.last_committed_epoch == 7
                latest = replica_set.snapshots.latest(shard_id)
                assert latest is not None and latest[0] == 7
        finally:
            router.close()
