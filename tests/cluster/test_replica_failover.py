"""Unit tests for replica sets, snapshots, heartbeats, and promotion."""

import pytest

from repro.cluster.replica import ShardReplicaSet, SnapshotStore
from repro.cluster.shard import SdcShard
from repro.errors import ClusterError


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture()
def replica_set(small_scenario, keypair):
    clock = FakeClock()

    def factory(role: str) -> SdcShard:
        return SdcShard("shard-0", small_scenario.environment, keypair.public_key)

    rs = ShardReplicaSet(
        "shard-0",
        shard_factory=factory,
        snapshots=SnapshotStore(),
        heartbeat_timeout_s=1.0,
        clock=clock,
    )
    rs.clock = clock  # test handle
    return rs


class TestMirroring:
    def test_updates_land_on_both_replicas(self, replica_set, pu_updates):
        replica_set.assign_blocks(
            tuple({u.block_index for u in pu_updates})
        )
        for update in pu_updates:
            replica_set.apply_pu_update(update)
        assert replica_set.primary.num_tracked_pus == len(pu_updates)
        assert replica_set.standby.num_tracked_pus == len(pu_updates)

    def test_block_fanout(self, replica_set):
        replica_set.assign_blocks((1, 2))
        assert replica_set.primary.blocks == (1, 2)
        assert replica_set.standby.blocks == (1, 2)
        replica_set.release_blocks((1,))
        assert replica_set.primary.blocks == (2,)
        assert replica_set.standby.blocks == (2,)

    def test_commit_epoch_snapshots_the_primary(self, replica_set):
        replica_set.assign_blocks((0,))
        replica_set.commit_epoch(3)
        latest = replica_set.snapshots.latest("shard-0")
        assert latest is not None
        assert latest[0] == 3
        assert replica_set.standby.last_committed_epoch == 3


class TestHeartbeats:
    def test_fresh_set_is_alive(self, replica_set):
        assert replica_set.is_alive()

    def test_stale_heartbeat_marks_dead(self, replica_set):
        replica_set.clock.advance(5.0)
        assert not replica_set.is_alive()
        replica_set.record_heartbeat()
        assert replica_set.is_alive()

    def test_killed_primary_is_dead_despite_heartbeat(self, replica_set):
        replica_set.record_heartbeat()
        replica_set.kill_primary()
        assert not replica_set.is_alive()


class TestPromotion:
    def test_promote_swaps_standby_in(self, replica_set, pu_updates):
        replica_set.assign_blocks(
            tuple({u.block_index for u in pu_updates})
        )
        for update in pu_updates:
            replica_set.apply_pu_update(update)
        old_standby = replica_set.standby
        replica_set.kill_primary()
        event = replica_set.promote()
        assert replica_set.primary is old_standby
        assert replica_set.primary.alive
        assert replica_set.is_alive()
        assert event.shard_id == "shard-0"
        assert replica_set.failovers == [event]

    def test_promote_uses_snapshot_when_current(self, replica_set, pu_updates):
        replica_set.assign_blocks(
            tuple({u.block_index for u in pu_updates})
        )
        for update in pu_updates:
            replica_set.apply_pu_update(update)
        replica_set.commit_epoch(0)
        replica_set.kill_primary()
        event = replica_set.promote()
        assert event.from_snapshot
        assert event.resumed_epoch == 0
        # The rebuilt standby replayed the snapshot's PU state.
        assert replica_set.standby.num_tracked_pus == len(pu_updates)
        assert replica_set.standby.blocks == replica_set.primary.blocks

    def test_promote_warm_mirrors_without_snapshot(
        self, replica_set, pu_updates
    ):
        replica_set.assign_blocks(
            tuple({u.block_index for u in pu_updates})
        )
        for update in pu_updates:
            replica_set.apply_pu_update(update)
        replica_set.kill_primary()
        event = replica_set.promote()
        assert not event.from_snapshot
        assert replica_set.standby.num_tracked_pus == len(pu_updates)

    def test_promote_without_live_standby_fails(self, replica_set):
        replica_set.kill_primary()
        replica_set.standby.kill()
        with pytest.raises(ClusterError):
            replica_set.promote()

    def test_double_failover_survives(self, replica_set, pu_updates):
        replica_set.assign_blocks(
            tuple({u.block_index for u in pu_updates})
        )
        for update in pu_updates:
            replica_set.apply_pu_update(update)
        replica_set.commit_epoch(0)
        for _ in range(2):
            replica_set.kill_primary()
            replica_set.promote()
        assert len(replica_set.failovers) == 2
        assert replica_set.primary.alive
        assert replica_set.primary.num_tracked_pus == len(pu_updates)


class TestSnapshotStore:
    def test_keeps_latest_epoch(self, small_scenario, keypair):
        store = SnapshotStore()
        shard = SdcShard(
            "s", small_scenario.environment, keypair.public_key, blocks=(0,)
        )
        shard.commit_epoch(1)
        store.save(shard)
        shard.commit_epoch(5)
        store.save(shard)
        latest = store.latest("s")
        assert latest is not None and latest[0] == 5
        assert store.snapshots_taken == 2

    def test_unknown_shard_has_no_snapshot(self):
        assert SnapshotStore().latest("missing") is None
