"""Transcript equivalence: N-shard cluster ≡ one SDC, byte for byte.

The sharded plane must be an *implementation detail*: for the same seed
and the same scenario, every protocol message an SU or the STP sees —
and every decision — must be identical whether the SDC runs as one
server or as a 4-shard cluster.  The cluster draws all randomness
centrally in single-SDC cell order and shards do only deterministic
homomorphic arithmetic, so equality holds at the byte level, not merely
in distribution.
"""

import pytest

from tests.cluster.conftest import build_cluster, build_single, run_round

NUM_ROUNDS = 3


@pytest.fixture(scope="module")
def paired_transcripts():
    """The same fixed-seed session run through both deployments.

    Each session interleaves license rounds with a PU channel switch, so
    the routed-update path is part of the compared transcript too.
    """
    records = {}
    coordinators = {}
    for name, (scenario, coordinator) in (
        ("single", build_single()),
        ("cluster", build_cluster(num_shards=4)),
    ):
        rounds = []
        for i in range(NUM_ROUNDS):
            su_id = scenario.sus[i % 2].su_id
            rounds.append(run_round(coordinator, su_id))
            if i == 0:
                pu_id = scenario.pus[0].receiver_id
                coordinator.pu_switch_channel(pu_id, 1, signal_strength_mw=2.0)
        records[name] = rounds
        coordinators[name] = coordinator
    yield records, coordinators
    coordinators["cluster"].close()


class TestTranscriptEquality:
    def test_requests_identical(self, paired_transcripts):
        records, _ = paired_transcripts
        for single, cluster in zip(records["single"], records["cluster"]):
            assert single["request"] == cluster["request"]

    def test_blinded_v_matrices_identical(self, paired_transcripts):
        """The scatter-gathered Ṽ equals the single SDC's, cell for cell."""
        records, _ = paired_transcripts
        for single, cluster in zip(records["single"], records["cluster"]):
            assert single["sign_request"] == cluster["sign_request"]

    def test_stp_conversions_identical(self, paired_transcripts):
        records, _ = paired_transcripts
        for single, cluster in zip(records["single"], records["cluster"]):
            assert single["sign_response"] == cluster["sign_response"]

    def test_license_responses_identical(self, paired_transcripts):
        records, _ = paired_transcripts
        for single, cluster in zip(records["single"], records["cluster"]):
            assert single["response"] == cluster["response"]

    def test_decisions_identical(self, paired_transcripts):
        records, _ = paired_transcripts
        decisions = {
            name: [r["granted"] for r in rounds]
            for name, rounds in records.items()
        }
        assert decisions["single"] == decisions["cluster"]

    def test_merged_q_sum_ciphertext_identical(self, paired_transcripts):
        """hom-merging per-shard ΣQ̃ partials reproduces the exact ciphertext."""
        records, _ = paired_transcripts
        for single, cluster in zip(records["single"], records["cluster"]):
            assert single["q_sum"].ciphertext == cluster["q_sum"].ciphertext

    def test_merged_q_sum_plaintext_identical(self, paired_transcripts):
        # ΣQ̃ lives under the requesting SU's personal key (the converted
        # X̃ cells do), so each SU decrypts its own round's merge.
        records, coordinators = paired_transcripts
        for single, cluster in zip(records["single"], records["cluster"]):
            key_single = coordinators["single"].su_client(
                single["su_id"]
            ).keypair.private_key
            key_cluster = coordinators["cluster"].su_client(
                cluster["su_id"]
            ).keypair.private_key
            assert key_single.decrypt(single["q_sum"]) == key_cluster.decrypt(
                cluster["q_sum"]
            )


class TestClusterShape:
    def test_every_shard_served_subqueries(self, paired_transcripts):
        _, coordinators = paired_transcripts
        cluster = coordinators["cluster"]
        assert len(cluster.router.shard_ids) == 4
        # 3 rounds × 2 phases × up-to-4 shards; at minimum each shard
        # that owns disclosed blocks was hit every round.
        assert cluster.router.stats.subqueries >= 2 * NUM_ROUNDS

    def test_blocks_partition_across_shards(self, paired_transcripts):
        _, coordinators = paired_transcripts
        cluster = coordinators["cluster"]
        owned = []
        for shard_id in cluster.router.shard_ids:
            owned.extend(cluster.replica_sets[shard_id].blocks)
        assert sorted(owned) == list(range(cluster.environment.num_blocks))
