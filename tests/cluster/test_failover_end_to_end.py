"""End-to-end failover and membership churn under protocol traffic.

The strongest property the replica layer can offer: killing a primary
mid-epoch, or handing blocks off to a joining/leaving shard, does not
perturb the protocol transcript *at all* — every message stays
byte-identical to the single-SDC run, because recovery only ever swaps
in state mirrors and never touches randomness.
"""

import pytest

from tests.cluster.conftest import build_cluster, build_single, run_round


@pytest.fixture()
def pair():
    _, single = build_single()
    scenario, cluster = build_cluster(num_shards=2)
    yield scenario, single, cluster
    cluster.close()


class TestMidEpochFailover:
    def test_kill_mid_round_completes_with_identical_transcript(self, pair):
        scenario, single, cluster = pair
        su_id = scenario.sus[0].su_id

        # Round 0 establishes a committed epoch + snapshot to recover to.
        baseline = run_round(single, su_id)
        clustered = run_round(cluster, su_id)
        assert baseline["response"] == clustered["response"]
        cluster.sdc.commit_epoch(0)

        # Round 1 on the single SDC, straight through.
        expected = run_round(single, su_id)

        # Round 1 on the cluster: the primary dies *between* phase 1 and
        # phase 2 — the in-flight round must complete via the standby.
        client = cluster.su_client(su_id)
        request = client.prepare_request()
        sign_request = cluster.sdc.start_request(request)
        victim = cluster.router.shard_ids[0]
        cluster.kill_shard(victim)
        sign_response = cluster.stp.handle_sign_extraction(sign_request)
        response = cluster.sdc.finish_request(sign_response)
        outcome = client.process_response(response, cluster.stp.directory)

        assert request.to_bytes() == expected["request"]
        assert sign_request.to_bytes() == expected["sign_request"]
        assert response.to_bytes() == expected["response"]
        assert outcome.granted == expected["granted"]
        assert cluster.router.stats.failovers >= 1

    def test_failover_event_recovers_committed_epoch(self, pair):
        scenario, _, cluster = pair
        su_id = scenario.sus[0].su_id
        run_round(cluster, su_id)
        cluster.sdc.commit_epoch(0)
        victim = cluster.router.shard_ids[0]
        cluster.kill_shard(victim)
        run_round(cluster, su_id)  # triggers promotion via retry
        events = cluster.replica_sets[victim].failovers
        assert len(events) == 1
        assert events[0].resumed_epoch == 0
        assert events[0].from_snapshot


class TestMembershipChurn:
    def test_join_and_leave_preserve_transcript_equality(self, pair):
        scenario, single, cluster = pair
        su_ids = [su.su_id for su in scenario.sus[:2]]

        assert (
            run_round(single, su_ids[0])["response"]
            == run_round(cluster, su_ids[0])["response"]
        )

        plan = cluster.join_shard("shard-new")
        assert plan.blocks_moved > 0
        assert cluster.membership.is_active("shard-new")
        assert (
            run_round(single, su_ids[1])["response"]
            == run_round(cluster, su_ids[1])["response"]
        )

        plan = cluster.leave_shard("shard-new")
        assert plan.blocks_moved > 0
        assert not cluster.membership.is_active("shard-new")
        assert "shard-new" not in cluster.router.shard_ids
        assert (
            run_round(single, su_ids[0])["response"]
            == run_round(cluster, su_ids[0])["response"]
        )

    def test_handoff_moves_pu_state_with_the_blocks(self, pair):
        scenario, _, cluster = pair
        tracked_before = sum(
            cluster.replica_sets[sid].primary.num_tracked_pus
            for sid in cluster.router.shard_ids
        )
        assert tracked_before == len(scenario.pus)
        cluster.join_shard("shard-new")
        tracked_after = sum(
            cluster.replica_sets[sid].primary.num_tracked_pus
            for sid in cluster.router.shard_ids
        )
        assert tracked_after == tracked_before
