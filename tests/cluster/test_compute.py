"""Unit tests for the per-shard dedicated worker process."""

import pytest

from repro.cluster.compute import DedicatedProcessExecutor
from repro.crypto.parallel import SerialExecutor


@pytest.fixture(scope="module")
def executor():
    with DedicatedProcessExecutor() as exe:
        exe.warm_up()
        yield exe


class TestDedicatedProcessExecutor:
    def test_matches_serial_executor(self, executor):
        jobs = [(3, 5, 1009), (2, 64, 97), (7, 0, 13), (10, 3, 1_000_003)]
        assert executor.pow_many(jobs) == SerialExecutor().pow_many(jobs)

    def test_small_batches_still_ship_to_the_worker(self, executor):
        """Unlike ProcessWorkerPool there is no inline shortcut — every
        batch crosses the process boundary, so N shards compute in
        parallel instead of serialising on the caller's GIL."""
        before = executor.batches_executed
        executor.pow_many([(2, 10, 1_000_003)])
        assert executor.batches_executed == before + 1

    def test_counters_track_jobs(self, executor):
        jobs_before = executor.jobs_executed
        executor.pow_many([(2, 3, 5), (3, 4, 7)])
        assert executor.jobs_executed == jobs_before + 2

    def test_futures_overlap(self, executor):
        jobs = [(5, 117, 10_007)] * 8
        futures = [executor.submit_pow_many(jobs) for _ in range(3)]
        expected = SerialExecutor().pow_many(jobs)
        for future in futures:
            assert future.result() == expected

    def test_close_is_idempotent(self):
        exe = DedicatedProcessExecutor()
        exe.pow_many([(2, 3, 5)])
        exe.close()
        exe.close()
