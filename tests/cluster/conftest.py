"""Shared fixtures for the sharded-SDC plane tests.

The protocol-level fixtures build *paired* deployments — one classic
single-SDC coordinator and one cluster — from the same seed, so tests
can assert transcript equality byte for byte.  Pairs must consume
randomness in lockstep; every test that runs protocol rounds therefore
builds its own pair instead of sharing a session-scoped one.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterCoordinator
from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.protocol import PisaCoordinator
from repro.pisa.pu_client import PUClient
from repro.watch.scenario import ScenarioConfig, build_scenario

from tests.conftest import TEST_KEY_BITS

#: Both members of a pair freeze their license clock to this instant so
#: ``issued_at`` never depends on wall time.
FROZEN_CLOCK = 1_700_000_000.0


def build_single(seed: int = 42, scenario_seed: int = 5, num_sus: int = 2):
    """One classic single-SDC deployment on the shared small scenario."""
    scenario = build_scenario(ScenarioConfig(seed=scenario_seed))
    coordinator = PisaCoordinator(
        scenario.environment,
        key_bits=TEST_KEY_BITS,
        rng=DeterministicRandomSource(seed),
    )
    _enroll(coordinator, scenario, num_sus)
    return scenario, coordinator


def build_cluster(
    seed: int = 42,
    scenario_seed: int = 5,
    num_sus: int = 2,
    num_shards: int = 4,
    **kwargs,
):
    """A sharded deployment seed-paired with :func:`build_single`."""
    scenario = build_scenario(ScenarioConfig(seed=scenario_seed))
    coordinator = ClusterCoordinator(
        scenario.environment,
        num_shards=num_shards,
        key_bits=TEST_KEY_BITS,
        rng=DeterministicRandomSource(seed),
        **kwargs,
    )
    _enroll(coordinator, scenario, num_sus)
    return scenario, coordinator


def _enroll(coordinator, scenario, num_sus: int) -> None:
    coordinator.sdc._clock = lambda: FROZEN_CLOCK
    for pu in scenario.pus:
        coordinator.enroll_pu(pu)
    for su in scenario.sus[:num_sus]:
        coordinator.enroll_su(su)


def run_round(coordinator, su_id: str) -> dict:
    """One Figure 5 round, returning its full serialized transcript."""
    client = coordinator.su_client(su_id)
    request = client.prepare_request()
    sign_request = coordinator.sdc.start_request(request)
    sign_response = coordinator.stp.handle_sign_extraction(sign_request)
    response = coordinator.sdc.finish_request(sign_response)
    outcome = client.process_response(response, coordinator.stp.directory)
    return {
        "su_id": su_id,
        "request": request.to_bytes(),
        "sign_request": sign_request.to_bytes(),
        "sign_response": sign_response.to_bytes(),
        "response": response.to_bytes(),
        "granted": outcome.granted,
        "q_sum": coordinator.sdc.last_q_sum,
    }


@pytest.fixture(scope="session")
def small_scenario():
    """The scenario both pair members are built on (read-only)."""
    return build_scenario(ScenarioConfig(seed=5))


@pytest.fixture()
def pu_updates(small_scenario, keypair, fresh_rng):
    """Encrypted PU updates under the session test keypair."""
    updates = []
    for pu in small_scenario.pus:
        client = PUClient(
            pu, small_scenario.environment, keypair.public_key, rng=fresh_rng
        )
        updates.append(client.build_update())
    return updates
