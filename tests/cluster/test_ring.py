"""Unit tests for the consistent-hash block ring."""

import pytest

from repro.cluster.ring import ConsistentHashRing
from repro.errors import ClusterError

SHARDS = ("shard-0", "shard-1", "shard-2", "shard-3")


class TestPlacement:
    def test_every_block_is_assigned_exactly_once(self):
        ring = ConsistentHashRing(SHARDS)
        assignment = ring.assignment(range(600))
        owned = [b for blocks in assignment.values() for b in blocks]
        assert sorted(owned) == list(range(600))

    def test_placement_is_deterministic(self):
        a = ConsistentHashRing(SHARDS)
        b = ConsistentHashRing(SHARDS)
        assert a.assignment(range(600)) == b.assignment(range(600))

    def test_insertion_order_does_not_matter(self):
        a = ConsistentHashRing(SHARDS)
        b = ConsistentHashRing(reversed(SHARDS))
        assert a.assignment(range(600)) == b.assignment(range(600))

    def test_reasonably_balanced(self):
        ring = ConsistentHashRing(SHARDS)
        sizes = [len(blocks) for blocks in ring.assignment(range(600)).values()]
        # 64 virtual nodes per shard keeps the spread well inside 2x.
        assert min(sizes) > 0
        assert max(sizes) / min(sizes) < 2.0

    def test_node_for_accepts_ints_and_strings(self):
        ring = ConsistentHashRing(SHARDS)
        assert ring.node_for(17) == ring.node_for(17)
        assert ring.node_for("17") in SHARDS


class TestStability:
    def test_join_moves_blocks_only_to_the_new_node(self):
        old = ConsistentHashRing(SHARDS)
        new = old.clone()
        new.add_node("shard-4")
        for block in range(600):
            before, after = old.node_for(block), new.node_for(block)
            if before != after:
                assert after == "shard-4"

    def test_leave_moves_blocks_only_off_the_removed_node(self):
        old = ConsistentHashRing(SHARDS)
        new = old.clone()
        new.remove_node("shard-3")
        for block in range(600):
            before, after = old.node_for(block), new.node_for(block)
            if before != after:
                assert before == "shard-3"

    def test_join_moves_roughly_one_new_nodes_share(self):
        old = ConsistentHashRing(SHARDS)
        new = old.clone()
        new.add_node("shard-4")
        moved = old.moved_keys(new, range(600))
        # Ideal is 1/5 of 600 = 120; allow generous hash-spread slack.
        assert 0 < len(moved) < 2 * 600 // 5

    def test_moved_keys_matches_pointwise_diff(self):
        old = ConsistentHashRing(SHARDS)
        new = old.clone()
        new.add_node("shard-4")
        expected = {
            b for b in range(600) if old.node_for(b) != new.node_for(b)
        }
        assert set(old.moved_keys(new, range(600))) == expected

    def test_clone_is_independent(self):
        ring = ConsistentHashRing(SHARDS)
        clone = ring.clone()
        clone.add_node("shard-extra")
        assert "shard-extra" not in ring
        assert "shard-extra" in clone


class TestErrors:
    def test_empty_ring_rejects_lookups(self):
        ring = ConsistentHashRing(())
        with pytest.raises(ClusterError):
            ring.node_for(0)

    def test_duplicate_node_rejected(self):
        ring = ConsistentHashRing(("a",))
        with pytest.raises(ClusterError):
            ring.add_node("a")

    def test_removing_unknown_node_rejected(self):
        ring = ConsistentHashRing(("a",))
        with pytest.raises(ClusterError):
            ring.remove_node("b")
