"""Unit tests for membership versioning and block handoff."""

import pytest

from repro.cluster.membership import (
    STATUS_ACTIVE,
    STATUS_LEFT,
    ClusterMembership,
)
from repro.cluster.rebalance import execute_handoff, plan_handoff
from repro.cluster.replica import ShardReplicaSet
from repro.cluster.shard import SdcShard
from repro.errors import ClusterError, MembershipError


class TestMembership:
    def test_initial_members_are_active(self):
        membership = ClusterMembership(("a", "b"))
        assert membership.active_members() == ("a", "b")
        assert len(membership) == 2
        assert membership.is_active("a")

    def test_join_bumps_version_and_ring(self):
        membership = ClusterMembership(("a",))
        version = membership.version
        old_ring = membership.ring
        membership.join("b")
        assert membership.version == version + 1
        assert "b" in membership.ring
        assert "b" not in old_ring  # old ring object untouched

    def test_double_join_rejected(self):
        membership = ClusterMembership(("a",))
        with pytest.raises(MembershipError):
            membership.join("a")

    def test_leave_marks_historical_record(self):
        membership = ClusterMembership(("a", "b"))
        membership.leave("b")
        assert membership.active_members() == ("a",)
        record = membership.record("b")
        assert record.status == STATUS_LEFT
        assert record.left_version == membership.version
        assert membership.record("a").status == STATUS_ACTIVE

    def test_left_id_is_not_reusable(self):
        membership = ClusterMembership(("a", "b"))
        membership.leave("b")
        with pytest.raises(MembershipError, match="not reusable"):
            membership.join("b")

    def test_last_member_cannot_leave(self):
        membership = ClusterMembership(("a",))
        with pytest.raises(MembershipError):
            membership.leave("a")

    def test_leaving_nonmember_rejected(self):
        membership = ClusterMembership(("a",))
        with pytest.raises(MembershipError):
            membership.leave("ghost")

    def test_unknown_record_rejected(self):
        membership = ClusterMembership(("a",))
        with pytest.raises(MembershipError):
            membership.record("ghost")


class TestHandoffPlanning:
    def test_plan_matches_ring_diff(self):
        membership = ClusterMembership(("a", "b"))
        old_ring = membership.ring
        new_ring = membership.join("c")
        plan = plan_handoff(old_ring, new_ring, 120)
        assert plan.blocks_moved > 0
        for move in plan.moves:
            assert move.source != move.target
            assert old_ring.node_for(move.block) == move.source
            assert new_ring.node_for(move.block) == move.target
            # A join only ever pulls blocks onto the new shard.
            assert move.target == "c"
        assert plan.moves_to("c") == plan.moves
        assert plan.moves_from("c") == ()

    def test_identical_rings_need_no_moves(self):
        membership = ClusterMembership(("a", "b"))
        ring = membership.ring
        assert plan_handoff(ring, ring, 120).blocks_moved == 0


class TestHandoffExecution:
    @pytest.fixture()
    def cluster_state(self, small_scenario, keypair, pu_updates):
        """Two replica sets with every block and PU placed by the ring."""
        membership = ClusterMembership(("a", "b"))
        num_blocks = small_scenario.environment.num_blocks

        def make_set(shard_id: str) -> ShardReplicaSet:
            return ShardReplicaSet(
                shard_id,
                shard_factory=lambda role: SdcShard(
                    shard_id, small_scenario.environment, keypair.public_key
                ),
            )

        replica_sets = {sid: make_set(sid) for sid in ("a", "b")}
        assignment = membership.ring.assignment(tuple(range(num_blocks)))
        for shard_id, blocks in assignment.items():
            replica_sets[shard_id].assign_blocks(blocks)
        ring = membership.ring
        for update in pu_updates:
            replica_sets[ring.node_for(update.block_index)].apply_pu_update(
                update
            )
        return membership, replica_sets, num_blocks

    def test_join_transfers_blocks_and_pus(self, cluster_state, small_scenario,
                                           keypair):
        membership, replica_sets, num_blocks = cluster_state
        total_pus_before = sum(
            rs.primary.num_tracked_pus for rs in replica_sets.values()
        )
        old_ring = membership.ring
        replica_sets["c"] = ShardReplicaSet(
            "c",
            shard_factory=lambda role: SdcShard(
                "c", small_scenario.environment, keypair.public_key
            ),
        )
        new_ring = membership.join("c")
        plan = plan_handoff(old_ring, new_ring, num_blocks)
        execute_handoff(plan, replica_sets)

        # Ownership now matches the new ring exactly, on both replicas.
        for block in range(num_blocks):
            owner = new_ring.node_for(block)
            for shard_id, rs in replica_sets.items():
                expected = shard_id == owner
                assert rs.primary.owns(block) == expected
                assert rs.standby.owns(block) == expected
        # No PU contribution was lost or duplicated.
        assert (
            sum(rs.primary.num_tracked_pus for rs in replica_sets.values())
            == total_pus_before
        )
        for rs in replica_sets.values():
            assert rs.primary.num_tracked_pus == rs.standby.num_tracked_pus

    def test_leave_pushes_blocks_back_to_survivors(
        self, cluster_state, small_scenario, keypair
    ):
        membership, replica_sets, num_blocks = cluster_state
        old_ring = membership.ring
        new_ring = membership.leave("b")
        plan = plan_handoff(old_ring, new_ring, num_blocks)
        for move in plan.moves:
            assert move.source == "b"
        execute_handoff(plan, replica_sets)
        assert replica_sets["b"].primary.blocks == ()
        assert replica_sets["b"].primary.num_tracked_pus == 0
        assert len(replica_sets["a"].primary.blocks) == num_blocks

    def test_missing_target_fails_loudly(self, cluster_state):
        membership, replica_sets, num_blocks = cluster_state
        old_ring = membership.ring
        new_ring = membership.join("ghost")
        plan = plan_handoff(old_ring, new_ring, num_blocks)
        with pytest.raises(ClusterError, match="no replica set"):
            execute_handoff(plan, replica_sets)
