"""Fencing-token unit behaviour: monotonicity, durability, rejection.

The chaos drills in ``tests/resilience/test_partition_chaos.py`` prove
the lease protocol end to end; these tests pin the primitives — the
:class:`~repro.cluster.fencing.LeaseAuthority` counter can never move
backwards (even across kill9 + cold start, on either store engine), the
shard-side ratchet rejects exactly the stale writers, and a
:class:`~repro.errors.FencedError` is never retried no matter how
sloppily a policy is configured.
"""

import random

import pytest

from repro.cluster.fencing import (
    FENCE_SCOPE_PREFIX,
    LeaseAuthority,
    fence_scope,
)
from repro.cluster.shard import SdcShard
from repro.errors import FencedError, RetryExhaustedError
from repro.resilience.policy import (
    NEVER_RETRYABLE,
    RetryPolicy,
    run_with_policy,
)
from repro.store import MemoryStateStore, SqliteStateStore
from repro.telemetry import MetricsRegistry


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    """Both store engines — fencing durability must not care which."""
    if request.param == "memory":
        engine = MemoryStateStore()
    else:
        engine = SqliteStateStore(tmp_path / "fence.sqlite3")
    yield engine
    engine.close()


class TestLeaseAuthority:
    def test_tokens_start_at_zero_and_increase(self):
        authority = LeaseAuthority()
        assert authority.register("shard-0") == 0
        assert authority.token("shard-0") == 0
        first = authority.bump("shard-0", "failover")
        second = authority.bump("shard-0", "failover")
        assert (first.token, second.token) == (1, 2)
        assert authority.token("shard-0") == 2

    def test_shards_are_fenced_independently(self):
        authority = LeaseAuthority()
        authority.bump("shard-0", "manual")
        authority.bump("shard-0", "manual")
        assert authority.token("shard-1") == 0
        assert authority.bump("shard-1", "manual").token == 1
        assert authority.shard_ids() == ("shard-0", "shard-1")

    def test_bump_persists_to_store_before_returning(self, store):
        authority = LeaseAuthority(store=store)
        lease = authority.bump("shard-0", "failover")
        blob = store.get_checkpoint(fence_scope("shard-0"))
        assert int.from_bytes(blob, "big") == lease.token

    def test_register_recovers_persisted_token(self, store):
        LeaseAuthority(store=store).bump("shard-0", "failover")
        reborn = LeaseAuthority(store=store)
        assert reborn.register("shard-0") == 1

    def test_scope_prefix_is_stable(self):
        # Cold-start recovery greps this prefix; renaming it silently
        # orphans every persisted lease.
        assert fence_scope("shard-7") == FENCE_SCOPE_PREFIX + "shard-7"
        assert FENCE_SCOPE_PREFIX == "fence/"


class TestMonotonicityAcrossColdStarts:
    """Satellite property: promote → kill9 → cold start → promote.

    Tokens must be *strictly* monotonic per shard across authority
    incarnations sharing a store.  The sequence of issued tokens is the
    invariant; gaps are fine (a crash between persist and use wastes a
    number), regressions are split-brain.
    """

    def test_token_survives_kill9_and_next_bump_exceeds_it(self, store):
        incumbent = LeaseAuthority(store=store)
        t1 = incumbent.bump("shard-0", "manual").token
        t2 = incumbent.bump("shard-0", "failover").token
        # kill9: the incumbent object is simply abandoned, nothing is
        # flushed or closed — durability came from bump's store-first
        # write order.
        reborn = LeaseAuthority(store=store)
        assert reborn.register("shard-0") == t2
        t3 = reborn.bump("shard-0", "cold-start").token
        assert t1 < t2 < t3

    def test_interleaved_incarnations_never_regress(self, store):
        rng = random.Random(0xF3)
        issued: dict[str, list[int]] = {"shard-0": [], "shard-1": []}
        authority = LeaseAuthority(store=store)
        for _ in range(60):
            action = rng.random()
            if action < 0.25:
                # kill9 + cold start: fresh authority on the same store.
                authority = LeaseAuthority(store=store)
            shard_id = rng.choice(("shard-0", "shard-1"))
            if action < 0.5:
                # register is idempotent and must never lose ground
                assert authority.register(shard_id) >= max(
                    issued[shard_id], default=0
                )
            else:
                reason = rng.choice(("failover", "manual", "cold-start"))
                issued[shard_id].append(authority.bump(shard_id, reason).token)
        for shard_id, tokens in issued.items():
            assert tokens == sorted(tokens), shard_id
            assert len(set(tokens)) == len(tokens), shard_id  # strict

    def test_unflushed_memory_of_dead_authority_is_irrelevant(self, store):
        # A dead incarnation's in-memory map can never exceed the store,
        # because bump writes the store *first* — so the successor's view
        # is always >= anything the corpse ever handed out.
        incumbent = LeaseAuthority(store=store)
        dead_lease = incumbent.bump("shard-0", "manual")
        successor = LeaseAuthority(store=store)
        successor.register("shard-0")
        assert successor.bump("shard-0", "failover").token > dead_lease.token


class TestMetricsFamilies:
    def test_families_exist_before_any_promotion(self):
        registry = MetricsRegistry()
        authority = LeaseAuthority(metrics=registry)
        authority.register("shard-0")
        text = registry.to_prometheus()
        assert "fencing_tokens_current" in text
        assert "fenced_requests_total" in text
        assert 'promotions_total{reason="failover"}' in text

    def test_bump_and_rejection_move_the_counters(self):
        registry = MetricsRegistry()
        authority = LeaseAuthority(metrics=registry)
        authority.bump("shard-0", "manual")
        authority.note_rejection("shard-0")
        lines = registry.to_prometheus().splitlines()
        assert 'fencing_tokens_current{shard="shard-0"} 1' in lines
        assert 'fenced_requests_total{shard="shard-0"} 1' in lines
        assert 'promotions_total{reason="manual"} 1' in lines


class TestShardRatchet:
    def make_shard(self, small_scenario, keypair):
        return SdcShard(
            "shard-0",
            small_scenario.environment,
            keypair.public_key,
            blocks=(),
        )

    def test_zero_token_always_passes(self, small_scenario, keypair):
        shard = self.make_shard(small_scenario, keypair)
        shard.observe_fence(5)
        shard.observe_fence(0)  # unfenced caller: exempt by design
        assert shard.fence_token == 5

    def test_equal_token_passes_lower_rejected(self, small_scenario, keypair):
        shard = self.make_shard(small_scenario, keypair)
        shard.observe_fence(3)
        shard.observe_fence(3)  # same lease holder
        with pytest.raises(FencedError, match="stale token 2"):
            shard.observe_fence(2)
        assert shard.fence_token == 3

    def test_stale_commit_leaves_epoch_untouched(self, small_scenario, keypair):
        shard = self.make_shard(small_scenario, keypair)
        shard.commit_epoch(0, fence_token=2)
        with pytest.raises(FencedError):
            shard.commit_epoch(1, fence_token=1)
        assert shard.last_committed_epoch == 0


class TestNeverRetryable:
    def test_fenced_error_is_never_retryable(self):
        assert FencedError in NEVER_RETRYABLE
        policy = RetryPolicy(max_attempts=5, retryable=(Exception,))
        assert policy.retries(ValueError("x")) is True
        assert policy.retries(FencedError("deposed")) is False

    def test_run_with_policy_fails_fast_on_fence(self):
        attempts = []

        def deposed_writer():
            attempts.append(1)
            raise FencedError("lease is dead")

        policy = RetryPolicy(max_attempts=5, retryable=(Exception,))
        with pytest.raises(FencedError):
            run_with_policy(deposed_writer, policy, sleep=lambda _s: None)
        assert len(attempts) == 1  # no second hammer blow

    def test_other_errors_still_retry_to_exhaustion(self):
        attempts = []

        def flaky():
            attempts.append(1)
            raise ValueError("transient")

        policy = RetryPolicy(max_attempts=3, retryable=(ValueError,))
        with pytest.raises(RetryExhaustedError):
            run_with_policy(flaky, policy, sleep=lambda _s: None)
        assert len(attempts) == 3
