"""StateStore engines: sealing, round-trips, transactions, 10^5-row scale.

Both engines run the same behavioural suite (the in-memory engine is
the executable spec for the SQLite one); engine-specific tests cover
persistence across reopen and on-disk corruption.
"""

import sqlite3

import pytest

from repro.errors import StoreCorruptError, StoreError
from repro.store import (
    STORE_TABLES,
    MemoryStateStore,
    SqliteStateStore,
)

#: "10^5 blocks" scale target from the acceptance criteria.
SCALE_ROWS = 100_000


def _blob(i: int) -> bytes:
    """Deterministic synthetic ciphertext-shaped payload."""
    return b"ciphertext-%08d-" % i + bytes([i % 251]) * (i % 17)


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    engine = (
        MemoryStateStore()
        if request.param == "memory"
        else SqliteStateStore(tmp_path / "state.sqlite")
    )
    yield engine
    engine.close()


class TestPuUpdates:
    def test_upsert_keeps_latest_per_pu(self, store):
        store.put_pu_update("shard-0", "pu-1", _blob(1))
        store.put_pu_update("shard-0", "pu-1", _blob(2))
        assert store.pu_updates() == (("shard-0", "pu-1", _blob(2)),)

    def test_rows_sorted_and_filterable_by_shard(self, store):
        store.put_pu_update("shard-1", "pu-b", b"B")
        store.put_pu_update("shard-0", "pu-a", b"A")
        store.put_pu_update("shard-1", "pu-a", b"C")
        assert [r[:2] for r in store.pu_updates()] == [
            ("shard-0", "pu-a"),
            ("shard-1", "pu-a"),
            ("shard-1", "pu-b"),
        ]
        assert [r[1] for r in store.pu_updates("shard-1")] == ["pu-a", "pu-b"]

    def test_delete_reports_existence(self, store):
        store.put_pu_update("shard-0", "pu-1", b"x")
        assert store.delete_pu_update("shard-0", "pu-1") is True
        assert store.delete_pu_update("shard-0", "pu-1") is False
        assert store.pu_updates() == ()


class TestSnapshots:
    def test_latest_only_refuses_older_epoch(self, store):
        assert store.put_snapshot("shard-0", 3, b"epoch-3") is True
        assert store.put_snapshot("shard-0", 1, b"epoch-1") is False
        assert store.latest_snapshot("shard-0") == (3, b"epoch-3")

    def test_same_epoch_overwrites(self, store):
        store.put_snapshot("shard-0", 2, b"first")
        assert store.put_snapshot("shard-0", 2, b"second") is True
        assert store.latest_snapshot("shard-0") == (2, b"second")

    def test_snapshot_shards_sorted(self, store):
        store.put_snapshot("shard-1", 0, b"b")
        store.put_snapshot("shard-0", 0, b"a")
        assert store.snapshot_shards() == ("shard-0", "shard-1")
        assert store.latest_snapshot("shard-9") is None


class TestDirectoryAndCheckpoints:
    def test_directory_is_a_singleton(self, store):
        assert store.get_directory() is None
        store.put_directory(b"dir-v1")
        store.put_directory(b"dir-v2")
        assert store.get_directory() == b"dir-v2"
        assert store.row_counts()["directory"] == 1

    def test_checkpoint_meta_per_scope(self, store):
        assert store.get_checkpoint("journal") is None
        store.put_checkpoint("journal", b"meta-1")
        store.put_checkpoint("other", b"meta-2")
        assert store.get_checkpoint("journal") == b"meta-1"
        assert store.get_checkpoint("other") == b"meta-2"
        assert store.row_counts()["checkpoints"] == 2


class TestOperationalSurface:
    def test_row_counts_cover_exactly_store_tables(self, store):
        counts = store.row_counts()
        assert tuple(sorted(counts)) == tuple(sorted(STORE_TABLES))
        assert all(count == 0 for count in counts.values())

    def test_closed_store_raises_typed_error(self, store):
        store.close()
        with pytest.raises(StoreError):
            store.row_counts()
        store.close()  # idempotent

    def test_context_manager_closes(self, tmp_path):
        with SqliteStateStore(tmp_path / "cm.sqlite") as engine:
            engine.put_directory(b"d")
        with pytest.raises(StoreError):
            engine.get_directory()

    def test_metrics_gauges_preregistered_and_refreshed(self, store):
        from repro.telemetry import MetricsRegistry

        metrics = MetricsRegistry()
        store.attach_metrics(metrics)
        gauges = metrics.snapshot()["gauges"]
        for table in STORE_TABLES:
            assert gauges[f"store_rows{{table={table}}}"] == 0
        store.put_pu_update("shard-0", "pu-1", b"x")
        store.refresh_metrics()
        gauges = metrics.snapshot()["gauges"]
        assert gauges["store_rows{table=pu_updates}"] == 1


class TestTransactions:
    def test_rollback_restores_pre_transaction_state(self, store):
        store.put_directory(b"before")
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.put_directory(b"during")
                store.put_pu_update("shard-0", "pu-1", b"during")
                raise RuntimeError("crash inside the write group")
        assert store.get_directory() == b"before"
        assert store.pu_updates() == ()

    def test_commit_makes_all_writes_visible(self, store):
        with store.transaction():
            store.put_checkpoint("journal", b"meta")
            store.put_snapshot("shard-0", 0, b"snap")
        assert store.get_checkpoint("journal") == b"meta"
        assert store.latest_snapshot("shard-0") == (0, b"snap")


class TestSealing:
    def test_sqlite_bitflip_surfaces_as_store_corrupt(self, tmp_path):
        path = tmp_path / "state.sqlite"
        with SqliteStateStore(path) as engine:
            engine.put_pu_update("shard-0", "pu-1", _blob(7))
            engine.flush()
        raw = sqlite3.connect(path)
        frame = bytearray(raw.execute("SELECT frame FROM pu_updates").fetchone()[0])
        frame[-1] ^= 0xFF
        raw.execute("UPDATE pu_updates SET frame = ?", (bytes(frame),))
        raw.commit()
        raw.close()
        with SqliteStateStore(path) as engine:
            with pytest.raises(StoreCorruptError):
                engine.pu_updates()

    def test_memory_bitflip_surfaces_as_store_corrupt(self):
        engine = MemoryStateStore()
        engine.put_snapshot("shard-0", 0, b"snap")
        epoch, frame = engine._snapshots["shard-0"]
        engine._snapshots["shard-0"] = (epoch, frame[:-1] + bytes([frame[-1] ^ 1]))
        with pytest.raises(StoreCorruptError):
            engine.latest_snapshot("shard-0")


class TestSqlitePersistence:
    def test_state_survives_reopen(self, tmp_path):
        path = tmp_path / "state.sqlite"
        with SqliteStateStore(path) as engine:
            engine.put_pu_update("shard-0", "pu-1", _blob(1))
            engine.put_snapshot("shard-0", 4, b"snap")
            engine.put_directory(b"dir")
            engine.put_checkpoint("journal", b"meta")
            engine.flush()
        with SqliteStateStore(path) as engine:
            assert engine.pu_updates() == (("shard-0", "pu-1", _blob(1)),)
            assert engine.latest_snapshot("shard-0") == (4, b"snap")
            assert engine.get_directory() == b"dir"
            assert engine.get_checkpoint("journal") == b"meta"


class TestScale:
    def test_hundred_thousand_blocks_round_trip(self, store):
        # One transaction keeps the SQLite engine at bulk-insert speed;
        # for the memory engine it is the same visibility semantics.
        with store.transaction():
            for i in range(SCALE_ROWS):
                store.put_pu_update("shard-0", "pu-%06d" % i, _blob(i))
        assert store.row_counts()["pu_updates"] == SCALE_ROWS
        rows = store.pu_updates("shard-0")
        assert len(rows) == SCALE_ROWS
        # Spot-check byte-exactness across the range (every row already
        # passed its CRC on the way out of the engine).
        for i in (0, 1, 777, SCALE_ROWS // 2, SCALE_ROWS - 1):
            assert rows[i] == ("shard-0", "pu-%06d" % i, _blob(i))
