"""Checkpointer: compaction, crash-point fuzz, torn-checkpoint taxonomy.

The crash fuzz is the heart of the crash-safety claim: a kill injected
at *every* named step of the write → fsync → rename → truncate protocol
must recover to the same logical journal suffix an uninterrupted run
would replay (the byte-level analogue of transcript identity, which the
``kill9-then-coldstart`` chaos plan asserts end to end).
"""

import os

import pytest

from repro.errors import CheckpointError, TornCheckpointError
from repro.resilience.journal import JournalWriter, read_journal
from repro.resilience.recovery import checkpoint_marker
from repro.store import (
    CHECKPOINT_KIND,
    CHECKPOINT_SCOPE,
    CheckpointMeta,
    Checkpointer,
    SqliteStateStore,
    recover,
)
from repro.telemetry import MetricsRegistry

#: Every named step of the checkpoint protocol, in execution order.
STEPS = ("barrier", "write", "fsync", "rename", "truncate")

#: The compaction cap the CI store-smoke job also asserts: a compacted
#: journal is one header plus one marker frame, far below this bound.
COMPACTED_CAP_BYTES = 512


class _Kill(BaseException):
    """Models SIGKILL at a failpoint (not an Exception: nothing may
    catch-and-continue past it, exactly like a real kill)."""


def _fill(writer: JournalWriter, n: int = 60) -> None:
    for i in range(n):
        writer.append("note", b"entry-%04d" % i)
    writer.barrier()


@pytest.fixture()
def store(tmp_path):
    with SqliteStateStore(tmp_path / "state.sqlite") as engine:
        yield engine


class TestCompaction:
    def test_checkpoint_bounds_journal_below_cap(self, tmp_path, store):
        path = str(tmp_path / "journal.wal")
        with JournalWriter(path, fsync_every=8) as writer:
            _fill(writer, n=500)
            before = os.path.getsize(path)
            stats = Checkpointer(store).checkpoint(writer)
        assert stats.checkpoint_id == 1
        assert stats.records_compacted == 500
        assert stats.journal_bytes_before == before
        assert stats.journal_bytes_after < COMPACTED_CAP_BYTES
        assert os.path.getsize(path) < COMPACTED_CAP_BYTES

    def test_compacted_journal_is_header_plus_marker(self, tmp_path, store):
        path = str(tmp_path / "journal.wal")
        with JournalWriter(path, fsync_every=8) as writer:
            _fill(writer)
            Checkpointer(store).checkpoint(writer)
        result = read_journal(path)
        assert not result.torn
        assert [r.kind for r in result.records] == [CHECKPOINT_KIND]
        assert checkpoint_marker(result) == (1, 60)

    def test_checkpoint_ids_are_monotonic(self, tmp_path, store):
        path = str(tmp_path / "journal.wal")
        ckpt = Checkpointer(store)
        with JournalWriter(path, fsync_every=8) as writer:
            _fill(writer)
            assert ckpt.checkpoint(writer).checkpoint_id == 1
            _fill(writer)
            stats = ckpt.checkpoint(writer)
        assert stats.checkpoint_id == 2
        # marker of ckpt 1 + 60 fresh records were compacted
        assert stats.records_compacted == 61
        meta = CheckpointMeta.from_bytes(store.get_checkpoint(CHECKPOINT_SCOPE))
        assert meta.checkpoint_id == 2

    def test_appends_resume_after_checkpoint(self, tmp_path, store):
        path = str(tmp_path / "journal.wal")
        with JournalWriter(path, fsync_every=1) as writer:
            _fill(writer)
            Checkpointer(store).checkpoint(writer)
            writer.append("note", b"post-checkpoint")
        result = read_journal(path)
        assert [r.kind for r in result.records] == [CHECKPOINT_KIND, "note"]
        recovered = recover(store, path)
        assert [r.body for r in recovered.tail.records] == [b"post-checkpoint"]

    def test_fileobj_backed_writer_is_rejected(self, store):
        import io

        writer = JournalWriter(fileobj=io.BytesIO())
        with pytest.raises(CheckpointError):
            Checkpointer(store).checkpoint(writer)


class TestCrashPointFuzz:
    @pytest.mark.parametrize("step", STEPS)
    def test_kill_at_each_step_recovers_same_suffix(self, tmp_path, store, step):
        path = str(tmp_path / "journal.wal")
        writer = JournalWriter(path, fsync_every=4)
        _fill(writer)
        control = [(r.kind, r.body) for r in read_journal(path).records]

        def failpoint(name: str) -> None:
            if name == step:
                raise _Kill(name)

        with pytest.raises(_Kill):
            Checkpointer(store, failpoint=failpoint).checkpoint(writer)
        # The kill took the process; the append handle dies with it.
        writer._fh.close()

        recovered = recover(store, path)
        absorbed = recovered.meta.records_consumed if recovered.meta else 0
        replay = [(r.kind, r.body) for r in recovered.tail.records]
        # Store-absorbed prefix + replayed tail == the uninterrupted
        # record stream, whichever side of the pivot the kill landed on.
        assert control[absorbed:] == replay
        assert not recovered.tail.torn
        # The stale tmp (if the kill landed mid-compaction) is gone.
        assert not os.path.exists(path + ".ckpt.tmp")
        # A restarted writer appends cleanly to whatever file survived.
        with JournalWriter(path, fsync_every=1) as fresh:
            fresh.append("note", b"post-crash")
        assert read_journal(path).records[-1].body == b"post-crash"

    @pytest.mark.parametrize("step", STEPS)
    def test_kill_then_retry_checkpoint_converges(self, tmp_path, store, step):
        path = str(tmp_path / "journal.wal")
        writer = JournalWriter(path, fsync_every=4)
        _fill(writer)

        def failpoint(name: str) -> None:
            if name == step:
                raise _Kill(name)

        with pytest.raises(_Kill):
            Checkpointer(store, failpoint=failpoint).checkpoint(writer)
        writer._fh.close()
        recover(store, path)  # clears any stale tmp

        with JournalWriter(path, fsync_every=4) as fresh:
            stats = Checkpointer(store).checkpoint(fresh)
        assert stats.journal_bytes_after < COMPACTED_CAP_BYTES
        recovered = recover(store, path)
        assert recovered.tail.records == ()
        assert recovered.meta.checkpoint_id == stats.checkpoint_id


class TestTornCheckpoints:
    def test_marker_without_meta_is_torn(self, tmp_path, store):
        path = str(tmp_path / "journal.wal")
        with JournalWriter(path, fsync_every=8) as writer:
            _fill(writer)
            Checkpointer(store).checkpoint(writer)
        # A marker the store has never heard of: impossible unless the
        # store lost a committed transaction.
        with SqliteStateStore(tmp_path / "other.sqlite") as fresh_store:
            with pytest.raises(TornCheckpointError):
                recover(fresh_store, path)

    def test_marker_newer_than_meta_is_torn(self, tmp_path, store):
        path = str(tmp_path / "journal.wal")
        with JournalWriter(path, fsync_every=8) as writer:
            _fill(writer)
            Checkpointer(store).checkpoint(writer)
        store.put_checkpoint(
            CHECKPOINT_SCOPE, CheckpointMeta(0, 60).to_bytes()
        )
        with pytest.raises(TornCheckpointError):
            recover(store, path)

    def test_journal_shorter_than_consumed_is_torn(self, tmp_path, store):
        path = str(tmp_path / "journal.wal")
        with JournalWriter(path, fsync_every=1) as writer:
            _fill(writer, n=5)
        store.put_checkpoint(CHECKPOINT_SCOPE, CheckpointMeta(1, 10).to_bytes())
        with pytest.raises(TornCheckpointError):
            recover(store, path)

    def test_missing_journal_recovers_empty(self, tmp_path, store):
        recovered = recover(store, tmp_path / "never-written.wal")
        assert recovered.meta is None
        assert recovered.journal.records == ()
        assert recovered.tail.records == ()


class TestMetrics:
    def test_families_preregistered_at_zero(self, tmp_path, store):
        metrics = MetricsRegistry()
        Checkpointer(store, metrics=metrics)
        snap = metrics.snapshot()
        assert snap["counters"]["checkpoints_total"] == 0
        assert snap["gauges"]["journal_bytes_on_disk"] == 0
        assert snap["gauges"]["journal_records_since_checkpoint"] == 0
        assert snap["histograms"]["checkpoint_duration_s"]["count"] == 0
        assert snap["gauges"]["store_rows{table=pu_updates}"] == 0

    def test_checkpoint_moves_the_needles(self, tmp_path, store):
        metrics = MetricsRegistry()
        ckpt = Checkpointer(store, metrics=metrics)
        path = str(tmp_path / "journal.wal")
        with JournalWriter(path, fsync_every=8) as writer:
            _fill(writer)
            ckpt.checkpoint(writer)
            writer.append("note", b"tail")
            ckpt.observe(writer)
        snap = metrics.snapshot()
        assert snap["counters"]["checkpoints_total"] == 1
        assert snap["histograms"]["checkpoint_duration_s"]["count"] == 1
        assert snap["gauges"]["journal_bytes_on_disk"] > 0
        assert snap["gauges"]["journal_records_since_checkpoint"] == 1
        assert snap["gauges"]["store_rows{table=checkpoints}"] == 1
