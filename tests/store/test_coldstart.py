"""Cold start: rebuild a dead shard from store + journal tail, byte-exact.

The invariant under test is the tentpole's acceptance bar: a shard
rebuilt from its durable snapshot (or raw PU rows) plus the unconsumed
journal tail serializes to *exactly* the bytes of the shard that never
died.  Byte equality of ``serialize_shard_state`` implies transcript
equality for every later round, since phase-1/phase-2 arithmetic is a
pure function of that state and centrally drawn randomness.
"""

import io

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ProtocolError
from repro.pisa.pu_client import PUClient
from repro.pisa.storage import serialize_shard_state
from repro.resilience.journal import (
    EpochJournal,
    JournalWriter,
    read_journal,
)
from repro.store import (
    Checkpointer,
    MemoryStateStore,
    recover,
    restore_shard_from_store,
    tail_epoch_commits,
)

from tests.cluster.conftest import build_cluster, run_round


def _kill_replica_set(coordinator, shard_id):
    replica_set = coordinator.replica_sets[shard_id]
    replica_set.primary.kill()
    replica_set.standby.kill()
    return replica_set


class TestTailEpochCommits:
    def _tail(self, *bodies):
        buffer = io.BytesIO()
        writer = JournalWriter(fileobj=buffer, fsync_every=1)
        for body in bodies:
            writer.append("epoch-commit", body)
        writer.barrier()
        return read_journal(buffer.getvalue())

    def test_filters_by_shard_in_order(self):
        tail = self._tail(b"shard-0:0", b"shard-1:0", b"shard-0:2")
        assert tail_epoch_commits(tail, "shard-0") == (0, 2)
        assert tail_epoch_commits(tail, "shard-1") == (0,)
        assert tail_epoch_commits(tail, "shard-9") == ()

    def test_shard_ids_containing_colons_parse(self):
        tail = self._tail(b"rack:0/shard:1:7")
        assert tail_epoch_commits(tail, "rack:0/shard:1") == (7,)


class TestColdStartShard:
    def test_snapshot_cold_start_is_byte_identical(self):
        store = MemoryStateStore()
        scenario, coordinator = build_cluster(num_shards=2, store=store)
        coordinator.sdc.commit_epoch(0)
        victim = coordinator.router.shard_ids[0]
        before = serialize_shard_state(coordinator.replica_sets[victim].primary)

        _kill_replica_set(coordinator, victim)
        applied = coordinator.cold_start_shard(victim)

        replica_set = coordinator.replica_sets[victim]
        assert replica_set.primary.alive
        assert serialize_shard_state(replica_set.primary) == before
        assert serialize_shard_state(replica_set.standby) == before
        assert applied == 0  # everything was inside the snapshot

    def test_pu_row_cold_start_without_snapshot(self):
        # No epoch ever committed: the store holds only raw PU rows, and
        # the cold start replays them onto ring-assigned blocks.
        store = MemoryStateStore()
        scenario, coordinator = build_cluster(num_shards=2, store=store)
        assert store.snapshot_shards() == ()
        victim = coordinator.router.shard_ids[0]
        before = serialize_shard_state(coordinator.replica_sets[victim].primary)

        _kill_replica_set(coordinator, victim)
        coordinator.cold_start_shard(victim)
        after = serialize_shard_state(coordinator.replica_sets[victim].primary)
        assert after == before

    def test_rounds_continue_after_cold_start(self):
        store = MemoryStateStore()
        scenario, coordinator = build_cluster(num_shards=2, store=store)
        coordinator.sdc.commit_epoch(0)
        su_id = scenario.sus[0].su_id
        control = run_round(coordinator, su_id)

        victim = coordinator.router.shard_ids[0]
        _kill_replica_set(coordinator, victim)
        coordinator.cold_start_shard(victim)
        replay = run_round(coordinator, su_id)
        # Different rounds draw different randomness, but both complete
        # and agree on the (deterministic) admission outcome.
        assert replay["granted"] == control["granted"]

    def test_cold_start_without_store_is_typed_error(self):
        scenario, coordinator = build_cluster(num_shards=2)
        with pytest.raises(ProtocolError):
            coordinator.cold_start_shard(coordinator.router.shard_ids[0])


class TestJournalTailReplay:
    def test_post_checkpoint_pu_update_replays_from_tail(self, tmp_path):
        store = MemoryStateStore()
        path = str(tmp_path / "journal.wal")
        writer = JournalWriter(path, fsync_every=1)
        journal = EpochJournal(writer)
        scenario, coordinator = build_cluster(
            num_shards=2, store=store, journal=journal
        )
        coordinator.sdc.commit_epoch(0)
        Checkpointer(store).checkpoint(writer)

        # A PU update the snapshot has NOT absorbed: it lands in the
        # journal tail (and the store row), not in any snapshot.
        pu = scenario.pus[0]
        client = PUClient(
            pu,
            scenario.environment,
            coordinator.stp.group_public_key,
            rng=DeterministicRandomSource(99),
        )
        update = client.build_update()
        coordinator.sdc.handle_pu_update(update)
        writer.barrier()

        owner = coordinator.router.route_pu_update(update)
        live = serialize_shard_state(coordinator.replica_sets[owner].primary)

        recovered = recover(store, path)
        assert [r.kind for r in recovered.tail.records].count("pu-update") == 1

        _kill_replica_set(coordinator, owner)
        applied = coordinator.cold_start_shard(owner, recovered.tail)
        assert applied >= 1
        rebuilt = serialize_shard_state(coordinator.replica_sets[owner].primary)
        assert rebuilt == live

    def test_tail_replay_is_idempotent_for_absorbed_updates(self):
        # Replaying an update the restore source already holds is the
        # no-op ⊖ old ⊕ new with old == new: latest-per-PU semantics.
        store = MemoryStateStore()
        scenario, coordinator = build_cluster(num_shards=2, store=store)
        victim = coordinator.router.shard_ids[0]
        primary = coordinator.replica_sets[victim].primary
        before = serialize_shard_state(primary)

        rows = store.pu_updates(victim)
        buffer = io.BytesIO()
        tail_writer = JournalWriter(fileobj=buffer, fsync_every=1)
        for _, _, raw in rows:
            tail_writer.append("pu-update", raw)
        tail_writer.barrier()
        tail = read_journal(buffer.getvalue())

        fresh = coordinator._build_replica_set(victim).primary
        fresh.assign_blocks(primary.blocks)
        applied = restore_shard_from_store(fresh, store, tail)
        assert applied == len(rows)
        assert serialize_shard_state(fresh) == before
