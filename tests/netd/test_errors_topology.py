"""Socket error taxonomy mapping and cluster-spec parsing."""

import asyncio
import errno
import json

import pytest

from repro.errors import (
    ConfigurationError,
    HandshakeTimeoutError,
    IntegrityError,
    LinkDownError,
    PortInUseError,
    TransportError,
)
from repro.netd.topology import ClusterSpec, TlsSpec, load_cluster_spec
from repro.netd.transport import classify_network_error


class TestErrorClassification:
    @pytest.mark.parametrize(
        "raw",
        [
            ConnectionRefusedError("refused"),
            ConnectionResetError("reset"),
            BrokenPipeError("pipe"),
            asyncio.IncompleteReadError(b"", 10),
            EOFError(),
            OSError(errno.EHOSTUNREACH, "unreachable"),
        ],
    )
    def test_dead_links_map_to_link_down(self, raw):
        exc = classify_network_error(raw, "shard-0")
        assert isinstance(exc, LinkDownError)
        assert "shard-0" in str(exc)

    def test_addr_in_use_maps_to_port_in_use(self):
        exc = classify_network_error(OSError(errno.EADDRINUSE, "in use"), "stp")
        assert isinstance(exc, PortInUseError)
        assert not isinstance(exc, LinkDownError)  # not retryable in place

    def test_typed_errors_pass_through_unchanged(self):
        original = IntegrityError("frame CRC mismatch")
        # IntegrityError is not a TransportError: corruption must surface,
        # not be retried as a link fault.
        assert not isinstance(original, TransportError)
        kept = classify_network_error(HandshakeTimeoutError("slow"), "p")
        assert isinstance(kept, HandshakeTimeoutError)

    def test_unknown_exceptions_degrade_to_transport_error(self):
        exc = classify_network_error(RuntimeError("?"), "peer")
        assert type(exc) is TransportError

    def test_taxonomy_shape(self):
        # The retry policies key on these subtype relationships.
        assert issubclass(LinkDownError, TransportError)
        assert issubclass(PortInUseError, TransportError)
        assert issubclass(HandshakeTimeoutError, TransportError)
        assert not issubclass(PortInUseError, LinkDownError)


class TestClusterSpec:
    def test_load_example_spec(self):
        spec = load_cluster_spec("examples/cluster_spec.json")
        assert spec.shards == 2
        assert spec.tls is None

    def test_defaults_and_roundtrip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"shards": 3}), encoding="utf-8")
        spec = load_cluster_spec(path)
        assert spec == ClusterSpec(shards=3)
        assert spec.to_json_dict()["shards"] == 3

    def test_unknown_keys_are_typos(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"shards": 2, "shrads": 3}), encoding="utf-8")
        with pytest.raises(ConfigurationError, match="shrads"):
            load_cluster_spec(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_cluster_spec(tmp_path / "nope.json")

    def test_not_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not JSON"):
            load_cluster_spec(path)

    @pytest.mark.parametrize(
        "overrides",
        [{"shards": 0}, {"requests": 0}, {"rate_per_second": 0.0}, {"sus": 0}],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            ClusterSpec(**overrides)

    def test_tls_paths_must_exist(self, tmp_path):
        cert = tmp_path / "cert.pem"
        cert.write_text("x", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="keyfile"):
            TlsSpec(certfile=str(cert), keyfile=str(tmp_path / "missing.pem"))
