"""Cross-plane byte-identity for the workload engine (PR 10 acceptance).

``--scenario cbrs-tiered --workload diurnal`` must produce the same
protocol transcript on the in-memory plane and on the socket plane
(real worker processes, TCP frames), and across repeated runs.  Tier
admission lives broker-side only, so the workers never see it — which
is exactly why the transcripts can stay paired.
"""

import pytest

from repro.net.recording import TranscriptTransport
from repro.netd.plane import run_socket_loadtest
from repro.resilience.chaos import FROZEN_CLOCK
from repro.service.broker import REASON_TIER_BUDGET, ServiceConfig
from repro.service.loadtest import LoadtestConfig, run_loadtest
from repro.watch.scenario import ScenarioConfig, build_scenario

CONFIG = LoadtestConfig(
    seed=11,
    num_requests=4,
    arrivals_per_second=300.0,
    num_sus=4,
    num_pu_switches=1,
    key_bits=256,
    shards=2,
    scenario="cbrs-tiered",
    workload="diurnal",
    tier_capacity=1,
    service=ServiceConfig(batch_window_s=0.0, max_batch=1),
)
SCENARIO_CONFIG = ScenarioConfig(seed=11, num_sus=4)


@pytest.fixture(scope="module")
def paired_runs():
    clock = lambda: FROZEN_CLOCK  # noqa: E731

    memory_transport = TranscriptTransport()
    memory_report = run_loadtest(
        CONFIG,
        transport=memory_transport,
        clock=clock,
        scenario=build_scenario(SCENARIO_CONFIG),
    )

    socket_report, socket_fingerprints = run_socket_loadtest(
        CONFIG,
        scenario_config=SCENARIO_CONFIG,
        clock=clock,
        record_transcript=True,
    )
    return (
        memory_report,
        tuple(memory_transport.fingerprints),
        socket_report,
        socket_fingerprints,
    )


class TestWorkloadCrossPlane:
    def test_transcripts_are_byte_identical(self, paired_runs):
        _, memory_fps, _, socket_fps = paired_runs
        assert len(memory_fps) > 0
        assert socket_fps == memory_fps

    def test_decisions_match(self, paired_runs):
        memory_report, _, socket_report, _ = paired_runs
        assert len(socket_report.decisions) == CONFIG.num_requests
        assert [
            (d.su_id, d.status, d.reason) for d in socket_report.decisions
        ] == [(d.su_id, d.status, d.reason) for d in memory_report.decisions]

    def test_tier_pressure_reached_both_planes(self, paired_runs):
        """capacity=1 with 4 SUs must exercise the tier machinery."""
        memory_report, _, socket_report, _ = paired_runs
        for report in (memory_report, socket_report):
            reasons = [d.reason for d in report.decisions]
            assert REASON_TIER_BUDGET in reasons

    def test_memory_run_repeats_byte_identically(self, paired_runs):
        _, memory_fps, _, _ = paired_runs
        transport = TranscriptTransport()
        run_loadtest(
            CONFIG,
            transport=transport,
            clock=lambda: FROZEN_CLOCK,
            scenario=build_scenario(SCENARIO_CONFIG),
        )
        assert tuple(transport.fingerprints) == memory_fps
