"""The socket plane's hard invariant: byte-identity with the in-memory plane.

Same seeds, same scenario, same frozen clock — one run over
:class:`InMemoryTransport` accounting, one over real worker processes
and TCP frames.  The protocol transcript (every PISA message
fingerprinted in send order) and the span-tree signature must match
exactly.  This is the acceptance test for the determinism layering:
single broker-side draw stream, remote nonce round-trips, canonical
byte codecs.
"""

import pytest

from repro.net.recording import TranscriptTransport
from repro.netd.plane import run_socket_loadtest
from repro.resilience.chaos import FROZEN_CLOCK
from repro.service.loadtest import LoadtestConfig, run_loadtest
from repro.service.broker import ServiceConfig
from repro.telemetry import Tracer
from repro.watch.scenario import ScenarioConfig, build_scenario

CONFIG = LoadtestConfig(
    seed=7,
    num_requests=2,
    arrivals_per_second=500.0,
    num_sus=1,
    num_pu_switches=0,
    key_bits=256,
    shards=2,
    service=ServiceConfig(batch_window_s=0.0, max_batch=1),
)
SCENARIO_CONFIG = ScenarioConfig(seed=7, num_sus=1)


@pytest.fixture(scope="module")
def paired_runs():
    clock = lambda: FROZEN_CLOCK  # noqa: E731

    memory_tracer = Tracer()
    memory_transport = TranscriptTransport()
    memory_report = run_loadtest(
        CONFIG,
        tracer=memory_tracer,
        transport=memory_transport,
        clock=clock,
        scenario=build_scenario(SCENARIO_CONFIG),
    )

    socket_tracer = Tracer()
    socket_report, socket_fingerprints = run_socket_loadtest(
        CONFIG,
        scenario_config=SCENARIO_CONFIG,
        tracer=socket_tracer,
        clock=clock,
        record_transcript=True,
    )
    return (
        memory_report,
        tuple(memory_transport.fingerprints),
        memory_tracer,
        socket_report,
        socket_fingerprints,
        socket_tracer,
    )


class TestCrossPlaneEquivalence:
    def test_transcripts_are_byte_identical(self, paired_runs):
        _, memory_fps, _, _, socket_fps, _ = paired_runs
        assert len(memory_fps) > 0
        assert socket_fps == memory_fps

    def test_span_signatures_match(self, paired_runs):
        _, _, memory_tracer, _, _, socket_tracer = paired_runs
        memory_sig = tuple(span.signature() for span in memory_tracer.roots)
        socket_sig = tuple(span.signature() for span in socket_tracer.roots)
        assert len(memory_sig) > 0
        assert socket_sig == memory_sig

    def test_decisions_match(self, paired_runs):
        memory_report, _, _, socket_report, _, _ = paired_runs
        assert len(socket_report.decisions) == CONFIG.num_requests
        assert [
            (d.su_id, d.status, d.batch_size) for d in socket_report.decisions
        ] == [(d.su_id, d.status, d.batch_size) for d in memory_report.decisions]

    def test_socket_plane_recorded_transport_metrics(self, paired_runs):
        _, _, _, socket_report, _, _ = paired_runs
        counters = socket_report.metrics["counters"]
        families = {key.split("{", 1)[0] for key in counters}
        # The in-memory accounting funnel still runs (transport_*) and
        # the real wire adds its own families (netd_*).
        assert "transport_records_total" in families
        assert "transport_bytes_total" in families
        assert "netd_frames_total" in families
        assert "netd_bytes_total" in families
        assert "netd_dials_total" in families
