"""Supervisor unit behaviour: readiness, failure surfacing, addressing.

The full lifecycle (spawn → bootstrap → serve → SIGKILL → restart) is
exercised end to end by ``test_process_chaos.py``; these tests pin the
edges that don't need a whole deployment.
"""

import json

import pytest

from repro.errors import TransportError
from repro.netd.supervisor import ProcessSupervisor


@pytest.fixture()
def supervisor(tmp_path):
    sup = ProcessSupervisor(workdir=tmp_path / "run", monitor=False)
    yield sup
    sup.stop_all()


class TestFailureSurfacing:
    def test_worker_that_dies_before_ready_reports_its_stderr(self, supervisor):
        # A shard worker without --authority exits immediately with a
        # typed complaint; wait_ready must surface it, not time out.
        supervisor.start("shard-x", "shard", extra_args=())
        with pytest.raises(TransportError, match="--authority"):
            supervisor.wait_ready(["shard-x"], timeout_s=30.0)

    def test_unknown_worker_name(self, supervisor):
        with pytest.raises(TransportError, match="no supervised worker"):
            supervisor.address("ghost")
        with pytest.raises(TransportError, match="no supervised worker"):
            supervisor.ensure_running("ghost")


class TestAddressing:
    def test_stale_ready_file_from_dead_pid_is_never_trusted(self, supervisor):
        supervisor.start("shard-y", "shard", extra_args=())
        handle = supervisor._handles["shard-y"]
        handle.process.wait(timeout=30)  # exits: no --authority
        # Forge a readiness file claiming the (now dead) pid bound a port.
        supervisor._ready_file("shard-y").write_text(
            json.dumps(
                {"name": "shard-y", "port": 45678, "pid": handle.process.pid}
            ),
            encoding="utf-8",
        )
        assert not supervisor.is_running("shard-y")
        with pytest.raises(TransportError, match="no live address"):
            supervisor.address("shard-y")

    def test_worker_names_sorted(self, supervisor):
        supervisor.start("b", "shard", extra_args=())
        supervisor.start("a", "shard", extra_args=())
        assert supervisor.worker_names() == ("a", "b")
        assert supervisor.restarts("a") == 0
