"""Socket-plane partition drills: wire-typed fencing and gray slowness.

``proc-split-brain`` deposes a live, serving worker and proves the
stale lease dies *over the wire* — the worker raises, the error frame
carries the type, and the broker rethrows a real FencedError.
``proc-gray-slow`` is the gray-failure regression on real sockets: a
worker that answers everything 400 ms late is suspected and routed
around, never spuriously restarted or promoted.
"""

import pytest

from repro.errors import ChaosPlanError
from repro.netd.chaos import PARTITION_PLAN_NAMES, run_partition_chaos
from repro.telemetry import MetricsRegistry


@pytest.fixture(scope="module")
def split_brain():
    registry = MetricsRegistry()
    return run_partition_chaos("proc-split-brain", metrics=registry), registry


@pytest.fixture(scope="module")
def gray_slow():
    registry = MetricsRegistry()
    return run_partition_chaos("proc-gray-slow", metrics=registry), registry


class TestProcSplitBrain:
    def test_stale_commit_rejected_with_typed_error(self, split_brain):
        result, _ = split_brain
        assert result.fenced_rejections == 1
        assert any(
            "rejected over the wire" in note for note in result.notes
        ), result.notes
        assert not any("SPLIT BRAIN" in note for note in result.notes)

    def test_transcript_and_licenses_survive_the_promotion(self, split_brain):
        result, _ = split_brain
        assert result.ok, result.notes
        assert result.transcript_equal
        assert result.licenses_valid

    def test_fencing_metric_families_scraped(self, split_brain):
        _, registry = split_brain
        text = registry.to_prometheus()
        assert 'fencing_tokens_current{shard="shard-0"} 2' in text
        assert 'fenced_requests_total{shard="shard-0"} 1' in text
        assert 'promotions_total{reason="failover"} 1' in text
        assert 'promotions_total{reason="manual"} 1' in text


class TestProcGraySlow:
    def test_slow_worker_is_suspected_never_promoted(self, gray_slow):
        result, _ = gray_slow
        assert result.ok, result.notes
        assert result.suspects >= 1
        assert result.failovers == 0
        assert any("promoted none" in note for note in result.notes)

    def test_rtt_histogram_populated(self, gray_slow):
        _, registry = gray_slow
        assert "heartbeat_rtt_seconds" in registry.to_prometheus()


class TestValidation:
    def test_unknown_plan_rejected(self):
        with pytest.raises(ChaosPlanError, match="unknown partition plan"):
            run_partition_chaos("proc-meteor")

    def test_plan_names_are_proc_prefixed(self):
        assert all(p.startswith("proc-") for p in PARTITION_PLAN_NAMES)
