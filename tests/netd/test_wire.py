"""Wire codecs for shard sub-queries, control frames, and typed errors."""

import pytest

from repro.errors import (
    ProtocolError,
    SerializationError,
    TransportError,
)
from repro.netd.wire import (
    decode_control,
    decode_error,
    decode_phase1_request,
    decode_phase1_response,
    decode_phase2_request,
    decode_phase2_response,
    encode_control,
    encode_error,
    encode_phase1_request,
    encode_phase1_response,
    encode_phase2_request,
    encode_phase2_response,
    raise_remote_error,
)
from repro.cluster.shard import (
    ShardPhase1Request,
    ShardPhase1Response,
    ShardPhase2Request,
    ShardPhase2Response,
)
from repro.pisa.blinding import CellBlinding


def ct_matrix(pk, rng, rows, cols, base=0):
    return tuple(
        tuple(pk.encrypt(base + r * cols + c, rng=rng) for c in range(cols))
        for r in range(rows)
    )


class TestShardCodecs:
    def test_phase1_request_roundtrip(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        request = ShardPhase1Request(
            round_id="r-1",
            su_id="su-1",
            shard_id="shard-0",
            columns=(1, 4),
            blocks=(3, 9),
            matrix=ct_matrix(pk, fresh_rng, 2, 2),
            blindings=(
                (
                    CellBlinding(alpha=3, beta=17, epsilon=1),
                    CellBlinding(alpha=5, beta=23, epsilon=-1),
                ),
                (
                    CellBlinding(alpha=7, beta=29, epsilon=-1),
                    CellBlinding(alpha=11, beta=31, epsilon=1),
                ),
            ),
            obfuscators=((None, 41), (43, None)),
        )
        decoded = decode_phase1_request(encode_phase1_request(request), pk)
        assert decoded.round_id == "r-1"
        assert decoded.columns == (1, 4)
        assert decoded.blocks == (3, 9)
        assert decoded.blindings == request.blindings
        assert decoded.obfuscators == ((None, 41), (43, None))
        assert [
            [sk.decrypt(ct) for ct in row] for row in decoded.matrix
        ] == [[0, 1], [2, 3]]

    def test_phase1_response_roundtrip(self, keypair, fresh_rng):
        pk = keypair.public_key
        response = ShardPhase1Response(
            round_id="r-1",
            shard_id="shard-1",
            columns=(0, 2, 5),
            matrix=ct_matrix(pk, fresh_rng, 2, 3),
        )
        decoded = decode_phase1_response(encode_phase1_response(response), pk)
        assert decoded.columns == (0, 2, 5)
        assert len(decoded.matrix) == 2 and len(decoded.matrix[0]) == 3

    def test_phase1_fence_token_roundtrips(self, keypair, fresh_rng):
        pk = keypair.public_key
        request = ShardPhase1Request(
            round_id="r-1",
            su_id="su-1",
            shard_id="shard-0",
            columns=(0,),
            blocks=(0,),
            matrix=ct_matrix(pk, fresh_rng, 1, 1),
            blindings=((CellBlinding(alpha=3, beta=17, epsilon=1),),),
            obfuscators=((None,),),
            fence_token=42,
        )
        decoded = decode_phase1_request(encode_phase1_request(request), pk)
        assert decoded.fence_token == 42
        # The default (unfenced) token survives too — legacy encoders.
        import dataclasses

        unfenced = dataclasses.replace(request, fence_token=0)
        decoded = decode_phase1_request(encode_phase1_request(unfenced), pk)
        assert decoded.fence_token == 0

    def test_phase2_request_roundtrip(self, second_keypair, fresh_rng):
        su_pk = second_keypair.public_key  # phase 2 runs under the SU's key
        request = ShardPhase2Request(
            round_id="r-2",
            shard_id="shard-0",
            columns=(2,),
            matrix=ct_matrix(su_pk, fresh_rng, 1, 2),
            epsilons=((1, -1),),
        )
        decoded = decode_phase2_request(encode_phase2_request(request), su_pk)
        assert decoded.epsilons == ((1, -1),)
        assert decoded.fence_token == 0

    def test_phase2_fence_token_roundtrips(self, second_keypair, fresh_rng):
        su_pk = second_keypair.public_key
        request = ShardPhase2Request(
            round_id="r-2",
            shard_id="shard-0",
            columns=(2,),
            matrix=ct_matrix(su_pk, fresh_rng, 1, 2),
            epsilons=((1, -1),),
            fence_token=7,
        )
        decoded = decode_phase2_request(encode_phase2_request(request), su_pk)
        assert decoded.fence_token == 7

    def test_phase2_response_roundtrip(self, second_keypair, fresh_rng):
        su_pk, su_sk = second_keypair.public_key, second_keypair.private_key
        response = ShardPhase2Response(
            round_id="r-2",
            shard_id="shard-0",
            cell_count=6,
            partial_q=su_pk.encrypt(-4, rng=fresh_rng),
        )
        decoded = decode_phase2_response(encode_phase2_response(response), su_pk)
        assert decoded.cell_count == 6
        assert su_sk.decrypt(decoded.partial_q) == -4

    def test_trailing_bytes_rejected(self, keypair, fresh_rng):
        pk = keypair.public_key
        response = ShardPhase1Response(
            round_id="r", shard_id="s", columns=(0,), matrix=ct_matrix(pk, fresh_rng, 1, 1)
        )
        with pytest.raises(SerializationError, match="trailing"):
            decode_phase1_response(encode_phase1_response(response) + b"\x00", pk)


class TestControlFrames:
    def test_header_and_attachments_roundtrip(self):
        payload = encode_control({"name": "shard-0", "epoch": 3}, b"blob-a", b"")
        obj, attachments = decode_control(payload, num_attachments=2)
        assert obj == {"name": "shard-0", "epoch": 3}
        assert attachments == [b"blob-a", b""]

    def test_unconsumed_attachments_rejected(self):
        payload = encode_control({}, b"blob")
        with pytest.raises(SerializationError, match="trailing"):
            decode_control(payload)  # caller forgot num_attachments

    def test_non_object_header_rejected(self):
        from repro.crypto.serialization import encode_bytes

        with pytest.raises(SerializationError, match="JSON object"):
            decode_control(encode_bytes(b"[1,2]"))

    def test_garbage_header_rejected(self):
        from repro.crypto.serialization import encode_bytes

        with pytest.raises(SerializationError, match="malformed"):
            decode_control(encode_bytes(b"\xff\xfe not json"))


class TestTypedRemoteErrors:
    def test_known_class_reraised_typed(self):
        payload = encode_error(ProtocolError("SU 'su-9' is not registered"))
        assert decode_error(payload) == (
            "ProtocolError",
            "SU 'su-9' is not registered",
        )
        with pytest.raises(ProtocolError, match="stp: SU 'su-9'"):
            raise_remote_error(payload, "stp")

    def test_unknown_class_degrades_to_transport_error(self):
        payload = encode_error(ValueError("not a repro error"))
        with pytest.raises(TransportError, match="ValueError"):
            raise_remote_error(payload, "shard-0")
