"""AuthorityServer handler threading: dispatch runs off the event loop.

Regression suite for the ASY001 finding the interprocedural audit
surfaced: ``_dispatch`` does blocking work (journal fsync on draws, key
serialization in bootstrap providers) and used to run directly on the
NetLoop, stalling every authority client behind it.  It now runs under
``asyncio.to_thread`` with a dispatch lock keeping the draw stream
single-file.  These tests pin both properties, plus the audit-clean
status of the whole socket plane.
"""

import pathlib
import threading

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.netd.remote import AuthorityServer, RemoteRandomSource
from repro.netd.transport import NetLoop, PeerClient


class RecordingRng(DeterministicRandomSource):
    """Records the thread each draw executes on."""

    def __init__(self) -> None:
        super().__init__(seed=7)
        self.draw_threads: list[int] = []

    def randbits(self, bits: int) -> int:
        self.draw_threads.append(threading.get_ident())
        return super().randbits(bits)


@pytest.fixture()
def netloop():
    loop = NetLoop(name="test-authority-loop")
    yield loop
    loop.close()


def _client(netloop, address) -> PeerClient:
    return PeerClient("authority", lambda: address, netloop, pool_size=2)


class TestOffLoopDispatch:
    def test_rand_draws_execute_off_the_loop_thread(self, netloop):
        rng = RecordingRng()
        server = AuthorityServer(netloop, rng, clock=lambda: 0.0)
        address = server.start()
        peer = _client(netloop, address)
        try:
            remote = RemoteRandomSource(peer)
            values = [remote.randbits(64) for _ in range(3)]
            assert all(0 <= v < 2**64 for v in values)
            assert len(rng.draw_threads) == 3
            loop_thread = netloop._thread.ident
            assert all(t != loop_thread for t in rng.draw_threads), (
                "blocking draw ran on the event loop thread"
            )
        finally:
            peer.close()
            server.stop()

    def test_remote_draws_match_local_stream(self, netloop):
        """Off-loop dispatch must not perturb the draw stream itself."""
        server = AuthorityServer(netloop, DeterministicRandomSource(seed=7), clock=lambda: 0.0)
        address = server.start()
        peer = _client(netloop, address)
        try:
            remote = RemoteRandomSource(peer)
            local = DeterministicRandomSource(seed=7)
            assert [remote.randbits(32) for _ in range(8)] == [
                local.randbits(32) for _ in range(8)
            ]
        finally:
            peer.close()
            server.stop()

    def test_concurrent_clients_see_disjoint_draws(self, netloop):
        """The dispatch lock serialises draws into one stream: two racing
        clients never observe the same raw draw twice."""
        server = AuthorityServer(netloop, DeterministicRandomSource(seed=11), clock=lambda: 0.0)
        address = server.start()
        peers = [_client(netloop, address) for _ in range(2)]
        try:
            results: list[list[int]] = [[], []]

            def drain(i: int) -> None:
                remote = RemoteRandomSource(peers[i])
                for _ in range(16):
                    results[i].append(remote.randbits(48))

            threads = [
                threading.Thread(target=drain, args=(i,)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            combined = results[0] + results[1]
            assert len(combined) == 32
            assert len(set(combined)) == 32
        finally:
            for peer in peers:
                peer.close()
            server.stop()


class TestSocketPlaneAuditClean:
    def test_netd_has_no_concurrency_or_determinism_findings(self):
        """Audit guard: the socket plane stays free of ASY0xx/DET0xx
        findings without waivers — the fixes, not baselines, hold."""
        from repro.audit import AuditConfig, AuditEngine

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        config = AuditConfig(
            select=frozenset(
                {"ASY001", "ASY002", "ASY003", "ASY004", "ASY005"}
                | {"DET001", "DET002", "DET003", "DET004", "DET005"}
            )
        )
        findings = AuditEngine(config).run([str(repo_root / "src" / "repro" / "netd")])
        assert findings == [], [f.render() for f in findings]
