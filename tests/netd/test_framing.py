"""Frame envelope properties: round-trips, corruption rejection, streaming.

The frame layer must carry every canonical protocol encoding verbatim
(the socket plane adds framing, not a second serialisation format) and
refuse anything torn, truncated, or bit-flipped — a TCP stream with a
corrupt frame has no trustworthy continuation.
"""

import random
import zlib

import pytest

from repro.errors import IntegrityError
from repro.netd.framing import (
    FRAME_MAGIC,
    FRAME_OVERHEAD,
    Frame,
    FrameDecoder,
    decode_frame,
    encode_frame,
)
from repro.netd.wire import PROTOCOL_KINDS
from repro.pisa.license import TransmissionLicense
from repro.pisa.messages import (
    LicenseResponse,
    PUUpdateMessage,
    SignExtractionRequest,
    SignExtractionResponse,
    SURequestMessage,
)


def ct_matrix(pk, rng, rows, cols, base=0):
    return tuple(
        tuple(pk.encrypt(base + r * cols + c, rng=rng) for c in range(cols))
        for r in range(rows)
    )


@pytest.fixture()
def protocol_messages(keypair, second_keypair, fresh_rng):
    """One instance of every ``pisa.messages`` type (group + SU keys)."""
    group_pk = keypair.public_key
    su_pk = second_keypair.public_key
    lic = TransmissionLicense(
        su_id="su-1",
        issuer_id="sdc",
        request_digest=b"\x09" * 32,
        channels=(0, 2),
        issued_at=11,
    )
    return [
        PUUpdateMessage(
            pu_id="pu-3",
            block_index=12,
            ciphertexts=tuple(group_pk.encrypt(v, rng=fresh_rng) for v in (-5, 0, 7)),
        ),
        SURequestMessage(
            su_id="su-1",
            region_blocks=(0, 3, 5),
            matrix=ct_matrix(group_pk, fresh_rng, 2, 3),
        ),
        SignExtractionRequest(
            round_id="round-9", su_id="su-1", matrix=ct_matrix(group_pk, fresh_rng, 2, 2)
        ),
        SignExtractionResponse(
            round_id="round-9", su_id="su-1", matrix=ct_matrix(su_pk, fresh_rng, 2, 2)
        ),
        LicenseResponse(license=lic, encrypted_signature=su_pk.encrypt(1, rng=fresh_rng)),
    ]


class TestEveryProtocolMessageThroughFrames:
    def test_every_message_type_has_a_kind(self, protocol_messages):
        assert {type(m) for m in protocol_messages} == set(PROTOCOL_KINDS)

    def test_payload_bytes_survive_framing_verbatim(self, protocol_messages):
        for seq, message in enumerate(protocol_messages):
            payload = message.to_bytes()
            kind = PROTOCOL_KINDS[type(message)]
            encoded = encode_frame(kind, seq, payload)
            assert len(encoded) > len(payload) + FRAME_OVERHEAD  # kind+seq too
            frame, consumed = decode_frame(encoded)
            assert consumed == len(encoded)
            assert frame == Frame(kind, seq, payload)

    def test_decoded_payload_reconstructs_message(
        self, protocol_messages, keypair, second_keypair
    ):
        group_pk = keypair.public_key
        su_pk = second_keypair.public_key
        keys = {
            PUUpdateMessage: group_pk,
            SURequestMessage: group_pk,
            SignExtractionRequest: group_pk,
            SignExtractionResponse: su_pk,
            LicenseResponse: su_pk,
        }
        for message in protocol_messages:
            kind = PROTOCOL_KINDS[type(message)]
            frame, _ = decode_frame(encode_frame(kind, 1, message.to_bytes()))
            decoded = type(message).from_bytes(frame.payload, keys[type(message)])
            assert decoded.to_bytes() == message.to_bytes()


class TestCorruptionRejection:
    def test_bad_magic(self):
        data = bytearray(encode_frame("ping", 0, b"x"))
        data[0] ^= 0xFF
        with pytest.raises(IntegrityError, match="magic"):
            decode_frame(bytes(data))

    def test_truncated_inside_length_prefix(self):
        data = encode_frame("ping", 0, b"x")
        with pytest.raises(IntegrityError, match="length prefix"):
            decode_frame(data[:3])

    def test_torn_frame_before_crc(self):
        data = encode_frame("ping", 0, b"payload")
        with pytest.raises(IntegrityError, match="truncated"):
            decode_frame(data[:-3])

    def test_crc_mismatch(self):
        data = bytearray(encode_frame("ping", 0, b"payload"))
        data[-6] ^= 0x01  # flip a body byte, leave the CRC alone
        with pytest.raises(IntegrityError, match="CRC"):
            decode_frame(bytes(data))

    def test_oversize_length_rejected_before_reading_body(self):
        data = encode_frame("ping", 0, b"x" * 64)
        with pytest.raises(IntegrityError, match="cap"):
            decode_frame(data, max_frame_bytes=16)

    def test_trailing_garbage_in_body(self):
        body = encode_frame("ping", 0, b"x")[6:-4] + b"\x00"
        raw = FRAME_MAGIC + len(body).to_bytes(4, "big") + body
        raw += zlib.crc32(body).to_bytes(4, "big")
        with pytest.raises(IntegrityError, match="trailing"):
            decode_frame(raw)

    def test_every_single_byte_flip_is_detected(self):
        """Fuzz: no single-byte corruption ever yields a wrong frame."""
        original = encode_frame("phase1", 42, b"\x01\x02\x03" * 20)
        rng = random.Random(7)
        for _ in range(200):
            index = rng.randrange(len(original))
            flip = rng.randrange(1, 256)
            corrupt = bytearray(original)
            corrupt[index] ^= flip
            try:
                frame, _ = decode_frame(bytes(corrupt))
            except IntegrityError:
                continue
            pytest.fail(f"byte {index} xor {flip:#x} decoded as {frame!r}")


class TestFrameDecoderStreaming:
    def test_byte_at_a_time_feeding(self):
        frames = [
            encode_frame("a", 0, b"first"),
            encode_frame("b", 1, b""),
            encode_frame("c", 2, b"x" * 300),
        ]
        decoder = FrameDecoder()
        out = []
        for byte in b"".join(frames):
            out.extend(decoder.feed(bytes([byte])))
        assert [(f.kind, f.seq, f.payload) for f in out] == [
            ("a", 0, b"first"),
            ("b", 1, b""),
            ("c", 2, b"x" * 300),
        ]
        assert decoder.pending_bytes == 0

    def test_random_chunk_boundaries(self):
        rng = random.Random(13)
        frames = [
            encode_frame(f"k{i}", i, bytes(rng.randrange(256) for _ in range(rng.randrange(200))))
            for i in range(20)
        ]
        stream = b"".join(frames)
        decoder = FrameDecoder()
        out = []
        offset = 0
        while offset < len(stream):
            step = rng.randrange(1, 64)
            out.extend(decoder.feed(stream[offset : offset + step]))
            offset += step
        assert len(out) == 20
        assert [f.seq for f in out] == list(range(20))

    def test_stream_corruption_poisons_the_connection(self):
        decoder = FrameDecoder()
        good = encode_frame("a", 0, b"ok")
        assert len(decoder.feed(good)) == 1
        bad = bytearray(encode_frame("b", 1, b"bad"))
        bad[0] ^= 0xFF
        with pytest.raises(IntegrityError):
            decoder.feed(bytes(bad))
