"""Worker graceful drain and supervisor readiness hygiene.

A SIGTERMed worker must finish what it is serving, flush its durable
store, revoke its readiness file, and exit 0 — the supervisor (or an
operator's process manager) must never observe "ready" from a process
that has already closed its store.  And a supervisor reusing a workdir
must sweep readiness files left behind by SIGKILLed predecessors.
"""

import json
import signal

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.serialization import encode_bytes, encode_public_key
from repro.netd.remote import AuthorityServer
from repro.netd.supervisor import ProcessSupervisor
from repro.netd.transport import NetLoop


@pytest.fixture()
def authority(keypair):
    loop = NetLoop(name="drain-test-loop")
    server = AuthorityServer(
        loop, DeterministicRandomSource(seed=7), clock=lambda: 0.0
    )
    address = server.start()
    header = {
        "shard_id": "shard-t",
        "blocks": [],
        "pus": [],
        "epoch": -1,
        "scenario": {"seed": 5},
        "fence_token": 3,
    }
    payload = encode_bytes(
        json.dumps(header).encode("utf-8")
    ) + encode_bytes(encode_public_key(keypair.public_key))
    server.register_bootstrap("shard-t", lambda: payload)
    yield address
    server.stop()
    loop.close()


class TestGracefulDrain:
    def test_sigterm_revokes_readiness_and_exits_zero(
        self, authority, tmp_path
    ):
        host, port = authority
        supervisor = ProcessSupervisor(workdir=tmp_path / "run", monitor=False)
        try:
            supervisor.start(
                "shard-t",
                "shard",
                extra_args=(
                    "--authority",
                    f"{host}:{port}",
                    "--store",
                    str(tmp_path / "shard-t.sqlite3"),
                ),
                restart=False,
            )
            supervisor.wait_ready(["shard-t"], timeout_s=60.0)
            ready = supervisor._ready_file("shard-t")
            assert ready.exists()
            supervisor.kill("shard-t", signal.SIGTERM)
            code = supervisor.wait_exit("shard-t", timeout_s=30.0)
            # 0, not a signal death: the worker drained and left on its
            # own terms — and took its readiness claim with it.
            assert code == 0
            assert not ready.exists()
        finally:
            supervisor.stop_all()


class TestStaleReadinessSweep:
    def test_reused_workdir_is_swept_on_construction(self, tmp_path):
        workdir = tmp_path / "run"
        workdir.mkdir()
        stale = workdir / "shard-9.ready.json"
        stale.write_text(
            json.dumps({"name": "shard-9", "port": 1, "pid": 1}),
            encoding="utf-8",
        )
        bystander = workdir / "shard-9.log"
        bystander.write_text("old logs survive", encoding="utf-8")
        supervisor = ProcessSupervisor(workdir=workdir, monitor=False)
        try:
            assert not stale.exists()
            assert bystander.exists()  # only readiness claims are swept
        finally:
            supervisor.stop_all()
