"""SIGKILL a real shard subprocess mid-phase-1; recovery must be invisible.

The supervisor restarts the worker, the worker re-pulls its state from
the bootstrap provider, the router re-sends the identical sub-query —
and the transcript stays byte-identical to an in-memory control run
with every license valid.  Cross-plane determinism and crash recovery,
proven in one schedule.
"""

import pytest

from repro.netd.chaos import PROC_PLAN_NAME, run_process_chaos
from repro.telemetry import MetricsRegistry


@pytest.fixture(scope="module")
def result():
    return run_process_chaos(metrics=MetricsRegistry())


class TestProcessKillRecovery:
    def test_fault_actually_fired(self, result):
        assert any("SIGKILL shard-0" in note for note in result.notes), result.notes

    def test_shard_was_restarted(self, result):
        assert any("restarts(shard-0)=1" in note for note in result.notes), result.notes

    def test_failover_path_was_exercised(self, result):
        assert result.failovers >= 1

    def test_transcript_byte_identical_to_in_memory_control(self, result):
        assert result.transcript_equal, result.notes
        assert result.exact_segments == result.rounds + 1  # enrolment + rounds

    def test_every_license_issued_and_valid(self, result):
        assert result.licenses_valid, result.notes

    def test_verdict_renders_like_the_simulated_plans(self, result):
        assert result.ok
        assert result.plans == (PROC_PLAN_NAME,)
        d = result.to_dict()
        assert d["transcript_equal"] is True
        assert d["replayed_draws"] == -1  # no journal replay on this plane
