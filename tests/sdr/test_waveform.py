"""Unit tests for packet waveform synthesis."""

import numpy as np
import pytest

from repro.errors import RadioError
from repro.sdr.waveform import PacketBurst, packet_waveform, received_trace


class TestPacketBurst:
    def test_validation(self):
        with pytest.raises(RadioError):
            PacketBurst(start_s=0.0, duration_s=0.0, amplitude=1.0, source_id="x")
        with pytest.raises(RadioError):
            PacketBurst(start_s=0.0, duration_s=1e-6, amplitude=-1.0, source_id="x")


class TestPacketWaveform:
    def test_unit_peak(self):
        rng = np.random.default_rng(0)
        wf = packet_waveform(1000, rng)
        assert np.max(np.abs(wf)) <= 1.0 + 1e-9

    def test_ramps_attenuate_edges(self):
        rng = np.random.default_rng(0)
        wf = packet_waveform(1000, rng, ramp_fraction=0.1)
        assert abs(wf[0]) < 0.05
        assert abs(wf[-1]) < 0.05

    def test_too_short_rejected(self):
        with pytest.raises(RadioError):
            packet_waveform(2, np.random.default_rng(0))


class TestReceivedTrace:
    def test_sample_count(self):
        trace = received_trace([], window_s=1e-3, sample_rate_hz=20e6)
        assert len(trace) == 20_000

    def test_noise_floor_without_bursts(self):
        trace = received_trace([], window_s=1e-3, sample_rate_hz=1e6, noise_rms=1e-3)
        assert np.std(trace) == pytest.approx(1e-3, rel=0.2)

    def test_burst_raises_amplitude_in_window(self):
        burst = PacketBurst(start_s=0.2e-3, duration_s=0.1e-3, amplitude=0.5,
                            source_id="su1")
        trace = received_trace([burst], window_s=1e-3, sample_rate_hz=1e6,
                               noise_rms=1e-4)
        inside = trace[250:280]
        outside = trace[:150]
        assert np.max(np.abs(inside)) > 5 * np.max(np.abs(outside))

    def test_two_bursts_two_amplitudes(self):
        """Figure 8: two SUs at different distances → distinct amplitudes."""
        bursts = [
            PacketBurst(start_s=0.05e-3, duration_s=0.05e-3, amplitude=0.8,
                        source_id="su1"),
            PacketBurst(start_s=0.2e-3, duration_s=0.05e-3, amplitude=0.2,
                        source_id="su2"),
        ]
        trace = received_trace(bursts, window_s=0.35e-3, sample_rate_hz=20e6,
                               noise_rms=1e-4)
        peak_1 = np.max(np.abs(trace[1000:2000]))
        peak_2 = np.max(np.abs(trace[4000:5000]))
        assert peak_1 > 2 * peak_2

    def test_out_of_window_bursts_ignored(self):
        burst = PacketBurst(start_s=5.0, duration_s=1e-6, amplitude=10.0,
                            source_id="late")
        trace = received_trace([burst], window_s=1e-3, sample_rate_hz=1e6,
                               noise_rms=1e-4)
        assert np.max(np.abs(trace)) < 0.01

    def test_validation(self):
        with pytest.raises(RadioError):
            received_trace([], window_s=0.0, sample_rate_hz=1e6)
