"""Integration tests for the §VI-B four-scenario testbed."""

import numpy as np
import pytest

from repro.sdr.testbed import SdrTestbed


@pytest.fixture(scope="module")
def testbed():
    return SdrTestbed(seed=1)


@pytest.fixture(scope="module")
def results(testbed):
    return testbed.run_all()


class TestScenario1:
    def test_pu_hears_two_amplitudes(self, results):
        """Figure 8: two packets with different amplitudes at the PU."""
        trace = results[0].traces["pu"]
        assert len(trace) == 7000  # 0.35 ms at 20 MHz
        # Packet windows: su1 at [0, 60µs], su2 at [160µs, 220µs].
        peak_su1 = np.max(np.abs(trace[100:1100]))
        peak_su2 = np.max(np.abs(trace[3300:4300]))
        noise = np.max(np.abs(trace[5500:6900]))
        assert peak_su1 > 3 * noise
        assert peak_su2 > 3 * noise
        assert peak_su1 != pytest.approx(peak_su2, rel=0.2)

    def test_nearer_su_is_louder(self, testbed, results):
        trace = results[0].traces["pu"]
        peak_su1 = np.max(np.abs(trace[100:1100]))
        peak_su2 = np.max(np.abs(trace[3300:4300]))
        # su1 is closer to the PU than su2 in the default geometry —
        # but su2 transmits at lower power too; both push the same way.
        assert peak_su1 > peak_su2


class TestScenario2:
    def test_sus_halted(self, testbed, results):
        assert not testbed.su1_device.transmitting_allowed or any(
            "granted" in e for e in results[3].events
        )
        assert any("update" in e for e in results[1].events)

    def test_pu_now_active(self, testbed):
        assert testbed.coordinator.pu_client("pu").pu.is_active


class TestScenario3:
    def test_requests_sent(self, results):
        assert len(results[2].events) == 2
        assert all("encrypted request" in e for e in results[2].events)


class TestScenario4:
    def test_paper_outcome(self, results):
        """The paper's run: the distant/quiet SU2 granted, SU1 denied."""
        reports = results[3].reports
        assert not reports["su1"].granted
        assert reports["su2"].granted

    def test_granted_su_transmits_11_packets(self, testbed, results):
        assert any("11 packets" in e for e in results[3].events)
        sources = [b.source_id for b in testbed.medium.heard["pu"]]
        assert sources.count("su2") >= 11

    def test_trace_covers_20ms(self, results):
        trace = results[3].traces["pu"]
        assert len(trace) == 400_000  # 20 ms at 20 MHz

    def test_device_permissions_follow_decisions(self, testbed):
        assert not testbed.su1_device.transmitting_allowed
        assert testbed.su2_device.transmitting_allowed


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = SdrTestbed(seed=7).run_all()[3].reports
        b = SdrTestbed(seed=7).run_all()[3].reports
        assert {k: v.granted for k, v in a.items()} == {
            k: v.granted for k, v in b.items()
        }
