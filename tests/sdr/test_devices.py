"""Unit tests for simulated USRP devices and the shared medium."""

import numpy as np
import pytest

from repro.errors import RadioError
from repro.sdr.devices import USRP_N210, USRP_X310, RadioMedium, SimulatedUSRP


@pytest.fixture()
def medium():
    medium = RadioMedium()
    for device in (
        SimulatedUSRP("pu", USRP_X310, x_m=0.0, y_m=0.0),
        SimulatedUSRP("su1", USRP_N210, x_m=10.0, y_m=0.0),
        SimulatedUSRP("su2", USRP_N210, x_m=100.0, y_m=0.0),
    ):
        medium.register(device)
    return medium


class TestRegistration:
    def test_duplicate_rejected(self, medium):
        with pytest.raises(RadioError):
            medium.register(SimulatedUSRP("pu", USRP_X310, 1.0, 1.0))

    def test_power_cap_enforced(self):
        with pytest.raises(RadioError):
            SimulatedUSRP("x", USRP_N210, 0.0, 0.0, tx_power_dbm=30.0)


class TestPropagation:
    def test_closer_is_louder(self, medium):
        """Figure 8's premise: amplitude depends on distance."""
        near = medium.amplitude_between("su1", "pu")
        far = medium.amplitude_between("su2", "pu")
        assert near > far
        # Free-space amplitude scales as 1/d → 10x distance ≈ 10x weaker.
        assert near / far == pytest.approx(10.0, rel=0.05)

    def test_transmit_heard_by_others_not_self(self, medium):
        medium.transmit("su1", duration_s=60e-6)
        assert medium.heard["pu"][0].source_id == "su1"
        assert medium.heard["su2"][0].source_id == "su1"
        assert medium.heard["su1"] == []

    def test_clock_advances(self, medium):
        medium.transmit("su1", duration_s=60e-6)
        assert medium.clock_s == pytest.approx(60e-6)
        medium.advance(1e-3)
        assert medium.clock_s == pytest.approx(60e-6 + 1e-3)

    def test_time_cannot_reverse(self, medium):
        with pytest.raises(RadioError):
            medium.advance(-1.0)

    def test_permission_gate(self, medium):
        medium.devices["su1"].transmitting_allowed = False
        with pytest.raises(RadioError):
            medium.transmit("su1", duration_s=60e-6)

    def test_unknown_transmitter(self, medium):
        with pytest.raises(RadioError):
            medium.transmit("ghost", duration_s=1e-6)


class TestObservation:
    def test_trace_shows_burst(self, medium):
        medium.transmit("su1", duration_s=60e-6)
        trace = medium.devices["pu"].observe(medium, window_s=0.2e-3,
                                             sample_rate_hz=20e6)
        assert len(trace) == 4000
        assert np.max(np.abs(trace)) > 1e-3

    def test_since_filter(self, medium):
        medium.transmit("su1", duration_s=60e-6)
        cut = medium.clock_s
        medium.advance(1e-3)
        trace = medium.devices["pu"].observe(
            medium, window_s=0.2e-3, sample_rate_hz=20e6, since_s=cut
        )
        assert np.max(np.abs(trace)) < 0.01  # earlier burst excluded

    def test_sample_rate_cap(self, medium):
        with pytest.raises(RadioError):
            medium.devices["su1"].observe(medium, window_s=1e-3,
                                          sample_rate_hz=50e6)  # N210 caps at 25M

    def test_heard_sources(self, medium):
        medium.transmit("su1", duration_s=10e-6)
        medium.transmit("su2", duration_s=10e-6)
        assert medium.devices["pu"].heard_sources(medium) == ["su1", "su2"]


class TestCarrierSense:
    def test_idle_channel_not_busy(self, medium):
        assert not medium.channel_busy("pu")

    def test_busy_during_overlapping_burst(self, medium):
        # su1 starts a long burst; clock sits inside its airtime after a
        # second (shorter) event advances less than the burst length.
        medium.transmit("su1", duration_s=500e-6)
        medium.clock_s -= 400e-6  # rewind into the burst window
        assert medium.channel_busy("pu")

    def test_not_busy_after_burst_ends(self, medium):
        medium.transmit("su1", duration_s=50e-6)
        medium.advance(1e-3)
        assert not medium.channel_busy("pu")

    def test_threshold_filters_weak_signals(self, medium):
        medium.transmit("su2", duration_s=500e-6)  # far transmitter
        medium.clock_s -= 400e-6
        near_amplitude = medium.heard["pu"][-1].amplitude
        assert medium.channel_busy("pu", threshold=near_amplitude / 2)
        assert not medium.channel_busy("pu", threshold=near_amplitude * 2)

    def test_carrier_sense_defers(self, medium):
        medium.transmit("su1", duration_s=500e-6)
        medium.clock_s -= 400e-6  # su2 wakes up mid-burst
        heard_before = len(medium.heard["pu"])
        result = medium.transmit("su2", duration_s=50e-6, carrier_sense=True)
        assert result is None
        assert len(medium.heard["pu"]) == heard_before  # nothing sent

    def test_carrier_sense_transmits_when_clear(self, medium):
        result = medium.transmit("su1", duration_s=50e-6, carrier_sense=True)
        assert result is not None

    def test_unknown_listener(self, medium):
        with pytest.raises(RadioError):
            medium.channel_busy("ghost")
