"""Security-property tests (§V, Lemma V.1).

Lemma V.1's guarantee rests on three mechanics this module exercises:

1. everything the SDC holds or forwards is a ciphertext under a key it
   does not possess;
2. the blinded values the STP decrypts are statistically uninformative —
   the sign it sees is an unbiased coin regardless of the indicator,
   and the magnitude is dominated by the blinding factors;
3. a malicious SU cannot forge a license or replay protocol state.
"""

import numpy as np
import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.signatures import RsaFdhVerifier
from repro.errors import ProtocolError
from repro.pisa.blinding import BlindingFactory, BlindingParameters
from repro.pisa.messages import SignExtractionResponse


class TestSdcSeesOnlyCiphertexts:
    def test_forwarded_v_matrix_is_under_group_key(
        self, coordinator, pisa_scenario
    ):
        """What the SDC sends to the STP is encrypted under pk_G — the
        SDC cannot read its own intermediate state."""
        su = pisa_scenario.sus[0]
        client = coordinator.su_client(su.su_id)
        request = client.prepare_request()
        extraction = coordinator.sdc.start_request(request)
        for row in extraction.matrix:
            for ct in row:
                assert ct.public_key == coordinator.stp.group_public_key

    def test_response_is_under_su_key(self, coordinator, pisa_scenario):
        su = pisa_scenario.sus[0]
        client = coordinator.su_client(su.su_id)
        request = client.prepare_request()
        extraction = coordinator.sdc.start_request(request)
        conversion = coordinator.stp.handle_sign_extraction(extraction)
        response = coordinator.sdc.finish_request(conversion)
        assert response.encrypted_signature.public_key == client.public_key


class TestStpBlindness:
    """What the STP decrypts must not reveal the interference state."""

    def test_sign_seen_by_stp_is_unbiased(self):
        """For a FIXED indicator, the sign of V is a fair coin over the
        SDC's choice of ε — the STP's observation carries no signal."""
        from repro.crypto.paillier import PaillierPublicKey

        key = PaillierPublicKey((1 << 511) + 15)
        params = BlindingParameters.for_key(key, indicator_bound=1 << 66)
        for indicator in (-(10**15), -1, 1, 10**15):
            factory = BlindingFactory(
                params, rng=DeterministicRandomSource(f"bias-{indicator}")
            )
            signs = [
                1 if factory.draw().blind_value(indicator) > 0 else -1
                for _ in range(600)
            ]
            positives = signs.count(1)
            assert 220 < positives < 380, indicator  # ~fair coin

    def test_magnitude_dominated_by_blinding(self):
        """|V| must not let the STP read off |I|: for the same |I| the
        observed magnitudes span the full α range (orders of magnitude)."""
        from repro.crypto.paillier import PaillierPublicKey

        key = PaillierPublicKey((1 << 511) + 15)
        params = BlindingParameters.for_key(key, indicator_bound=1 << 66)
        factory = BlindingFactory(params, rng=DeterministicRandomSource("mag"))
        indicator = 12345
        magnitudes = np.array([
            abs(factory.draw().blind_value(indicator)) for _ in range(200)
        ], dtype=float)
        # Every observation is ≫ the indicator itself (α has ~100 bits)…
        assert magnitudes.min() > 1e12 * abs(indicator)
        # …and the spread across draws is substantial, so a single
        # observation does not pin down |I|.
        assert magnitudes.max() / magnitudes.min() > 2.0

    def test_distinct_indicators_indistinguishable_in_sign(self):
        """The STP's whole view per cell is sign(V); its distribution is
        the same for I=5 and I=−5 up to the ε coin (both ~Bernoulli(½))."""
        from repro.crypto.paillier import PaillierPublicKey

        key = PaillierPublicKey((1 << 511) + 15)
        params = BlindingParameters.for_key(key, indicator_bound=1 << 66)
        counts = {}
        for indicator in (5, -5):
            factory = BlindingFactory(
                params, rng=DeterministicRandomSource("dist")
            )
            signs = [
                1 if factory.draw().blind_value(indicator) > 0 else -1
                for _ in range(500)
            ]
            counts[indicator] = signs.count(1) / 500
        assert abs(counts[5] - (1 - counts[-5])) < 1e-9  # exact mirror of ε


class TestMaliciousSu:
    def test_cannot_forge_license(self, coordinator, pisa_scenario):
        """An SU cannot mint a valid signature for a different license."""
        su = pisa_scenario.sus[0]
        report = coordinator.run_request_round(su.su_id)
        verifier = RsaFdhVerifier(coordinator.stp.directory.signing_key("sdc"))
        forged = report.outcome.license
        # Tamper with the channels claim and reuse the decrypted value.
        from dataclasses import replace

        tampered = replace(forged, channels=(999,))
        assert not tampered.verify(verifier, report.outcome.decrypted_value)

    def test_replay_of_conversion_rejected(self, coordinator, pisa_scenario):
        su = pisa_scenario.sus[0]
        client = coordinator.su_client(su.su_id)
        request = client.prepare_request()
        extraction = coordinator.sdc.start_request(request)
        conversion = coordinator.stp.handle_sign_extraction(extraction)
        coordinator.sdc.finish_request(conversion)
        with pytest.raises(ProtocolError):
            coordinator.sdc.finish_request(conversion)  # replay

    def test_cross_round_conversion_rejected(self, coordinator, pisa_scenario):
        """A conversion matrix from round A cannot finish round B."""
        su_a, su_b = pisa_scenario.sus[0], pisa_scenario.sus[1]
        req_a = coordinator.su_client(su_a.su_id).prepare_request()
        req_b = coordinator.su_client(su_b.su_id).prepare_request()
        ext_a = coordinator.sdc.start_request(req_a)
        ext_b = coordinator.sdc.start_request(req_b)
        conv_a = coordinator.stp.handle_sign_extraction(ext_a)
        # Graft A's converted matrix onto B's round id.
        spliced = SignExtractionResponse(
            round_id=ext_b.round_id, su_id=su_a.su_id, matrix=conv_a.matrix
        )
        with pytest.raises(ProtocolError):
            coordinator.sdc.finish_request(spliced)
        # Clean up B's pending round for other tests.
        conv_b = coordinator.stp.handle_sign_extraction(ext_b)
        coordinator.sdc.finish_request(conv_b)

    def test_denied_value_is_unpredictable(self, coordinator, oracle, pisa_scenario):
        """On deny, the decrypted value is SG + η·ΣQ with one-time η —
        two denials of the same request decrypt to different garbage."""
        denied = next(
            su for su in pisa_scenario.sus if not oracle.process_request(su).granted
        )
        first = coordinator.run_request_round(denied.su_id)
        second = coordinator.run_request_round(denied.su_id, reuse_cached_request=True)
        assert not first.granted and not second.granted
        assert first.outcome.decrypted_value != second.outcome.decrypted_value
