"""End-to-end protocol tests — the paper's central claims.

C1 (DESIGN.md): PISA's grant/deny decision must equal the plaintext
WATCH decision on the same instance; the SU alone learns the outcome; a
denied response never carries a valid license signature.
"""

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.geo.region import PrivacyRegion
from repro.pisa.protocol import PisaCoordinator, small_demo
from repro.watch.entities import SUTransmitter
from repro.watch.sdc import PlaintextSDC
from repro.watch.scenario import ScenarioConfig, build_scenario


class TestDecisionEquivalence:
    def test_matches_plaintext_oracle(self, coordinator, oracle, pisa_scenario):
        """The headline theorem: encrypted and plaintext decisions agree."""
        for su in pisa_scenario.sus:
            plain = oracle.process_request(su)
            report = coordinator.run_request_round(su.su_id)
            assert report.granted == plain.granted, su.su_id

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_random_instances(self, seed):
        scenario = build_scenario(ScenarioConfig(seed=seed, num_sus=2))
        oracle = PlaintextSDC(scenario.environment)
        coord = PisaCoordinator(
            scenario.environment, key_bits=256,
            rng=DeterministicRandomSource(f"e2e-{seed}"),
        )
        for pu in scenario.pus:
            oracle.pu_update(pu)
            coord.enroll_pu(pu)
        for su in scenario.sus:
            coord.enroll_su(su)
            assert (
                coord.run_request_round(su.su_id).granted
                == oracle.process_request(su).granted
            )

    def test_both_outcomes_exercised(self, coordinator, oracle, pisa_scenario):
        """The fixture scenario must produce at least one grant AND one
        deny, or the equivalence test proves nothing."""
        outcomes = {
            oracle.process_request(su).granted for su in pisa_scenario.sus
        }
        assert outcomes == {True, False}


class TestLicenseSemantics:
    def test_denied_response_has_invalid_signature(
        self, coordinator, oracle, pisa_scenario
    ):
        denied = next(
            su for su in pisa_scenario.sus if not oracle.process_request(su).granted
        )
        report = coordinator.run_request_round(denied.su_id)
        assert not report.granted
        # The decrypted value is SG + η·ΣQ ≠ SG: not a valid signature.
        from repro.crypto.signatures import RsaFdhVerifier

        verifier = RsaFdhVerifier(
            coordinator.stp.directory.signing_key(report.outcome.license.issuer_id)
        )
        assert not report.outcome.license.verify(
            verifier, report.outcome.decrypted_value
        )

    def test_granted_response_verifies(self, coordinator, oracle, pisa_scenario):
        granted = next(
            su for su in pisa_scenario.sus if oracle.process_request(su).granted
        )
        report = coordinator.run_request_round(granted.su_id)
        assert report.granted
        from repro.crypto.signatures import RsaFdhVerifier

        verifier = RsaFdhVerifier(
            coordinator.stp.directory.signing_key(report.outcome.license.issuer_id)
        )
        assert report.outcome.license.verify(
            verifier, report.outcome.decrypted_value
        )

    def test_license_names_su_and_request(self, coordinator, pisa_scenario):
        su = pisa_scenario.sus[0]
        report = coordinator.run_request_round(su.su_id)
        assert report.outcome.license.su_id == su.su_id
        assert report.outcome.license.issuer_id == "sdc"


class TestRepeatedRounds:
    def test_cached_refresh_same_decision(self, coordinator, pisa_scenario):
        """§VI-A fast path: re-randomised requests decide identically."""
        su = pisa_scenario.sus[0]
        fresh = coordinator.run_request_round(su.su_id)
        cached = coordinator.run_request_round(su.su_id, reuse_cached_request=True)
        assert cached.granted == fresh.granted

    def test_pu_switch_changes_decisions_consistently(self):
        scenario = build_scenario(ScenarioConfig(seed=8, num_sus=1))
        oracle = PlaintextSDC(scenario.environment)
        coord = PisaCoordinator(
            scenario.environment, key_bits=256,
            rng=DeterministicRandomSource("switch-test"),
        )
        for pu in scenario.pus:
            oracle.pu_update(pu)
            coord.enroll_pu(pu)
        su = scenario.sus[0]
        coord.enroll_su(su)
        before = coord.run_request_round(su.su_id)
        assert before.granted == oracle.process_request(su).granted
        # Switch every PU off: the SU should now (at least) not lose
        # permission, and PISA must still match the oracle.
        for pu in scenario.pus:
            coord.pu_switch_channel(pu.receiver_id, None)
            oracle.pu_update(pu.switched_to(None))
        after = coord.run_request_round(su.su_id, reuse_cached_request=True)
        assert after.granted == oracle.process_request(su).granted
        if before.granted:
            assert after.granted


class TestPrivacyRegions:
    def test_partial_region_matches_restricted_oracle(self):
        scenario = build_scenario(ScenarioConfig(seed=9, num_sus=1))
        grid = scenario.environment.grid
        su = scenario.sus[0]
        region = PrivacyRegion.around(grid, su.block_index, 25.0)
        oracle = PlaintextSDC(scenario.environment)
        coord = PisaCoordinator(
            scenario.environment, key_bits=256,
            rng=DeterministicRandomSource("region-test"),
        )
        for pu in scenario.pus:
            oracle.pu_update(pu)
            coord.enroll_pu(pu)
        coord.enroll_su(su, region=region)
        report = coord.run_request_round(su.su_id)
        plain = oracle.process_request(su, region=region)
        assert report.granted == plain.granted

    def test_smaller_region_smaller_request(self):
        scenario = build_scenario(ScenarioConfig(seed=9, num_sus=1))
        grid = scenario.environment.grid
        su = scenario.sus[0]
        rng = DeterministicRandomSource("region-size")
        coord = PisaCoordinator(scenario.environment, key_bits=256, rng=rng)
        for pu in scenario.pus:
            coord.enroll_pu(pu)
        full_client = coord.enroll_su(su)
        full_size = full_client.prepare_request().wire_size()
        half = PrivacyRegion.fraction(grid, 0.5)
        if su.block_index not in half:
            half = PrivacyRegion.rows_slice(grid, grid.rows // 2, grid.rows - 1)
        su2 = SUTransmitter("su-half", block_index=su.block_index,
                            tx_power_dbm=su.tx_power_dbm)
        half_client = coord.enroll_su(su2, region=half)
        half_size = half_client.prepare_request().wire_size()
        assert half_size < 0.6 * full_size


class TestTransportAccounting:
    def test_messages_recorded(self, coordinator, pisa_scenario):
        before = coordinator.transport.count()
        coordinator.run_request_round(pisa_scenario.sus[0].su_id)
        after = coordinator.transport.count()
        # One round = request + extraction + conversion + response.
        assert after - before == 4

    def test_response_is_smallest_message(self, coordinator, pisa_scenario):
        report = coordinator.run_request_round(pisa_scenario.sus[0].su_id)
        assert report.response_bytes < report.request_bytes
        assert report.response_bytes < report.sign_extraction_bytes


class TestQuickstart:
    def test_small_demo_runs(self):
        report = small_demo(seed=3)
        assert report.granted in (True, False)
        assert report.total_bytes > 0
        assert report.timings.total > 0
