"""Tests for the SU license-lifecycle session."""

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ProtocolError
from repro.pisa.protocol import PisaCoordinator
from repro.pisa.session import SessionState, SuSession
from repro.watch.sdc import PlaintextSDC
from repro.watch.scenario import ScenarioConfig, build_scenario


class FakeClock:
    def __init__(self, start: float = 1_000_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def deployment():
    scenario = build_scenario(ScenarioConfig(seed=4, num_sus=3))
    clock = FakeClock()
    coord = PisaCoordinator(
        scenario.environment, key_bits=256,
        rng=DeterministicRandomSource("session-tests"),
    )
    coord.sdc._clock = clock  # licenses stamped with the fake time
    oracle = PlaintextSDC(scenario.environment)
    for pu in scenario.pus:
        coord.enroll_pu(pu)
        oracle.pu_update(pu)
    grantable = [su for su in scenario.sus if oracle.process_request(su).granted]
    denied = [su for su in scenario.sus if not oracle.process_request(su).granted]
    for su in scenario.sus:
        coord.enroll_su(su)
    return coord, clock, grantable, denied, scenario


class TestLicensedFlow:
    def test_initial_grant(self, deployment):
        coord, clock, grantable, _, _ = deployment
        session = SuSession(coord, grantable[0].su_id, clock=clock)
        assert session.state is SessionState.IDLE
        status = session.ensure_license()
        assert status.state is SessionState.LICENSED
        assert status.may_transmit
        assert status.license is not None
        assert status.license.is_valid_at(int(clock.now))

    def test_no_redundant_renewal(self, deployment):
        coord, clock, grantable, _, _ = deployment
        session = SuSession(coord, grantable[0].su_id, clock=clock)
        session.ensure_license()
        before = coord.transport.count()
        session.ensure_license()  # still fresh: no protocol traffic
        assert coord.transport.count() == before
        assert session.renewals == 1

    def test_expiry_drops_rights(self, deployment):
        coord, clock, grantable, _, _ = deployment
        session = SuSession(coord, grantable[0].su_id, clock=clock)
        status = session.ensure_license()
        clock.advance(status.license.valid_seconds + 1)
        assert not session.may_transmit
        assert session.state is SessionState.EXPIRED

    def test_renewal_after_expiry(self, deployment):
        coord, clock, grantable, _, _ = deployment
        session = SuSession(coord, grantable[0].su_id, clock=clock)
        first = session.ensure_license()
        clock.advance(first.license.valid_seconds + 1)
        renewed = session.ensure_license()
        assert renewed.may_transmit
        assert renewed.renewals == 2
        assert renewed.license.issued_at > first.license.issued_at

    def test_margin_triggers_early_renewal(self, deployment):
        coord, clock, grantable, _, _ = deployment
        session = SuSession(
            coord, grantable[0].su_id, renew_margin_s=600, clock=clock
        )
        first = session.ensure_license()
        clock.advance(first.license.valid_seconds - 300)  # inside margin
        assert session.may_transmit  # not yet expired...
        renewed = session.ensure_license()  # ...but renewed proactively
        assert renewed.renewals == 2


class TestDeniedFlow:
    def test_denied_su_never_transmits(self, deployment):
        coord, clock, _, denied, _ = deployment
        if not denied:
            pytest.skip("scenario grants everyone")
        session = SuSession(coord, denied[0].su_id, clock=clock)
        status = session.ensure_license()
        assert status.state is SessionState.DENIED
        assert not status.may_transmit
        assert status.denials == 1

    def test_revocation_via_pu_arrival(self, deployment):
        """A license expires; meanwhile a PU tuned in — renewal denied,
        rights dropped: the dynamic-protection loop end to end."""
        coord, clock, grantable, _, scenario = deployment
        su = grantable[0]
        session = SuSession(coord, su.su_id, clock=clock)
        first = session.ensure_license()
        assert first.may_transmit
        # A new receiver appears right next to the SU on every channel's
        # worth of signal — make its cell budget tiny.
        from repro.watch.entities import PUReceiver

        intruder = PUReceiver(
            "intruder", block_index=su.block_index,
            channel_slot=0, signal_strength_mw=1e-9,
        )
        coord.enroll_pu(intruder)
        clock.advance(first.license.valid_seconds + 1)
        status = session.ensure_license()
        assert not status.may_transmit
        assert status.state is SessionState.DENIED


class TestValidation:
    def test_negative_margin_rejected(self, deployment):
        coord, clock, grantable, _, _ = deployment
        with pytest.raises(ProtocolError):
            SuSession(coord, grantable[0].su_id, renew_margin_s=-1, clock=clock)
