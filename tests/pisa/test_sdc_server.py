"""Unit tests for the PISA SDC server internals."""

import pytest

from repro.crypto.paillier import generate_keypair
from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.signatures import RsaFdhSigner, generate_rsa_keypair
from repro.errors import ProtocolError
from repro.pisa.keys import KeyDirectory
from repro.pisa.messages import PUUpdateMessage, SignExtractionResponse, SURequestMessage
from repro.pisa.sdc_server import SdcServer
from repro.watch.matrices import (
    aggregate,
    pu_update_matrix,
    zeros_matrix,
)


@pytest.fixture()
def group_keys():
    return generate_keypair(256, rng=DeterministicRandomSource("sdc-group"))


@pytest.fixture()
def sdc(scenario, group_keys):
    rng = DeterministicRandomSource("sdc-tests")
    directory = KeyDirectory(group_keys.public_key)
    _, signing = generate_rsa_keypair(128, rng=rng)
    return SdcServer(
        scenario.environment, directory, RsaFdhSigner(signing), rng=rng
    )


def make_update(pu, scenario, group_keys, rng):
    env = scenario.environment
    w = pu_update_matrix(pu, env.e_matrix, env.params)
    cts = tuple(
        group_keys.public_key.encrypt(int(w[c, pu.block_index]), rng=rng)
        for c in range(env.num_channels)
    )
    return PUUpdateMessage(pu.receiver_id, pu.block_index, cts)


class TestPuUpdateAggregation:
    def test_aggregate_matches_plaintext(self, sdc, scenario, group_keys, fresh_rng):
        """The encrypted W̃' must equal the plaintext Σ W_i everywhere."""
        env = scenario.environment
        for pu in scenario.pus:
            sdc.handle_pu_update(make_update(pu, scenario, group_keys, fresh_rng))
        expected = aggregate(
            [pu_update_matrix(pu, env.e_matrix, env.params) for pu in scenario.pus]
        )
        sk = group_keys.private_key
        for (c, b), ct in sdc._w_sum.items():
            assert sk.decrypt(ct) == int(expected[c, b])

    def test_resubmission_subtracts_old(self, sdc, scenario, group_keys, fresh_rng):
        env = scenario.environment
        pu = scenario.pus[0]
        sdc.handle_pu_update(make_update(pu, scenario, group_keys, fresh_rng))
        switched = pu.switched_to(
            (pu.channel_slot + 1) % env.num_channels, signal_strength_mw=2e-4
        )
        sdc.handle_pu_update(make_update(switched, scenario, group_keys, fresh_rng))
        sk = group_keys.private_key
        # Old cell cancels back to zero; new cell carries T − E.
        old_cell = sdc._w_sum[(pu.channel_slot, pu.block_index)]
        assert sk.decrypt(old_cell) == 0
        new_w = pu_update_matrix(switched, env.e_matrix, env.params)
        new_cell = sdc._w_sum[(switched.channel_slot, pu.block_index)]
        assert sk.decrypt(new_cell) == int(
            new_w[switched.channel_slot, pu.block_index]
        )
        assert sdc.num_tracked_pus == 1

    def test_wrong_channel_count_rejected(self, sdc, group_keys, fresh_rng):
        cts = (group_keys.public_key.encrypt(0, rng=fresh_rng),)
        with pytest.raises(ProtocolError):
            sdc.handle_pu_update(PUUpdateMessage("pu", 0, cts))

    def test_foreign_key_rejected(self, sdc, scenario, fresh_rng):
        other = generate_keypair(256, rng=fresh_rng)
        cts = tuple(
            other.public_key.encrypt(0, rng=fresh_rng)
            for _ in range(scenario.params.num_channels)
        )
        with pytest.raises(ProtocolError):
            sdc.handle_pu_update(PUUpdateMessage("pu", 0, cts))


class TestRequestPhase1:
    def _request(self, sdc, scenario, group_keys, fresh_rng, su_id="su-0"):
        env = scenario.environment
        sdc.directory.register_su_key(
            su_id, generate_keypair(256, rng=fresh_rng).public_key
        )
        matrix = tuple(
            tuple(group_keys.public_key.encrypt(0, rng=fresh_rng) for _ in range(3))
            for _ in range(env.num_channels)
        )
        return SURequestMessage(su_id=su_id, region_blocks=(0, 1, 2), matrix=matrix)

    def test_produces_blinded_matrix(self, sdc, scenario, group_keys, fresh_rng):
        request = self._request(sdc, scenario, group_keys, fresh_rng)
        extraction = sdc.start_request(request)
        assert len(extraction.matrix) == scenario.params.num_channels
        assert len(extraction.matrix[0]) == 3
        assert sdc.pending_rounds == 1

    def test_blinded_values_hide_magnitude(self, sdc, scenario, group_keys, fresh_rng):
        """V = ε(αI − β) must not equal I for any cell (blinding applied)."""
        request = self._request(sdc, scenario, group_keys, fresh_rng)
        extraction = sdc.start_request(request)
        env = scenario.environment
        sk = group_keys.private_key
        for c, row in enumerate(extraction.matrix):
            for k, ct in enumerate(row):
                v = sk.decrypt(ct)
                i_plain = int(env.e_matrix[c, request.region_blocks[k]])  # R=0 here
                assert v != i_plain
                assert abs(v) > abs(i_plain)  # α ≥ 2 guarantees growth

    def test_sign_consistency_with_plaintext(self, sdc, scenario, group_keys, fresh_rng):
        """sign(ε·V) must equal sign'(I) cell by cell."""
        request = self._request(sdc, scenario, group_keys, fresh_rng)
        extraction = sdc.start_request(request)
        pending = sdc._pending[extraction.round_id]
        env = scenario.environment
        sk = group_keys.private_key
        for c, (v_row, b_row) in enumerate(zip(extraction.matrix, pending.blindings)):
            for k, (ct, cell) in enumerate(zip(v_row, b_row)):
                v = sk.decrypt(ct)
                i_plain = int(env.e_matrix[c, request.region_blocks[k]])
                assert (cell.epsilon * v > 0) == (i_plain > 0)

    def test_unknown_su_key_rejected(self, sdc, scenario, group_keys, fresh_rng):
        env = scenario.environment
        matrix = tuple(
            (group_keys.public_key.encrypt(0, rng=fresh_rng),)
            for _ in range(env.num_channels)
        )
        request = SURequestMessage("ghost", (0,), matrix)
        with pytest.raises(ProtocolError):
            sdc.start_request(request)

    def test_bad_block_rejected(self, sdc, scenario, group_keys, fresh_rng):
        request = self._request(sdc, scenario, group_keys, fresh_rng)
        bad = SURequestMessage(request.su_id, (0, 1, 999), request.matrix)
        with pytest.raises(ProtocolError):
            sdc.start_request(bad)

    def test_wrong_row_count_rejected(self, sdc, scenario, group_keys, fresh_rng):
        request = self._request(sdc, scenario, group_keys, fresh_rng)
        truncated = SURequestMessage(
            request.su_id, request.region_blocks, request.matrix[:-1]
        )
        with pytest.raises(ProtocolError):
            sdc.start_request(truncated)


class TestRequestPhase2:
    def test_unknown_round_rejected(self, sdc, fresh_rng):
        response = SignExtractionResponse("round-999", "su", ())
        with pytest.raises(ProtocolError):
            sdc.finish_request(response)

    def test_round_state_consumed(self, sdc, scenario, group_keys, fresh_rng):
        request = TestRequestPhase1._request(
            TestRequestPhase1(), sdc, scenario, group_keys, fresh_rng
        )
        extraction = sdc.start_request(request)
        su_key = sdc.directory.su_key(request.su_id)
        # Craft a well-formed all-grant response (X = ε per cell so that
        # ε·X = 1 → Q = 0).
        pending = sdc._pending[extraction.round_id]
        matrix = tuple(
            tuple(
                su_key.encrypt(cell.epsilon, rng=fresh_rng) for cell in row
            )
            for row in pending.blindings
        )
        response = SignExtractionResponse(extraction.round_id, request.su_id, matrix)
        sdc.finish_request(response)
        assert sdc.pending_rounds == 0
        with pytest.raises(ProtocolError):
            sdc.finish_request(response)  # replay rejected

    def test_wrong_su_rejected(self, sdc, scenario, group_keys, fresh_rng):
        request = TestRequestPhase1._request(
            TestRequestPhase1(), sdc, scenario, group_keys, fresh_rng
        )
        extraction = sdc.start_request(request)
        response = SignExtractionResponse(extraction.round_id, "other-su", ())
        with pytest.raises(ProtocolError):
            sdc.finish_request(response)
