"""Tests for SDC/directory persistence — restart without losing safety."""

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.signatures import RsaFdhSigner, generate_rsa_keypair
from repro.errors import SerializationError
from repro.pisa.sdc_server import SdcServer
from repro.pisa.storage import (
    restore_directory,
    restore_sdc_state,
    serialize_directory,
    serialize_sdc_state,
)


@pytest.fixture()
def fresh_sdc_factory(pisa_scenario, coordinator):
    """Builds empty SDCs sharing the deployed system's environment/keys."""

    def build():
        rng = DeterministicRandomSource("storage-sdc")
        _, signing = generate_rsa_keypair(128, rng=rng)
        return SdcServer(
            pisa_scenario.environment,
            directory=coordinator.stp.directory,
            signer=RsaFdhSigner(signing),
            issuer_id="sdc-restored",
            rng=rng,
        )

    return build


class TestSdcSnapshot:
    def test_roundtrip_preserves_budget(self, coordinator, fresh_sdc_factory):
        """A restored SDC must hold the exact encrypted aggregate."""
        blob = serialize_sdc_state(coordinator.sdc)
        restored = fresh_sdc_factory()
        count = restore_sdc_state(restored, blob)
        assert count == coordinator.sdc.num_tracked_pus
        assert set(restored._w_sum) == set(coordinator.sdc._w_sum)
        for cell, ct in coordinator.sdc._w_sum.items():
            assert restored._w_sum[cell].ciphertext == ct.ciphertext

    def test_restored_sdc_decides_identically(
        self, coordinator, fresh_sdc_factory, pisa_scenario
    ):
        """The real safety property: decisions survive the restart."""
        su = pisa_scenario.sus[0]
        client = coordinator.su_client(su.su_id)
        request = client.prepare_request()

        restored = fresh_sdc_factory()
        restore_sdc_state(restored, serialize_sdc_state(coordinator.sdc))

        for sdc in (coordinator.sdc, restored):
            extraction = sdc.start_request(request)
            conversion = coordinator.stp.handle_sign_extraction(extraction)
            response = sdc.finish_request(conversion)
            outcome = client.process_response(response, coordinator.stp.directory)
            if sdc is coordinator.sdc:
                original = outcome.granted
        assert outcome.granted == original

    def test_restore_refuses_non_empty_target(self, coordinator):
        blob = serialize_sdc_state(coordinator.sdc)
        with pytest.raises(SerializationError):
            restore_sdc_state(coordinator.sdc, blob)  # already has state

    def test_bad_blob_rejected(self, fresh_sdc_factory):
        with pytest.raises(SerializationError):
            restore_sdc_state(fresh_sdc_factory(), b"garbage")

    def test_truncated_blob_rejected(self, coordinator, fresh_sdc_factory):
        blob = serialize_sdc_state(coordinator.sdc)
        with pytest.raises(SerializationError):
            restore_sdc_state(fresh_sdc_factory(), blob[:-3])


class TestDirectorySnapshot:
    def test_roundtrip(self, coordinator, pisa_scenario):
        directory = coordinator.stp.directory
        restored = restore_directory(serialize_directory(directory))
        assert restored.group_public_key == directory.group_public_key
        for su in pisa_scenario.sus:
            assert restored.su_key(su.su_id) == directory.su_key(su.su_id)
        assert restored.signing_key("sdc") == directory.signing_key("sdc")

    def test_bad_blob_rejected(self):
        with pytest.raises(SerializationError):
            restore_directory(b"garbage")

    def test_trailing_bytes_rejected(self, coordinator):
        blob = serialize_directory(coordinator.stp.directory)
        with pytest.raises(SerializationError):
            restore_directory(blob + b"\x00")
