"""Property-based end-to-end tests: PISA ≡ WATCH on random instances.

Hypothesis drives random tiny deployments — grid geometry, PU placement
and signal strengths, SU position and power — and asserts the paper's
central correctness property on every one: the privacy-preserving
decision equals the plaintext decision.  Key sizes are small (the
property is about protocol algebra, not cryptographic strength).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.rand import DeterministicRandomSource
from repro.geo.grid import BlockGrid
from repro.pisa.protocol import PisaCoordinator
from repro.watch.entities import PUReceiver, SUTransmitter
from repro.watch.environment import SpectrumEnvironment
from repro.watch.params import WatchParameters
from repro.watch.sdc import PlaintextSDC

GRID = BlockGrid(rows=2, cols=3, block_size_m=10.0)
PARAMS = WatchParameters(num_channels=2)

relaxed = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

pu_strategy = st.tuples(
    st.integers(min_value=0, max_value=GRID.num_blocks - 1),  # block
    st.integers(min_value=0, max_value=PARAMS.num_channels - 1),  # slot
    st.floats(min_value=1e-7, max_value=1e-2),  # signal strength (mW)
)

su_strategy = st.tuples(
    st.integers(min_value=0, max_value=GRID.num_blocks - 1),  # block
    st.floats(min_value=-10.0, max_value=30.0),  # tx power (dBm)
)


def build_instance(pus_spec, su_spec, seed):
    environment = SpectrumEnvironment(GRID, PARAMS, transmitters=())
    pus = [
        PUReceiver(f"pu-{i}", block_index=block, channel_slot=slot,
                   signal_strength_mw=signal)
        for i, (block, slot, signal) in enumerate(pus_spec)
    ]
    su = SUTransmitter("su", block_index=su_spec[0], tx_power_dbm=su_spec[1])
    oracle = PlaintextSDC(environment)
    coordinator = PisaCoordinator(
        environment, key_bits=192, rng=DeterministicRandomSource(seed)
    )
    for pu in pus:
        oracle.pu_update(pu)
        coordinator.enroll_pu(pu)
    coordinator.enroll_su(su)
    return oracle, coordinator, su


@relaxed
@given(
    pus_spec=st.lists(pu_strategy, min_size=0, max_size=3),
    su_spec=su_strategy,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_pisa_equals_watch_on_random_instances(pus_spec, su_spec, seed):
    oracle, coordinator, su = build_instance(pus_spec, su_spec, seed)
    plain = oracle.process_request(su)
    report = coordinator.run_request_round(su.su_id)
    assert report.granted == plain.granted


@relaxed
@given(
    pus_spec=st.lists(pu_strategy, min_size=1, max_size=2),
    su_spec=su_strategy,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_refresh_decision_invariant(pus_spec, su_spec, seed):
    """Re-randomised requests must always decide like fresh ones."""
    oracle, coordinator, su = build_instance(pus_spec, su_spec, seed)
    fresh = coordinator.run_request_round(su.su_id)
    refreshed = coordinator.run_request_round(su.su_id, reuse_cached_request=True)
    assert fresh.granted == refreshed.granted
    assert fresh.granted == oracle.process_request(su).granted


@relaxed
@given(
    pus_spec=st.lists(pu_strategy, min_size=1, max_size=2),
    su_spec=su_strategy,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_license_validity_matches_decision(pus_spec, su_spec, seed):
    """The signature verifies iff the request was granted — never both
    ways, never neither."""
    from repro.crypto.signatures import RsaFdhVerifier

    oracle, coordinator, su = build_instance(pus_spec, su_spec, seed)
    report = coordinator.run_request_round(su.su_id)
    verifier = RsaFdhVerifier(coordinator.stp.directory.signing_key("sdc"))
    verifies = report.outcome.license.verify(
        verifier, report.outcome.decrypted_value
    )
    assert verifies == report.granted
