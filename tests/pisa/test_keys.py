"""Unit tests for the STP's key directory."""

import pytest

from repro.crypto.signatures import generate_rsa_keypair
from repro.errors import ProtocolError
from repro.pisa.keys import KeyDirectory


@pytest.fixture()
def directory(keypair):
    return KeyDirectory(keypair.public_key)


class TestGroupKey:
    def test_exposed(self, directory, keypair):
        assert directory.group_public_key == keypair.public_key


class TestSuKeys:
    def test_register_and_retrieve(self, directory, second_keypair):
        directory.register_su_key("su-1", second_keypair.public_key)
        assert directory.su_key("su-1") == second_keypair.public_key
        assert directory.has_su_key("su-1")

    def test_idempotent_reregistration(self, directory, second_keypair):
        directory.register_su_key("su-1", second_keypair.public_key)
        directory.register_su_key("su-1", second_keypair.public_key)  # no error

    def test_conflicting_reregistration_rejected(
        self, directory, keypair, second_keypair
    ):
        directory.register_su_key("su-1", second_keypair.public_key)
        with pytest.raises(ProtocolError):
            directory.register_su_key("su-1", keypair.public_key)

    def test_unknown_su_raises(self, directory):
        assert not directory.has_su_key("ghost")
        with pytest.raises(ProtocolError):
            directory.su_key("ghost")


class TestSigningKeys:
    def test_register_and_retrieve(self, directory, fresh_rng):
        public, _ = generate_rsa_keypair(128, rng=fresh_rng)
        directory.register_signing_key("sdc", public)
        assert directory.signing_key("sdc") == public

    def test_unknown_issuer_raises(self, directory):
        with pytest.raises(ProtocolError):
            directory.signing_key("nobody")
