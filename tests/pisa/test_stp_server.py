"""Unit tests for the STP (sign extraction + key conversion)."""

import pytest

from repro.crypto.paillier import generate_keypair
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ProtocolError
from repro.pisa.messages import SignExtractionRequest
from repro.pisa.stp_server import StpServer


@pytest.fixture()
def stp(fresh_rng):
    return StpServer(key_bits=256, rng=fresh_rng)


@pytest.fixture()
def su_keys(fresh_rng):
    return generate_keypair(256, rng=fresh_rng)


def extraction_request(stp, values, rng):
    pk = stp.group_public_key
    matrix = tuple(
        tuple(pk.encrypt(v, rng=rng) for v in row) for row in values
    )
    return SignExtractionRequest(round_id="r0", su_id="su-1", matrix=matrix)


class TestKeyAuthority:
    def test_directory_holds_group_key(self, stp):
        assert stp.directory.group_public_key == stp.group_public_key

    def test_accepts_external_keypair(self, fresh_rng):
        kp = generate_keypair(256, rng=fresh_rng)
        stp = StpServer(group_keypair=kp)
        assert stp.group_public_key == kp.public_key


class TestSignExtraction:
    def test_signs_follow_eq_15(self, stp, su_keys, fresh_rng):
        stp.register_su("su-1", su_keys.public_key)
        values = [[-100, -1, 1], [50, 7, -3]]
        response = stp.handle_sign_extraction(
            extraction_request(stp, values, fresh_rng)
        )
        sk = su_keys.private_key
        signs = [[sk.decrypt(ct) for ct in row] for row in response.matrix]
        assert signs == [[-1, -1, 1], [1, 1, -1]]

    def test_zero_maps_to_minus_one(self, stp, su_keys, fresh_rng):
        """eq. (15): V ≤ 0 → X = −1 (boundary included)."""
        stp.register_su("su-1", su_keys.public_key)
        response = stp.handle_sign_extraction(
            extraction_request(stp, [[0]], fresh_rng)
        )
        assert su_keys.private_key.decrypt(response.matrix[0][0]) == -1

    def test_output_under_su_key(self, stp, su_keys, fresh_rng):
        stp.register_su("su-1", su_keys.public_key)
        response = stp.handle_sign_extraction(
            extraction_request(stp, [[5]], fresh_rng)
        )
        assert response.matrix[0][0].public_key == su_keys.public_key

    def test_round_id_echoed(self, stp, su_keys, fresh_rng):
        stp.register_su("su-1", su_keys.public_key)
        response = stp.handle_sign_extraction(
            extraction_request(stp, [[1]], fresh_rng)
        )
        assert response.round_id == "r0"
        assert response.su_id == "su-1"

    def test_unregistered_su_rejected(self, stp, fresh_rng):
        with pytest.raises(ProtocolError):
            stp.handle_sign_extraction(extraction_request(stp, [[1]], fresh_rng))

    def test_foreign_ciphertext_rejected(self, stp, su_keys, fresh_rng):
        stp.register_su("su-1", su_keys.public_key)
        foreign = su_keys.public_key.encrypt(1, rng=fresh_rng)  # not group key
        request = SignExtractionRequest("r0", "su-1", ((foreign,),))
        with pytest.raises(ProtocolError):
            stp.handle_sign_extraction(request)

    def test_stats_counted(self, stp, su_keys, fresh_rng):
        stp.register_su("su-1", su_keys.public_key)
        stp.handle_sign_extraction(extraction_request(stp, [[1, 2], [3, 4]], fresh_rng))
        assert stp.stats.conversions == 1
        assert stp.stats.cells_decrypted == 4
        assert stp.stats.cells_encrypted == 4
