"""Unit tests for the SU-side client (Figure 5)."""

import pytest

from repro.crypto.paillier import generate_keypair
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ProtocolError
from repro.geo.region import PrivacyRegion
from repro.pisa.su_client import SUClient
from repro.watch.matrices import su_request_matrix


@pytest.fixture()
def group_keys(fresh_rng):
    return generate_keypair(256, rng=fresh_rng)


@pytest.fixture()
def su_keys(fresh_rng):
    return generate_keypair(256, rng=fresh_rng)


@pytest.fixture()
def client(scenario, group_keys, su_keys, fresh_rng):
    return SUClient(
        scenario.sus[0],
        scenario.environment,
        group_keys.public_key,
        su_keys,
        rng=fresh_rng,
    )


class TestPrepareRequest:
    def test_full_privacy_covers_every_block(self, client, scenario):
        request = client.prepare_request()
        env = scenario.environment
        assert len(request.region_blocks) == env.num_blocks
        assert len(request.matrix) == env.num_channels

    def test_entries_decrypt_to_f_matrix(self, client, scenario, group_keys):
        """The ciphertext matrix must encrypt eq. (5) exactly."""
        request = client.prepare_request()
        env = scenario.environment
        f = su_request_matrix(
            client.su,
            env.grid,
            env.params,
            pathloss_for_channel=env.su_pathloss,
            exclusion_distance_for_channel=env.exclusion_distance,
        )
        sk = group_keys.private_key
        for c in range(env.num_channels):
            for k, b in enumerate(request.region_blocks):
                assert sk.decrypt(request.matrix[c][k]) == int(f[c, b])

    def test_region_shrinks_matrix(self, scenario, group_keys, su_keys, fresh_rng):
        """§VI-A privacy/size trade-off: fewer blocks → smaller request."""
        su = scenario.sus[0]
        grid = scenario.environment.grid
        region = PrivacyRegion.around(grid, su.block_index, 15.0)
        client = SUClient(
            su, scenario.environment, group_keys.public_key, su_keys,
            region=region, rng=fresh_rng,
        )
        small = client.prepare_request()
        assert len(small.region_blocks) == region.num_blocks < grid.num_blocks

    def test_region_must_contain_su(self, scenario, group_keys, su_keys, fresh_rng):
        su = scenario.sus[0]
        grid = scenario.environment.grid
        other_block = (su.block_index + 1) % grid.num_blocks
        region = PrivacyRegion(grid, frozenset({other_block}))
        with pytest.raises(ProtocolError):
            SUClient(
                su, scenario.environment, group_keys.public_key, su_keys,
                region=region, rng=fresh_rng,
            )


class TestRefreshRequest:
    def test_requires_prepared_request(self, client):
        with pytest.raises(ProtocolError):
            client.refresh_request()

    def test_preserves_plaintexts_changes_ciphertexts(self, client, group_keys):
        original = client.prepare_request()
        refreshed = client.refresh_request()
        sk = group_keys.private_key
        changed = 0
        for row_o, row_r in zip(original.matrix, refreshed.matrix):
            for ct_o, ct_r in zip(row_o, row_r):
                assert sk.decrypt(ct_o) == sk.decrypt(ct_r)
                changed += ct_o.ciphertext != ct_r.ciphertext
        assert changed == sum(len(r) for r in original.matrix)

    def test_unlinkable_across_refreshes(self, client):
        client.prepare_request()
        a = client.refresh_request()
        b = client.refresh_request()
        assert a.matrix[0][0].ciphertext != b.matrix[0][0].ciphertext


class TestRefreshPrecompute:
    def test_precompute_requires_cached_request(self, client):
        from repro.errors import ProtocolError
        import pytest as _pytest

        with _pytest.raises(ProtocolError):
            client.precompute_refresh_material()

    def test_stocked_refresh_uses_no_exponentiation(self, client, group_keys):
        """After stocking, a refresh drains the pool one per ciphertext."""
        request = client.prepare_request()
        cells = sum(len(row) for row in request.matrix)
        client.precompute_refresh_material(rounds=2)
        assert len(client._obfuscators) == 2 * cells
        client.refresh_request()
        assert len(client._obfuscators) == cells
        client.refresh_request()
        assert len(client._obfuscators) == 0
