"""Cross-variant conformance: one scenario, three protocols, one truth.

A downstream user should be able to swap protocol variants without
changing outcomes.  This suite runs the baseline (STP), the two-server
(threshold), and the packed variant against the same scenario and the
plaintext oracle, through the same client-facing surfaces: request
rounds, cached refreshes, power negotiation, and license sessions.
"""

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.negotiation import PowerNegotiator
from repro.pisa.packed import PackedCoordinator
from repro.pisa.protocol import PisaCoordinator
from repro.pisa.session import SessionState, SuSession
from repro.pisa.two_server import TwoServerCoordinator
from repro.watch.sdc import PlaintextSDC
from repro.watch.scenario import ScenarioConfig, build_scenario

VARIANTS = {
    "baseline": (PisaCoordinator, 256),
    "two-server": (TwoServerCoordinator, 256),
    "packed": (PackedCoordinator, 512),  # packing needs slot room
}


@pytest.fixture(scope="module")
def cross_scenario():
    return build_scenario(ScenarioConfig(seed=4, num_sus=3))


@pytest.fixture(scope="module")
def cross_oracle(cross_scenario):
    sdc = PlaintextSDC(cross_scenario.environment)
    for pu in cross_scenario.pus:
        sdc.pu_update(pu)
    return sdc


@pytest.fixture(scope="module", params=sorted(VARIANTS))
def deployment(request, cross_scenario):
    cls, key_bits = VARIANTS[request.param]
    coordinator = cls(
        cross_scenario.environment,
        key_bits=key_bits,
        rng=DeterministicRandomSource(f"cross-{request.param}"),
    )
    for pu in cross_scenario.pus:
        coordinator.enroll_pu(pu)
    for su in cross_scenario.sus:
        coordinator.enroll_su(su)
    return request.param, coordinator


class TestConformance:
    def test_decisions_match_oracle(self, deployment, cross_oracle, cross_scenario):
        name, coordinator = deployment
        for su in cross_scenario.sus:
            assert (
                coordinator.run_request_round(su.su_id).granted
                == cross_oracle.process_request(su).granted
            ), (name, su.su_id)

    def test_refresh_rounds_supported_everywhere(
        self, deployment, cross_scenario
    ):
        name, coordinator = deployment
        su = cross_scenario.sus[0]
        fresh = coordinator.run_request_round(su.su_id)
        cached = coordinator.run_request_round(su.su_id, reuse_cached_request=True)
        assert fresh.granted == cached.granted, name

    def test_negotiation_works_everywhere(self, deployment, cross_scenario):
        name, coordinator = deployment
        su = cross_scenario.sus[0]
        result = PowerNegotiator(coordinator, resolution_db=8.0).negotiate(
            su, floor_dbm=-20.0, cap_dbm=36.0
        )
        assert result.rounds_used >= 1, name

    def test_sessions_work_everywhere(self, deployment, cross_scenario, cross_oracle):
        name, coordinator = deployment
        granted_su = next(
            su for su in cross_scenario.sus
            if cross_oracle.process_request(su).granted
        )

        class Clock:
            now = 2_000_000.0

            def __call__(self):
                return self.now

        clock = Clock()
        # Point the license issuer at the same clock so validity windows
        # line up (the SDC attribute differs by variant).
        sdc = getattr(coordinator, "sdc", None) or coordinator.front
        sdc._clock = clock
        session = SuSession(
            coordinator, granted_su.su_id, clock=clock,
            renew_margin_s=60,
        )
        status = session.ensure_license()
        assert status.state is SessionState.LICENSED, name
        clock.now += status.license.valid_seconds + 1
        renewed = session.ensure_license()
        assert renewed.renewals == 2, name


class TestVariantDistinctions:
    def test_packed_is_smaller_on_the_wire(self, cross_scenario):
        reports = {}
        for name in ("baseline", "packed"):
            cls, key_bits = VARIANTS[name]
            coordinator = cls(
                cross_scenario.environment, key_bits=512,
                rng=DeterministicRandomSource(f"size-{name}"),
            )
            su = cross_scenario.sus[0]
            coordinator.enroll_su(su)
            reports[name] = coordinator.run_request_round(su.su_id)
        assert (
            reports["packed"].request_bytes
            < reports["baseline"].request_bytes / 2
        )

    def test_two_server_extraction_carries_partials(self, cross_scenario):
        cls, key_bits = VARIANTS["two-server"]
        coordinator = cls(
            cross_scenario.environment, key_bits=key_bits,
            rng=DeterministicRandomSource("partials"),
        )
        su = cross_scenario.sus[0]
        coordinator.enroll_su(su)
        report = coordinator.run_request_round(su.su_id)
        assert report.sign_extraction_bytes > 1.7 * report.request_bytes
