"""Tests for the STP-free two-server variant (§VII future work)."""

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ProtocolError, SerializationError
from repro.pisa.two_server import (
    BackendServer,
    PartialSignExtractionRequest,
    TwoServerCoordinator,
    deal_two_server_keys,
)
from repro.watch.sdc import PlaintextSDC
from repro.watch.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def deployment(pisa_scenario):
    coord = TwoServerCoordinator(
        pisa_scenario.environment,
        key_bits=256,
        rng=DeterministicRandomSource("two-server"),
    )
    for pu in pisa_scenario.pus:
        coord.enroll_pu(pu)
    for su in pisa_scenario.sus:
        coord.enroll_su(su)
    return coord


class TestDecisionEquivalence:
    def test_matches_plaintext_oracle(self, deployment, oracle, pisa_scenario):
        for su in pisa_scenario.sus:
            plain = oracle.process_request(su)
            report = deployment.run_request_round(su.su_id)
            assert report.granted == plain.granted, su.su_id

    def test_matches_stp_variant(self, pisa_scenario, coordinator, deployment):
        """Both privacy-preserving variants must agree with each other."""
        for su in pisa_scenario.sus:
            stp_report = coordinator.run_request_round(su.su_id)
            two_server_report = deployment.run_request_round(
                su.su_id, reuse_cached_request=True
            )
            assert stp_report.granted == two_server_report.granted

    def test_refresh_path(self, deployment, pisa_scenario):
        su = pisa_scenario.sus[0]
        fresh = deployment.run_request_round(su.su_id)
        cached = deployment.run_request_round(su.su_id, reuse_cached_request=True)
        assert fresh.granted == cached.granted


class TestTrustModel:
    def test_backend_cannot_decrypt_alone(self, deployment, fresh_rng):
        """The backend's share alone cannot open a protocol ciphertext."""
        from repro.crypto.threshold import combine_partials

        pk = deployment.group_public_key
        ct = pk.encrypt(12345, rng=fresh_rng)
        own = deployment.backend._share.partial_decrypt(ct)
        from repro.errors import DecryptionError

        with pytest.raises(DecryptionError):
            combine_partials(pk, [own])

    def test_share_key_mismatch_rejected(self, fresh_rng):
        keypair_a, directory_a = deal_two_server_keys(128, rng=fresh_rng)
        keypair_b, _ = deal_two_server_keys(128, rng=fresh_rng)
        with pytest.raises(ProtocolError):
            BackendServer(keypair_b.shares[1], directory_a)

    def test_unregistered_su_rejected(self, deployment, pisa_scenario, fresh_rng):
        su = pisa_scenario.sus[0]
        request = deployment.su_client(su.su_id).prepare_request()
        extraction = deployment.front.start_request_with_partials(request)
        spoofed = PartialSignExtractionRequest(
            round_id=extraction.round_id,
            su_id="ghost",
            matrix=extraction.matrix,
            partials=extraction.partials,
        )
        with pytest.raises(ProtocolError):
            deployment.backend.handle_partial_extraction(spoofed)
        # Finish the legitimate round to leave clean state.
        conversion = deployment.backend.handle_partial_extraction(extraction)
        deployment.front.finish_request(conversion)


class TestMessages:
    def test_partials_shape_validated(self, deployment, pisa_scenario):
        su = pisa_scenario.sus[0]
        request = deployment.su_client(su.su_id).prepare_request()
        extraction = deployment.front.start_request_with_partials(request)
        with pytest.raises(SerializationError):
            PartialSignExtractionRequest(
                round_id=extraction.round_id,
                su_id=extraction.su_id,
                matrix=extraction.matrix,
                partials=extraction.partials[:-1],
            )
        conversion = deployment.backend.handle_partial_extraction(extraction)
        deployment.front.finish_request(conversion)

    def test_wire_size_roughly_doubles(self, deployment, pisa_scenario):
        """Extraction carries matrix + partials: ≈2x the STP variant's Ṽ."""
        su = pisa_scenario.sus[0]
        report = deployment.run_request_round(su.su_id, reuse_cached_request=True)
        assert report.sign_extraction_bytes > 1.7 * report.request_bytes


class TestAccounting:
    def test_four_messages_per_round(self, deployment, pisa_scenario):
        before = deployment.transport.count()
        deployment.run_request_round(
            pisa_scenario.sus[0].su_id, reuse_cached_request=True
        )
        assert deployment.transport.count() - before == 4

    def test_backend_combined_every_cell(self, deployment, pisa_scenario):
        env = pisa_scenario.environment
        cells_per_round = env.num_channels * env.num_blocks
        assert deployment.backend.cells_combined % cells_per_round == 0
        assert deployment.backend.cells_combined > 0
