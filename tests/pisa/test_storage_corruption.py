"""Fuzz-ish corruption coverage for the CRC frame and state-file layer.

Every truncation and every single-byte flip of a durable artifact must
surface as a *typed* :mod:`repro.errors` exception — never a crash with
a bare ``struct``/``IndexError`` and never silently-wrong state.
"""

import pytest

from repro.errors import IntegrityError, SerializationError
from repro.pisa.storage import (
    FRAME_OVERHEAD,
    frame_payload,
    read_state_file,
    restore_directory,
    unframe_payload,
    write_state_file,
)

TYPED = (IntegrityError, SerializationError)


class TestFrameRoundTrip:
    def test_round_trip(self):
        framed = frame_payload(b"hello")
        payload, offset = unframe_payload(framed)
        assert payload == b"hello"
        assert offset == len(framed)

    def test_empty_payload_round_trips(self):
        payload, _ = unframe_payload(frame_payload(b""))
        assert payload == b""

    def test_overhead_constant_is_exact(self):
        assert len(frame_payload(b"x" * 10)) == 10 + FRAME_OVERHEAD

    def test_consecutive_frames_chain_by_offset(self):
        buffer = frame_payload(b"one") + frame_payload(b"two")
        first, offset = unframe_payload(buffer)
        second, end = unframe_payload(buffer, offset)
        assert (first, second) == (b"one", b"two")
        assert end == len(buffer)


class TestFrameCorruption:
    def test_every_truncation_is_typed(self):
        framed = frame_payload(b"a realistic payload, not tiny")
        for cut in range(len(framed)):
            with pytest.raises(IntegrityError):
                unframe_payload(framed[:cut])

    def test_every_single_byte_flip_is_typed(self):
        framed = frame_payload(b"flip me")
        for index in range(len(framed)):
            corrupted = bytearray(framed)
            corrupted[index] ^= 0xFF
            with pytest.raises(IntegrityError):
                unframe_payload(bytes(corrupted))

    def test_wrong_magic_is_typed(self):
        framed = b"XX" + frame_payload(b"data")[2:]
        with pytest.raises(IntegrityError):
            unframe_payload(framed)

    def test_payload_swap_fails_crc(self):
        framed = bytearray(frame_payload(b"AAAA"))
        framed[-8:-4] = b"BBBB"  # swap payload, keep old CRC
        with pytest.raises(IntegrityError):
            unframe_payload(bytes(framed))


class TestStateFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "state.bin"
        write_state_file(path, b"snapshot-bytes")
        assert read_state_file(path) == b"snapshot-bytes"

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "state.bin"
        write_state_file(path, b"blob")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["state.bin"]

    def test_every_truncation_is_typed(self, tmp_path):
        path = tmp_path / "state.bin"
        write_state_file(path, b"some snapshot worth protecting")
        raw = path.read_bytes()
        for cut in range(len(raw)):
            path.write_bytes(raw[:cut])
            with pytest.raises(TYPED):
                read_state_file(path)

    def test_every_single_byte_flip_is_typed(self, tmp_path):
        path = tmp_path / "state.bin"
        write_state_file(path, b"short blob")
        raw = path.read_bytes()
        for index in range(len(raw)):
            corrupted = bytearray(raw)
            corrupted[index] ^= 0x01
            path.write_bytes(bytes(corrupted))
            with pytest.raises(TYPED):
                read_state_file(path)

    def test_trailing_garbage_is_typed(self, tmp_path):
        path = tmp_path / "state.bin"
        write_state_file(path, b"blob")
        path.write_bytes(path.read_bytes() + b"\x00")
        with pytest.raises(IntegrityError):
            read_state_file(path)

    def test_not_a_state_file_is_typed(self, tmp_path):
        path = tmp_path / "state.bin"
        path.write_bytes(b"random junk, no magic")
        with pytest.raises(IntegrityError):
            read_state_file(path)


class TestSnapshotBlobFuzz:
    """Truncating a real directory snapshot must always raise typed."""

    def test_directory_snapshot_truncations(self, coordinator):
        from repro.pisa.storage import serialize_directory

        blob = serialize_directory(coordinator.stp.directory)
        # Fuzz a spread of prefixes (full x every-cut is O(len^2) work on
        # a multi-kB blob; a stride plus the edges covers every decoder
        # state transition).
        cuts = set(range(0, min(len(blob), 64)))
        cuts.update(range(0, len(blob), 37))
        cuts.add(len(blob) - 1)
        for cut in sorted(cuts):
            with pytest.raises(SerializationError):
                restore_directory(blob[:cut])

    def test_directory_snapshot_byte_flips(self, coordinator):
        from repro.pisa.storage import serialize_directory

        blob = serialize_directory(coordinator.stp.directory)
        for index in range(0, len(blob), 53):
            corrupted = bytearray(blob)
            corrupted[index] ^= 0xFF
            try:
                restore_directory(bytes(corrupted))
            except TYPED:
                pass  # typed rejection is the expected common case
            # A flip inside key material can decode into a *different*
            # valid snapshot — that is the CRC frame layer's job to
            # catch (TestStateFile above), not the blob decoder's.
