"""Tests for private power negotiation."""

import pytest

from repro.errors import ConfigurationError
from repro.pisa.negotiation import PowerNegotiator
from repro.watch.entities import SUTransmitter


@pytest.fixture(scope="module")
def negotiator(coordinator):
    return PowerNegotiator(coordinator, resolution_db=2.0)


@pytest.fixture(scope="module")
def boundary_su(pisa_scenario, oracle):
    """An SU whose admissibility flips inside the search bracket."""
    for su in pisa_scenario.sus:
        low = oracle.process_request(su.with_power(-20.0)).granted
        high = oracle.process_request(su.with_power(36.0)).granted
        if low and not high:
            return su
    pytest.skip("no boundary SU in this scenario")


class TestBracketing:
    def test_cap_granted_short_circuits(self, negotiator, pisa_scenario, oracle):
        granted_sus = [
            su for su in pisa_scenario.sus
            if oracle.process_request(su.with_power(36.0)).granted
        ]
        if not granted_sus:
            pytest.skip("no fully admissible SU")
        result = negotiator.negotiate(granted_sus[0])
        assert result.best_power_dbm == 36.0
        assert result.rounds_used == 1

    def test_floor_denied_reports_inadmissible(
        self, negotiator, pisa_scenario, oracle
    ):
        blocked = [
            su for su in pisa_scenario.sus
            if not oracle.process_request(su.with_power(-20.0)).granted
        ]
        if not blocked:
            pytest.skip("no fully blocked SU")
        result = negotiator.negotiate(blocked[0])
        assert not result.admitted
        assert result.rounds_used == 2


class TestSearch:
    def test_converges_to_oracle_threshold(self, negotiator, boundary_su, oracle):
        result = negotiator.negotiate(boundary_su)
        assert result.admitted
        assert result.lowest_denied_dbm is not None
        gap = result.lowest_denied_dbm - result.best_power_dbm
        assert 0 < gap <= negotiator.resolution_db + 1e-9
        # The found point really is granted and the bound really denied,
        # per the plaintext oracle.
        assert oracle.process_request(
            boundary_su.with_power(result.best_power_dbm)
        ).granted
        assert not oracle.process_request(
            boundary_su.with_power(result.lowest_denied_dbm)
        ).granted

    def test_round_budget_logarithmic(self, negotiator, boundary_su):
        result = negotiator.negotiate(boundary_su)
        # 2 bracket probes + ceil(log2(56 / 2)) ≤ 8.
        assert result.rounds_used <= 8

    def test_probe_trace_is_monotone_consistent(self, negotiator, boundary_su):
        """Every granted probe power < every denied probe power would be
        too strong (resolution), but grants must never exceed the final
        denied bound."""
        result = negotiator.negotiate(boundary_su)
        granted = [p for p, ok in result.probes if ok]
        denied = [p for p, ok in result.probes if not ok]
        assert max(granted) <= min(denied)


class TestValidation:
    def test_bad_resolution(self, coordinator):
        with pytest.raises(ConfigurationError):
            PowerNegotiator(coordinator, resolution_db=0.0)

    def test_bad_bracket(self, negotiator, pisa_scenario):
        with pytest.raises(ConfigurationError):
            negotiator.negotiate(pisa_scenario.sus[0], floor_dbm=10.0, cap_dbm=5.0)
