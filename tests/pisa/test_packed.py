"""Tests for the packed-request protocol extension."""

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.errors import BlindingError, ProtocolError
from repro.pisa.packed import (
    PackedCoordinator,
    PackedProtocolConfig,
    PackedSignExtractionResponse,
)
from repro.watch.sdc import PlaintextSDC
from repro.watch.scenario import ScenarioConfig, build_scenario

#: Packed mode needs room for slots: 512-bit keys give 3 slots here.
PACKED_KEY_BITS = 512


@pytest.fixture(scope="module")
def packed_scenario():
    return build_scenario(ScenarioConfig(seed=4, num_sus=3))


@pytest.fixture(scope="module")
def deployment(packed_scenario):
    coord = PackedCoordinator(
        packed_scenario.environment,
        key_bits=PACKED_KEY_BITS,
        rng=DeterministicRandomSource("packed-tests"),
    )
    for pu in packed_scenario.pus:
        coord.enroll_pu(pu)
    for su in packed_scenario.sus:
        coord.enroll_su(su)
    return coord


@pytest.fixture(scope="module")
def packed_oracle(packed_scenario):
    sdc = PlaintextSDC(packed_scenario.environment)
    for pu in packed_scenario.pus:
        sdc.pu_update(pu)
    return sdc


class TestConfig:
    def test_layout_has_multiple_slots(self, deployment):
        assert deployment.layout.num_slots >= 2

    def test_unsafe_alpha_rejected(self, packed_scenario, fresh_rng):
        from repro.crypto.paillier import generate_keypair

        kp = generate_keypair(512, rng=fresh_rng)
        config = PackedProtocolConfig(alpha_bits=8)
        with pytest.raises(BlindingError):
            config.layout(kp.public_key, packed_scenario.environment)


class TestDecisionEquivalence:
    def test_matches_plaintext_oracle(self, deployment, packed_oracle, packed_scenario):
        for su in packed_scenario.sus:
            plain = packed_oracle.process_request(su)
            report = deployment.run_request_round(su.su_id)
            assert report.granted == plain.granted, su.su_id

    def test_both_outcomes_exercised(self, packed_oracle, packed_scenario):
        outcomes = {
            packed_oracle.process_request(su).granted for su in packed_scenario.sus
        }
        assert outcomes == {True, False}

    def test_pu_churn_tracked(self, packed_scenario):
        """Packed SDC must fold PU re-submissions like the baseline."""
        scenario = build_scenario(ScenarioConfig(seed=8, num_sus=1))
        oracle = PlaintextSDC(scenario.environment)
        coord = PackedCoordinator(
            scenario.environment, key_bits=PACKED_KEY_BITS,
            rng=DeterministicRandomSource("packed-churn"),
        )
        clients = {}
        for pu in scenario.pus:
            oracle.pu_update(pu)
            clients[pu.receiver_id] = coord.enroll_pu(pu)
        su = scenario.sus[0]
        coord.enroll_su(su)
        assert (
            coord.run_request_round(su.su_id).granted
            == oracle.process_request(su).granted
        )
        # Switch all PUs off and re-check.
        for pu in scenario.pus:
            update = clients[pu.receiver_id].switch_channel(None)
            if update is not None:
                coord.sdc.handle_pu_update(update)
            oracle.pu_update(pu.switched_to(None))
        assert (
            coord.run_request_round(su.su_id).granted
            == oracle.process_request(su).granted
        )


class TestEfficiency:
    def test_request_smaller_than_unpacked(self, deployment, packed_scenario):
        """The headline: request size shrinks by ≈ the slot count."""
        env = packed_scenario.environment
        su = packed_scenario.sus[0]
        report = deployment.run_request_round(su.su_id)
        cells = env.num_channels * env.num_blocks
        ct_bytes = 4 + (2 * PACKED_KEY_BITS + 7) // 8
        unpacked_estimate = cells * ct_bytes
        k = deployment.layout.num_slots
        assert report.request_bytes < unpacked_estimate / (k - 1)

    def test_stp_work_scales_with_chunks(self, deployment, packed_scenario):
        env = packed_scenario.environment
        k = deployment.layout.num_slots
        chunks_per_row = deployment.layout.chunk_count(env.num_blocks)
        expected_per_round = env.num_channels * chunks_per_row
        # Dummies add dummy_fraction more.
        converted = deployment.stp.chunks_converted
        rounds = deployment.sdc.chunks_processed / expected_per_round
        assert converted >= deployment.sdc.chunks_processed  # + dummies


class TestRobustness:
    def test_unknown_round_rejected(self, deployment):
        response = PackedSignExtractionResponse("packed-round-999", "su", ())
        with pytest.raises(ProtocolError):
            deployment.sdc.finish_request(response)

    def test_wrong_su_rejected(self, deployment, packed_scenario):
        su = packed_scenario.sus[0]
        request = deployment.su_client(su.su_id).prepare_request()
        extraction = deployment.sdc.start_request(request)
        spoofed = PackedSignExtractionResponse(
            extraction.round_id, "other-su", ()
        )
        with pytest.raises(ProtocolError):
            deployment.sdc.finish_request(spoofed)
        conversion = deployment.stp.handle_sign_extraction(extraction)
        deployment.sdc.finish_request(conversion)

    def test_unregistered_su_rejected(self, deployment, packed_scenario, fresh_rng):
        from repro.pisa.packed import PackedSignExtractionRequest

        request = PackedSignExtractionRequest(
            round_id="r", su_id="ghost",
            chunks=(deployment.stp.group_public_key.encrypt(0, rng=fresh_rng),),
        )
        with pytest.raises(ProtocolError):
            deployment.stp.handle_sign_extraction(request)


class TestDummyDilution:
    def test_extraction_carries_dummies(self, deployment, packed_scenario):
        su = packed_scenario.sus[0]
        request = deployment.su_client(su.su_id).prepare_request()
        extraction = deployment.sdc.start_request(request)
        env = packed_scenario.environment
        real = env.num_channels * deployment.layout.chunk_count(env.num_blocks)
        assert len(extraction.chunks) > real
        conversion = deployment.stp.handle_sign_extraction(extraction)
        report = deployment.sdc.finish_request(conversion)

    def test_shuffle_changes_order(self, packed_scenario):
        """Two SDCs with different randomness place real chunks differently."""
        positions = []
        for seed in ("shuffle-a", "shuffle-b"):
            coord = PackedCoordinator(
                packed_scenario.environment, key_bits=PACKED_KEY_BITS,
                rng=DeterministicRandomSource(seed),
            )
            su = packed_scenario.sus[0]
            coord.enroll_su(su)
            request = coord.su_client(su.su_id).prepare_request()
            extraction = coord.sdc.start_request(request)
            pending = coord.sdc._pending[extraction.round_id]
            positions.append(pending.real_positions)
        assert positions[0] != positions[1]
