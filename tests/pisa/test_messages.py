"""Serialisation round-trips for the protocol messages."""

import pytest

from repro.errors import SerializationError
from repro.pisa.license import TransmissionLicense
from repro.pisa.messages import (
    LicenseResponse,
    PUUpdateMessage,
    SignExtractionRequest,
    SignExtractionResponse,
    SURequestMessage,
)


def ct_matrix(pk, rng, rows, cols, base=0):
    return tuple(
        tuple(pk.encrypt(base + r * cols + c, rng=rng) for c in range(cols))
        for r in range(rows)
    )


class TestPUUpdateMessage:
    def test_roundtrip(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        cts = tuple(pk.encrypt(v, rng=fresh_rng) for v in (-5, 0, 7))
        msg = PUUpdateMessage(pu_id="pu-3", block_index=12, ciphertexts=cts)
        decoded = PUUpdateMessage.from_bytes(msg.to_bytes(), pk)
        assert decoded.pu_id == "pu-3"
        assert decoded.block_index == 12
        assert [sk.decrypt(ct) for ct in decoded.ciphertexts] == [-5, 0, 7]

    def test_wire_size_matches_bytes(self, keypair, fresh_rng):
        pk = keypair.public_key
        msg = PUUpdateMessage(
            "pu", 0, tuple(pk.encrypt(i, rng=fresh_rng) for i in range(4))
        )
        assert msg.wire_size() == len(msg.to_bytes())

    def test_size_linear_in_channels(self, keypair, fresh_rng):
        """§VI-A: PU update size grows with C, independent of B."""
        pk = keypair.public_key

        def size(c):
            return PUUpdateMessage(
                "pu", 0, tuple(pk.encrypt(0, rng=fresh_rng) for _ in range(c))
            ).wire_size()

        s2, s4, s8 = size(2), size(4), size(8)
        assert abs((s8 - s4) - 2 * (s4 - s2)) <= 16  # linear growth

    def test_trailing_bytes_rejected(self, keypair, fresh_rng):
        pk = keypair.public_key
        msg = PUUpdateMessage("pu", 0, (pk.encrypt(1, rng=fresh_rng),))
        with pytest.raises(SerializationError):
            PUUpdateMessage.from_bytes(msg.to_bytes() + b"\x00", pk)


class TestSURequestMessage:
    def test_roundtrip(self, keypair, fresh_rng):
        pk, sk = keypair.public_key, keypair.private_key
        msg = SURequestMessage(
            su_id="su-1",
            region_blocks=(0, 3, 5),
            matrix=ct_matrix(pk, fresh_rng, 2, 3),
        )
        decoded = SURequestMessage.from_bytes(msg.to_bytes(), pk)
        assert decoded.su_id == "su-1"
        assert decoded.region_blocks == (0, 3, 5)
        assert decoded.num_channels == 2
        assert sk.decrypt(decoded.matrix[1][2]) == 5

    def test_row_width_validated(self, keypair, fresh_rng):
        pk = keypair.public_key
        with pytest.raises(SerializationError):
            SURequestMessage(
                su_id="su",
                region_blocks=(0, 1),
                matrix=ct_matrix(pk, fresh_rng, 1, 3),
            )

    def test_digest_bytes_stable(self, keypair, fresh_rng):
        pk = keypair.public_key
        msg = SURequestMessage("su", (0,), ct_matrix(pk, fresh_rng, 1, 1))
        assert msg.digest_bytes() == msg.to_bytes()


class TestSignExtractionMessages:
    def test_request_roundtrip(self, keypair, fresh_rng):
        pk = keypair.public_key
        msg = SignExtractionRequest(
            round_id="round-9", su_id="su-2", matrix=ct_matrix(pk, fresh_rng, 2, 2)
        )
        decoded = SignExtractionRequest.from_bytes(msg.to_bytes(), pk)
        assert decoded.round_id == "round-9"
        assert decoded.su_id == "su-2"
        assert len(decoded.matrix) == 2

    def test_response_roundtrip(self, second_keypair, fresh_rng):
        pk = second_keypair.public_key  # the SU's personal key
        msg = SignExtractionResponse(
            round_id="round-9", su_id="su-2", matrix=ct_matrix(pk, fresh_rng, 2, 2)
        )
        decoded = SignExtractionResponse.from_bytes(msg.to_bytes(), pk)
        assert decoded.round_id == "round-9"


class TestLicenseResponse:
    def test_wire_size_is_small(self, second_keypair, fresh_rng):
        """§VI-A: the response is a license plus ONE ciphertext (~kb)."""
        pk = second_keypair.public_key
        lic = TransmissionLicense(
            su_id="su",
            issuer_id="sdc",
            request_digest=b"\x00" * 32,
            channels=tuple(range(5)),
            issued_at=0,
        )
        response = LicenseResponse(
            license=lic, encrypted_signature=pk.encrypt(1, rng=fresh_rng)
        )
        # One 256-bit-key ciphertext is 64 bytes; license body is small.
        assert response.wire_size() < 400
        assert response.wire_size() == len(response.to_bytes())


class TestLicenseResponseRoundtrip:
    def test_from_bytes(self, second_keypair, fresh_rng):
        pk, sk = second_keypair.public_key, second_keypair.private_key
        lic = TransmissionLicense(
            su_id="su-9",
            issuer_id="sdc",
            request_digest=b"\x07" * 32,
            channels=(0, 2),
            issued_at=123,
        )
        response = LicenseResponse(
            license=lic, encrypted_signature=pk.encrypt(777, rng=fresh_rng)
        )
        decoded = LicenseResponse.from_bytes(response.to_bytes(), pk)
        assert decoded.license == lic
        assert sk.decrypt(decoded.encrypted_signature) == 777
