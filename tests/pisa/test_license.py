"""Unit tests for transmission licenses."""

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.signatures import RsaFdhSigner, RsaFdhVerifier, generate_rsa_keypair
from repro.pisa.license import TransmissionLicense


@pytest.fixture(scope="module")
def signer_verifier():
    public, private = generate_rsa_keypair(
        128, rng=DeterministicRandomSource("license-tests")
    )
    return RsaFdhSigner(private), RsaFdhVerifier(public)


def make_license(**overrides):
    defaults = dict(
        su_id="su-7",
        issuer_id="sdc",
        request_digest=b"\x01" * 32,
        channels=(0, 1, 2),
        issued_at=1_700_000_000,
    )
    defaults.update(overrides)
    return TransmissionLicense(**defaults)


class TestCanonicalBytes:
    def test_deterministic(self):
        assert make_license().to_bytes() == make_license().to_bytes()

    def test_field_sensitivity(self):
        base = make_license().to_bytes()
        assert make_license(su_id="other").to_bytes() != base
        assert make_license(issuer_id="other").to_bytes() != base
        assert make_license(request_digest=b"\x02" * 32).to_bytes() != base
        assert make_license(channels=(0,)).to_bytes() != base
        assert make_license(issued_at=1).to_bytes() != base
        assert make_license(valid_seconds=60).to_bytes() != base

    def test_versioned_prefix(self):
        assert make_license().to_bytes().startswith(b"PISA-LICENSE-v1")


class TestSignVerify:
    def test_roundtrip(self, signer_verifier):
        signer, verifier = signer_verifier
        lic = make_license()
        sig = lic.sign(signer)
        assert lic.verify(verifier, sig)

    def test_tampered_license_fails(self, signer_verifier):
        signer, verifier = signer_verifier
        sig = make_license().sign(signer)
        assert not make_license(su_id="mallory").verify(verifier, sig)

    def test_digest_helper(self):
        assert TransmissionLicense.digest_of(b"request") == __import__(
            "hashlib"
        ).sha256(b"request").digest()


class TestLicenseSerialization:
    def test_roundtrip(self):
        lic = make_license()
        assert TransmissionLicense.from_bytes(lic.to_bytes()) == lic

    def test_bad_magic_rejected(self):
        from repro.errors import SerializationError

        with pytest.raises(SerializationError):
            TransmissionLicense.from_bytes(b"NOT-A-LICENSE")

    def test_trailing_bytes_rejected(self):
        from repro.errors import SerializationError

        with pytest.raises(SerializationError):
            TransmissionLicense.from_bytes(make_license().to_bytes() + b"\x00")


class TestValidityWindow:
    def test_inside_window(self):
        lic = make_license(issued_at=1000, valid_seconds=60)
        assert lic.is_valid_at(1000)
        assert lic.is_valid_at(1059)

    def test_outside_window(self):
        lic = make_license(issued_at=1000, valid_seconds=60)
        assert not lic.is_valid_at(999)
        assert not lic.is_valid_at(1060)
