"""Unit tests for the PU-side client (Figure 4)."""

import pytest

from repro.crypto.paillier import generate_keypair
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ProtocolError
from repro.pisa.pu_client import PUClient
from repro.watch.entities import PUReceiver
from repro.watch.matrices import pu_update_matrix


@pytest.fixture()
def group_keys(fresh_rng):
    return generate_keypair(256, rng=fresh_rng)


@pytest.fixture()
def client(scenario, group_keys, fresh_rng):
    return PUClient(
        scenario.pus[0], scenario.environment, group_keys.public_key, rng=fresh_rng
    )


class TestBuildUpdate:
    def test_one_ciphertext_per_channel(self, client, scenario):
        update = client.build_update()
        assert len(update.ciphertexts) == scenario.params.num_channels
        assert update.block_index == client.pu.block_index
        assert update.pu_id == client.pu.receiver_id

    def test_ciphertexts_encrypt_w_entries(self, client, scenario, group_keys):
        """The encrypted vector must decrypt to W = T − E at the PU's cell."""
        update = client.build_update()
        env = scenario.environment
        w = pu_update_matrix(client.pu, env.e_matrix, env.params)
        block = client.pu.block_index
        decrypted = [group_keys.private_key.decrypt(ct) for ct in update.ciphertexts]
        assert decrypted == [int(w[c, block]) for c in range(env.num_channels)]

    def test_counter(self, client):
        assert client.updates_sent == 0
        client.build_update()
        client.build_update()
        assert client.updates_sent == 2


class TestSwitchChannel:
    def test_physical_switch_produces_update(self, client, scenario):
        plan = scenario.environment.plan
        old = client.pu.channel_slot
        new = next(
            s for s in range(scenario.params.num_channels)
            if not plan.same_physical(old, s)
        )
        update = client.switch_channel(new, signal_strength_mw=1e-4)
        assert update is not None
        assert client.pu.channel_slot == new

    def test_virtual_switch_skips_update(self, group_keys, fresh_rng):
        """§VI-A: same physical channel → no SDC notification needed.

        With 39 slots over 38 physical channels, slots 0 and 38 are
        virtual twins on physical channel 14.
        """
        from repro.geo.grid import BlockGrid
        from repro.watch.environment import SpectrumEnvironment
        from repro.watch.params import WatchParameters

        env = SpectrumEnvironment(
            BlockGrid(rows=1, cols=2), WatchParameters(num_channels=39)
        )
        pu = PUReceiver("pu", block_index=0, channel_slot=0, signal_strength_mw=1e-4)
        client = PUClient(pu, env, group_keys.public_key, rng=fresh_rng)
        assert env.plan.same_physical(0, 38)
        update = client.switch_channel(38, signal_strength_mw=1e-4)
        assert update is None
        assert client.pu.channel_slot == 38
        # A genuine physical switch still updates.
        assert client.switch_channel(1, signal_strength_mw=1e-4) is not None

    def test_switch_off_produces_update(self, client):
        update = client.switch_channel(None)
        assert update is not None
        assert not client.pu.is_active

    def test_off_to_off_is_silent(self, client):
        client.switch_channel(None)
        assert client.switch_channel(None) is None

    def test_out_of_plan_slot_rejected(self, client, scenario):
        with pytest.raises(ProtocolError):
            client.switch_channel(scenario.params.num_channels, signal_strength_mw=1e-4)
