"""PISA test fixtures: a fully enrolled deployment on the small scenario."""

from __future__ import annotations

import pytest

from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.protocol import PisaCoordinator
from repro.watch.sdc import PlaintextSDC
from repro.watch.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def pisa_scenario():
    # Seed 4 yields a mix of grant and deny decisions among the SUs,
    # which the equivalence tests require.
    return build_scenario(ScenarioConfig(seed=4, num_sus=3))


@pytest.fixture(scope="module")
def coordinator(pisa_scenario):
    """A deployed PISA system with all PUs and SUs enrolled."""
    coord = PisaCoordinator(
        pisa_scenario.environment,
        key_bits=256,
        rng=DeterministicRandomSource("pisa-fixture"),
    )
    for pu in pisa_scenario.pus:
        coord.enroll_pu(pu)
    for su in pisa_scenario.sus:
        coord.enroll_su(su)
    return coord


@pytest.fixture(scope="module")
def oracle(pisa_scenario):
    """The plaintext WATCH SDC with the same PU state — the truth."""
    sdc = PlaintextSDC(pisa_scenario.environment)
    for pu in pisa_scenario.pus:
        sdc.pu_update(pu)
    return sdc
