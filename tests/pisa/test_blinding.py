"""Unit and property tests for the eq. (14) blinding factors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import PaillierPublicKey
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import BlindingError
from repro.pisa.blinding import (
    MIN_ALPHA_BITS,
    BlindingFactory,
    BlindingParameters,
    CellBlinding,
)


def fake_key(bits: int) -> PaillierPublicKey:
    """A structurally valid public key of a given size (no prime check
    needed for parameter derivation)."""
    return PaillierPublicKey((1 << (bits - 1)) + 15)


class TestParameterDerivation:
    def test_full_alpha_when_room(self):
        params = BlindingParameters.for_key(fake_key(2048), indicator_bound=1 << 66)
        assert params.alpha_bits == 100
        assert params.beta_bits == 99

    def test_clamped_alpha_on_small_key(self):
        # 140-bit key: headroom = 139 − 67 − 2 = 70 bits < the 100 default.
        params = BlindingParameters.for_key(fake_key(140), indicator_bound=1 << 66)
        assert MIN_ALPHA_BITS <= params.alpha_bits < 100

    def test_unsafe_configuration_refused(self):
        with pytest.raises(BlindingError):
            BlindingParameters.for_key(fake_key(128), indicator_bound=1 << 100)

    def test_bad_bound_refused(self):
        with pytest.raises(BlindingError):
            BlindingParameters.for_key(fake_key(2048), indicator_bound=0)

    def test_safety_inequality(self):
        """α_max · bound + β_max < n/2 for the derived widths."""
        key = fake_key(512)
        bound = 1 << 66
        params = BlindingParameters.for_key(key, bound)
        worst = ((1 << params.alpha_bits) - 1) * bound + (1 << params.beta_bits) - 1
        assert worst < key.n // 2


class TestFactory:
    def test_draw_invariants(self):
        params = BlindingParameters.for_key(fake_key(1024), indicator_bound=1 << 66)
        factory = BlindingFactory(params, rng=DeterministicRandomSource(1))
        for _ in range(200):
            cell = factory.draw()
            assert 1 <= cell.beta < cell.alpha  # paper: α > β ≥ 1
            assert cell.alpha < 1 << params.alpha_bits
            assert cell.epsilon in (-1, 1)

    def test_epsilon_is_balanced(self):
        params = BlindingParameters.for_key(fake_key(1024), indicator_bound=1 << 66)
        factory = BlindingFactory(params, rng=DeterministicRandomSource(2))
        signs = [factory.draw().epsilon for _ in range(400)]
        positives = signs.count(1)
        assert 120 < positives < 280  # crude two-sided check

    def test_eta_large_and_positive(self):
        params = BlindingParameters.for_key(fake_key(1024), indicator_bound=1 << 66)
        factory = BlindingFactory(params, rng=DeterministicRandomSource(3))
        eta = factory.draw_eta()
        assert eta >= 1 << (params.alpha_bits - 1)


class TestSignPreservation:
    """DESIGN.md invariant 3: sign(ε·V) == sign'(I) for all I in range."""

    @settings(max_examples=300, deadline=None)
    @given(indicator=st.integers(min_value=-(1 << 66), max_value=1 << 66))
    def test_sign_recoverable(self, indicator):
        params = BlindingParameters.for_key(fake_key(512), indicator_bound=1 << 66)
        factory = BlindingFactory(params, rng=DeterministicRandomSource(indicator & 0xFFFF))
        cell = factory.draw()
        v = cell.blind_value(indicator)
        assert v != 0  # V can never be exactly zero (eq. (15) is total)
        x = 1 if v > 0 else -1
        q = cell.epsilon * x - 1  # eq. (16) in plaintext
        assert q == (0 if indicator > 0 else -2)  # eq. (13)

    def test_boundary_zero_maps_to_deny(self):
        """I = 0 must produce Q = −2 (budget exactly exhausted → deny)."""
        params = BlindingParameters.for_key(fake_key(512), indicator_bound=1 << 66)
        factory = BlindingFactory(params, rng=DeterministicRandomSource(0))
        for _ in range(50):
            cell = factory.draw()
            v = cell.blind_value(0)
            x = 1 if v > 0 else -1
            assert cell.epsilon * x - 1 == -2
