"""Table II — benchmark of the Paillier cryptosystem (n = 2048 bits).

Runs the exact operations of Table II at the paper's key size and prints
a paper-vs-measured comparison.  Absolute times differ (the paper used
GMP on an i5-2400; we run pure-Python big ints), but the *ordering* —
addition ≪ subtraction < 100-bit scaling < full scaling ≈ encryption —
is the reproducible claim, and sizes match bit-for-bit.
"""

import pytest
from conftest import emit

from repro.analysis.reporting import format_comparison_table

#: Paper-reported values (Table II) for the side-by-side print-out.
PAPER_TABLE2 = {
    "Public key size": "4096 bits",
    "Secret key size": "4096 bits",
    "Plaintext message size": "2048 bits",
    "Ciphertext size": "4096 bits",
    "Encryption": "30.378 ms",
    "Decryption": "21.170 ms",
    "Homomorphic addition": "0.004 ms",
    "Homomorphic subtraction": "0.073 ms",
    "Homomorphic scale (100-bit constant)": "1.564 ms",
    "Homomorphic scale": "18.867 ms",
}

_RESULTS: dict[str, float] = {}


@pytest.fixture(scope="module")
def material(paper_keypair, bench_rng):
    pk = paper_keypair.public_key
    return {
        "pk": pk,
        "sk": paper_keypair.private_key,
        "ct_a": pk.encrypt(123456789, rng=bench_rng),
        "ct_b": pk.encrypt(987654321, rng=bench_rng),
        "small_scalar": bench_rng.randbits(100) | 1,
        "full_scalar": bench_rng.randbits(pk.key_bits) | 1,
    }


def _record(name: str, benchmark) -> None:
    _RESULTS[name] = benchmark.stats["mean"] * 1e3  # ms


def test_sizes_match_paper(benchmark, paper_keypair):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pk = paper_keypair.public_key
    assert pk.key_bits == 2048
    # Public key (n, g): dominated by 2·2048 bits; ciphertext lives mod n².
    assert pk.n_sq.bit_length() in (4095, 4096)


def test_encryption(benchmark, material, bench_rng):
    pk = material["pk"]
    benchmark.pedantic(
        lambda: pk.encrypt(42, rng=bench_rng), rounds=8, iterations=1, warmup_rounds=1
    )
    _record("Encryption", benchmark)


def test_decryption(benchmark, material):
    sk, ct = material["sk"], material["ct_a"]
    benchmark.pedantic(lambda: sk.decrypt(ct), rounds=10, iterations=3, warmup_rounds=1)
    _record("Decryption", benchmark)


def test_homomorphic_addition(benchmark, material):
    a, b = material["ct_a"], material["ct_b"]
    benchmark(lambda: a.add(b))
    _record("Homomorphic addition", benchmark)


def test_homomorphic_subtraction(benchmark, material):
    a, b = material["ct_a"], material["ct_b"]
    benchmark.pedantic(lambda: a.subtract(b), rounds=10, iterations=5, warmup_rounds=1)
    _record("Homomorphic subtraction", benchmark)


def test_homomorphic_scale_100bit(benchmark, material):
    a, k = material["ct_a"], material["small_scalar"]
    benchmark.pedantic(lambda: a.scalar_mul(k), rounds=10, iterations=3, warmup_rounds=1)
    _record("Homomorphic scale (100-bit constant)", benchmark)


def test_homomorphic_scale_full(benchmark, material):
    a, k = material["ct_a"], material["full_scalar"]
    benchmark.pedantic(lambda: a.scalar_mul(k), rounds=6, iterations=1, warmup_rounds=1)
    _record("Homomorphic scale", benchmark)


def test_rerandomization(benchmark, material, bench_rng):
    """Not in Table II, but §VI-A's fast refresh path relies on it."""
    a = material["ct_a"]
    benchmark.pedantic(lambda: a.rerandomize(bench_rng), rounds=6, iterations=1,
                       warmup_rounds=1)
    _record("Re-randomisation", benchmark)


def test_zzz_render_table(benchmark, material):
    """Runs last (name-ordered within the module): prints the comparison."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pk = material["pk"]
    rows = [
        ("Public key size", PAPER_TABLE2["Public key size"], f"{2 * pk.key_bits} bits"),
        ("Secret key size", PAPER_TABLE2["Secret key size"], f"{2 * pk.key_bits} bits"),
        ("Plaintext message size", PAPER_TABLE2["Plaintext message size"],
         f"{pk.key_bits} bits"),
        ("Ciphertext size", PAPER_TABLE2["Ciphertext size"], f"{2 * pk.key_bits} bits"),
    ]
    for op in (
        "Encryption",
        "Decryption",
        "Homomorphic addition",
        "Homomorphic subtraction",
        "Homomorphic scale (100-bit constant)",
        "Homomorphic scale",
    ):
        measured = f"{_RESULTS[op]:.3f} ms" if op in _RESULTS else "n/a"
        rows.append((op, PAPER_TABLE2[op], measured))
    if "Re-randomisation" in _RESULTS:
        rows.append(("Re-randomisation (§VI-A refresh)", "—",
                     f"{_RESULTS['Re-randomisation']:.3f} ms"))
    emit(format_comparison_table(
        "Table II: Paillier benchmark (n = 2048 bits)", rows,
        headers=("operation", "paper (GMP)", "ours (pure python)"),
    ))
    # The reproducible claim: the cost ordering of Table II.
    if len(_RESULTS) >= 6:
        assert _RESULTS["Homomorphic addition"] < _RESULTS["Homomorphic subtraction"]
        assert (
            _RESULTS["Homomorphic subtraction"]
            < _RESULTS["Homomorphic scale (100-bit constant)"]
        )
        assert (
            _RESULTS["Homomorphic scale (100-bit constant)"]
            < _RESULTS["Homomorphic scale"]
        )
