"""Figures 8-11 — the §VI-B four-scenario testbed experiment.

The paper's real-world validation: two SUs and one PU on WiFi channel 6;
the PU claims the channel, both SUs request via PISA, and only the
non-interfering SU is granted (it then sends ≈11 packets in 20 ms).
This bench drives the simulated USRP testbed through the real protocol
stack and asserts each figure's qualitative content.
"""

import numpy as np
import pytest
from conftest import emit

from repro.analysis.reporting import format_table
from repro.sdr.testbed import SdrTestbed

_RESULTS = {}


@pytest.fixture(scope="module")
def testbed():
    return SdrTestbed(seed=1)


def test_full_experiment(benchmark, testbed):
    """One complete §VI-B run, Figure 8 through Figure 9."""
    results = benchmark.pedantic(testbed.run_all, rounds=1, iterations=1)
    _RESULTS["run"] = results


def test_zzz_figures(benchmark, testbed):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    results = _RESULTS["run"]
    s1, s2, s3, s4 = results

    # Figure 8: the PU's monitor shows two packets of unequal amplitude.
    trace = s1.traces["pu"]
    peak_su1 = float(np.max(np.abs(trace[100:1100])))
    peak_su2 = float(np.max(np.abs(trace[3300:4300])))
    assert peak_su1 > 0 and peak_su2 > 0
    assert abs(peak_su1 - peak_su2) / max(peak_su1, peak_su2) > 0.2

    # Figure 10: PU's encrypted update reached the SDC.
    assert any("encrypted channel-reception update" in e for e in s2.events)

    # Figure 11: both SUs submitted encrypted requests.
    assert len(s3.events) == 2

    # Figure 9: exactly one SU granted; it transmits ≈11 packets / 20 ms.
    decisions = {k: r.granted for k, r in s4.reports.items()}
    assert decisions == {"su1": False, "su2": True}
    assert len(s4.traces["pu"]) == 400_000

    emit(format_table(
        "Figures 8-11: SDR testbed scenarios (simulated USRPs)",
        [
            ("Fig 8: PU trace peaks (su1 | su2)", f"{peak_su1:.4f} | {peak_su2:.4f}"),
            ("Fig 10: PU update events", str(len(s2.events))),
            ("Fig 11: SU requests sent", str(len(s3.events))),
            ("Fig 9: decisions (su1, su2)",
             f"{'grant' if decisions['su1'] else 'deny'}, "
             f"{'grant' if decisions['su2'] else 'deny'}"),
            ("Fig 9: granted-SU packets heard",
             str([b.source_id for b in testbed.medium.heard['pu']].count('su2'))),
        ],
    ))
