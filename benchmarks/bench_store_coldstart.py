"""Durable-store cold start — what disk-backed state costs at scale.

The ``repro.store`` subsystem trades memory-resident state for a
SQLite-backed store plus a compacting checkpointer, so a SIGKILLed
shard can rebuild byte-exactly from disk.  This bench prices that
trade at 10^3 / 10^4 / 10^5 blocks (the top scale is the acceptance
bar's "cold-start at 10^5 blocks"):

* **cold-start read** — pull every per-PU ciphertext row plus the
  latest epoch snapshot back out of the engine, CRC-checking each
  sealed frame on the way out; SQLite vs the in-memory engine, which
  prices exactly the durability layer (same sealing, no disk).
* **checkpoint** — compact an N-record journal into the store
  (write -> fsync -> rename -> truncate), whose cost the service pays
  at every epoch commit.

Emits ``BENCH_store.json`` at the repo root with a timestamped run
history, and asserts the acceptance budget: a 10^5-block SQLite cold
start completes within :data:`COLDSTART_BUDGET_S`, and the compacted
journal stays below :data:`COMPACTED_CAP_BYTES`.
"""

import os
import pathlib

import pytest
from _harness import append_history, describe_history, utc_timestamp
from conftest import emit

from repro.analysis.reporting import format_comparison_table
from repro.resilience.journal import JournalWriter
from repro.store import Checkpointer, MemoryStateStore, SqliteStateStore

#: Block-count scales; the last one is the acceptance target.
SCALES = (1_000, 10_000, 100_000)
SHARD = "shard-0"
#: Acceptance budget for the 10^5-block SQLite cold-start read.
COLDSTART_BUDGET_S = 5.0
#: One header + one marker frame; mirrors tests/store/test_checkpoint.py.
COMPACTED_CAP_BYTES = 512
JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_store.json"

_RESULTS = {}


def _blob(i: int) -> bytes:
    """Ciphertext-shaped row payload (fixed width so scales compare)."""
    return b"ciphertext-%08d-" % i + bytes([i % 251]) * 24


def _populate(store, blocks: int) -> None:
    with store.transaction():
        for i in range(blocks):
            store.put_pu_update(SHARD, "pu-%06d" % i, _blob(i))
    store.put_snapshot(SHARD, 0, b"epoch-snapshot" * 64)


def _coldstart_read(store):
    """The read side of a cold start: every row + the latest snapshot."""
    rows = store.pu_updates(SHARD)
    snapshot = store.latest_snapshot(SHARD)
    return len(rows), snapshot


def _open(engine: str, tmp_path):
    if engine == "sqlite":
        return SqliteStateStore(tmp_path / "state.sqlite")
    return MemoryStateStore()


@pytest.mark.parametrize("blocks", SCALES)
@pytest.mark.parametrize("engine", ("memory", "sqlite"))
def test_coldstart_read(benchmark, tmp_path, engine, blocks):
    with _open(engine, tmp_path) as store:
        _populate(store, blocks)
        store.flush()
        count, snapshot = benchmark.pedantic(
            lambda: _coldstart_read(store), rounds=3, iterations=1
        )
    assert count == blocks and snapshot is not None
    _RESULTS[("coldstart", engine, blocks)] = benchmark.stats["min"]


@pytest.mark.parametrize("blocks", SCALES)
def test_checkpoint_compaction(benchmark, tmp_path, blocks):
    path = str(tmp_path / "journal.wal")
    with SqliteStateStore(tmp_path / "state.sqlite") as store:
        ckpt = Checkpointer(store)
        writer = JournalWriter(path, fsync_every=1024)

        def refill():
            for i in range(blocks):
                writer.append("pu-update", _blob(i))
            writer.barrier()
            return (), {}

        stats = benchmark.pedantic(
            lambda: ckpt.checkpoint(writer),
            setup=refill,
            rounds=3,
            iterations=1,
        )
        writer.close()
    assert stats.journal_bytes_after < COMPACTED_CAP_BYTES
    _RESULTS[("checkpoint", blocks)] = benchmark.stats["min"]
    _RESULTS[("compacted_bytes", blocks)] = stats.journal_bytes_after


def test_zzz_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for blocks in SCALES:
        memory_s = _RESULTS[("coldstart", "memory", blocks)]
        sqlite_s = _RESULTS[("coldstart", "sqlite", blocks)]
        ckpt_s = _RESULTS[("checkpoint", blocks)]
        rows.append((
            f"{blocks:,} blocks",
            f"{memory_s * 1e3:.1f} ms",
            f"{sqlite_s * 1e3:.1f} ms / ckpt {ckpt_s * 1e3:.1f} ms",
        ))
    emit(format_comparison_table(
        "Cold-start read + checkpoint compaction (durable vs memory)",
        rows,
        headers=("scale", "memory engine", "sqlite engine"),
    ))

    entry = {
        "timestamp": utc_timestamp(),
        "cpu_count": os.cpu_count(),
        "coldstart_budget_s": COLDSTART_BUDGET_S,
        "scales": {
            str(blocks): {
                "coldstart_memory_s": _RESULTS[("coldstart", "memory", blocks)],
                "coldstart_sqlite_s": _RESULTS[("coldstart", "sqlite", blocks)],
                "checkpoint_s": _RESULTS[("checkpoint", blocks)],
                "compacted_journal_bytes": _RESULTS[("compacted_bytes", blocks)],
            }
            for blocks in SCALES
        },
    }
    emit(describe_history(JSON_PATH, append_history(JSON_PATH, entry)))

    # Acceptance: the 10^5-block cold start fits the budget, and the
    # checkpointer really bounds the journal at every scale.
    top = SCALES[-1]
    assert _RESULTS[("coldstart", "sqlite", top)] <= COLDSTART_BUDGET_S, (
        f"cold start at {top} blocks took "
        f"{_RESULTS[('coldstart', 'sqlite', top)]:.2f} s, "
        f"budget {COLDSTART_BUDGET_S:.1f} s"
    )
    for blocks in SCALES:
        assert _RESULTS[("compacted_bytes", blocks)] < COMPACTED_CAP_BYTES
