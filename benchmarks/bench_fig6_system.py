"""Figure 6 — system evaluation (request prep/processing, update costs, sizes).

The paper's Figure 6 numbers (at C=100, B=600, n=2048, GMP):

* SU request preparation ≈ 221 s (precomputable; ≈11 s via re-randomise)
* SDC request processing ≈ 219 s
* PU update message ≈ 0.05 MB; SDC handles an update in ≈ 2.6 s
* SU request ciphertext ≈ 29 MB; response ≈ 4.1 kb

Pure-Python crypto cannot run 60 000 2048-bit encryptions inside a
benchmark suite, so this module does both of:

1. **measure** every phase end-to-end at a reduced scale
   (C=10, B=48, n=512) through the real protocol stack;
2. **extrapolate** to the paper's setting by multiplying per-primitive
   costs measured at n=2048 (Table II methodology) with the full-scale
   operation counts, via :mod:`repro.analysis.scaling`.

The printed table shows paper / measured-small / projected-full side by
side.  The asserted, hardware-independent claims are the *shape* ones:
preparation ≈ processing ≫ PU update, refresh ≈ 20x cheaper than
preparation, response ≈ one ciphertext.
"""

import pytest
from conftest import SYSTEM_KEY_BITS, emit

from repro.analysis.reporting import format_comparison_table
from repro.analysis.scaling import estimate_full_scale, measure_cost_profile
from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.protocol import PisaCoordinator

_MEASURED: dict[str, float] = {}
_SIZES: dict[str, int] = {}


@pytest.fixture(scope="module")
def deployment(system_scenario):
    coord = PisaCoordinator(
        system_scenario.environment,
        key_bits=SYSTEM_KEY_BITS,
        rng=DeterministicRandomSource("fig6"),
    )
    for pu in system_scenario.pus:
        coord.enroll_pu(pu)
    for su in system_scenario.sus:
        coord.enroll_su(su)
    return coord


@pytest.fixture(scope="module")
def su_id(system_scenario):
    return system_scenario.sus[0].su_id


def test_request_preparation(benchmark, deployment, su_id):
    client = deployment.su_client(su_id)
    result = benchmark.pedantic(
        client.prepare_request, rounds=3, iterations=1, warmup_rounds=1
    )
    _MEASURED["prep"] = benchmark.stats["mean"]
    _SIZES["request"] = result.wire_size()


def test_request_refresh(benchmark, deployment, su_id):
    """§VI-A: re-randomising a cached request is far cheaper.

    The ``r**n`` obfuscators are precomputed (offline, per the paper);
    the timed region is the online per-ciphertext multiplication.
    """
    client = deployment.su_client(su_id)
    client.prepare_request()

    def stock_pool():
        client.precompute_refresh_material(rounds=1)

    benchmark.pedantic(
        client.refresh_request, setup=stock_pool, rounds=3, iterations=1,
        warmup_rounds=1,
    )
    _MEASURED["refresh"] = benchmark.stats["mean"]


def test_sdc_processing(benchmark, deployment, su_id):
    """Eqs. (11), (12), (14), (16), (17) — the SDC's per-request work."""
    client = deployment.su_client(su_id)
    request = client.prepare_request()

    def process():
        extraction = deployment.sdc.start_request(request)
        conversion = deployment.stp.handle_sign_extraction(extraction)
        response = deployment.sdc.finish_request(conversion)
        _SIZES["extraction"] = extraction.wire_size()
        _SIZES["conversion"] = conversion.wire_size()
        _SIZES["response"] = response.wire_size()
        return response

    benchmark.pedantic(process, rounds=3, iterations=1, warmup_rounds=1)
    _MEASURED["processing"] = benchmark.stats["mean"]


def test_pu_update(benchmark, deployment, system_scenario):
    """Figure 4 + eqs. (9)/(10): PU-side encryption and SDC-side folding."""
    pu_client = deployment.pu_client(system_scenario.pus[0].receiver_id)

    def update_round():
        message = pu_client.build_update()
        deployment.sdc.handle_pu_update(message)
        _SIZES["pu_update"] = message.wire_size()
        return message

    benchmark.pedantic(update_round, rounds=3, iterations=1, warmup_rounds=1)
    _MEASURED["pu_update"] = benchmark.stats["mean"]


def test_zzz_render_figure6(benchmark, deployment, paper_keypair, bench_rng, system_scenario):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    profile = measure_cost_profile(
        keypair=paper_keypair, iterations=10, rng=bench_rng
    )
    projected = estimate_full_scale(profile, num_channels=100, num_blocks=600)
    env = system_scenario.environment
    scale_note = f"C={env.num_channels}, B={env.num_blocks}, n={SYSTEM_KEY_BITS}"

    def ms(key):
        return f"{_MEASURED[key]:.3f} s" if key in _MEASURED else "n/a"

    rows = [
        ("SU request preparation", "≈221 s", f"{ms('prep')} | {projected.request_preparation_s:.0f} s"),
        ("SU request refresh", "≈11 s", f"{ms('refresh')} | {projected.request_refresh_s:.0f} s"),
        ("SDC request processing", "≈219 s", f"{ms('processing')} | {projected.sdc_processing_s:.0f} s"),
        ("PU update round", "≈2.6 s", f"{ms('pu_update')} | {projected.sdc_pu_update_s + projected.pu_update_prepare_s:.1f} s"),
        ("SU request size", "≈29 MB",
         f"{_SIZES.get('request', 0) / 1e6:.2f} MB | {projected.su_request_bytes / 1e6:.1f} MB"),
        ("PU update size", "≈0.05 MB",
         f"{_SIZES.get('pu_update', 0) / 1e6:.4f} MB | {projected.pu_update_bytes / 1e6:.3f} MB"),
        ("Response size", "≈4.1 kb",
         f"{_SIZES.get('response', 0) * 8 / 1e3:.1f} kb | {projected.response_bytes * 8 / 1e3:.1f} kb"),
    ]
    emit(format_comparison_table(
        f"Figure 6: system evaluation (measured @ {scale_note} | projected @ paper scale)",
        rows,
        headers=("phase", "paper", "measured | projected"),
    ))

    # Shape assertions (hardware-independent Figure 6 claims):
    if {"prep", "refresh", "processing", "pu_update"} <= _MEASURED.keys():
        # 1. Refresh is much cheaper than fresh preparation (paper: 221 s→11 s, 20x).
        assert _MEASURED["refresh"] < _MEASURED["prep"] / 3
        # 2. Preparation and processing are the two dominant phases and
        #    are within an order of magnitude of each other (221 vs 219 s).
        ratio = _MEASURED["processing"] / _MEASURED["prep"]
        assert 0.1 < ratio < 10.0
        # 3. A PU update is far cheaper than a request (2.6 vs 219 s).
        assert _MEASURED["pu_update"] < _MEASURED["processing"] / 5
    # 4. The response is a constant single ciphertext while the request
    #    scales with C·B (29 MB vs 4.1 kb at paper scale; the ratio at
    #    the reduced C·B = 480 is proportionally smaller).
    assert _SIZES["response"] * 100 < _SIZES["request"]
    assert projected.response_bytes * 1000 < projected.su_request_bytes
    # 5. Projected full-scale numbers land in the paper's regime
    #    (minutes, not milliseconds and not days).
    assert 30 < projected.request_preparation_s < 36_000
    assert 30 < projected.sdc_processing_s < 36_000
