"""Workload-engine capacity: saturation rate + tail latency per shape.

For every named workload in :mod:`repro.sim.traffic` the deployment
simulator runs the same calibrated cost model (seeded from the latest
``BENCH_service.json`` entry when available, Table II constants
otherwise — the PR 10 bench/model loop) and reports

* the **analytic saturation rate** (arrivals/hour at SDC utilisation 1,
  shape-independent: it is a property of the phase costs);
* measured **p50/p99 latency** and utilisation at a sub-saturation
  mean rate — time-varying shapes (diurnal, flash-crowd) pay a tail
  penalty at the *same* mean rate, which is the number a capacity
  planner needs;
* PU-churn pressure for the churn-storm shape.

Emits ``BENCH_workload.json`` at the repo root.
"""

import pathlib

from _harness import append_history, describe_history, utc_timestamp
from conftest import emit

from repro.analysis.reporting import format_table
from repro.sim import (
    DeploymentSimulator,
    ServiceCostModel,
    WorkloadConfig,
    load_measured_round,
    paper_profile,
    workload_names,
)
from repro.watch.scenario import ScenarioConfig, build_scenario

JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_workload.json"

#: Packed-mode cost model: k=12 keeps the simulated SDC fast enough to
#: probe meaningful rates within a short simulated horizon.
PACKING = 12
HOURS = 12.0
#: Fraction of the saturation rate the latency probe runs at.
PROBE_LOAD = 0.6


def test_workload_capacity_sweep():
    profile = paper_profile()
    measured = load_measured_round()
    calibration = (
        ServiceCostModel.calibration_from(profile, measured)
        if measured is not None
        else 1.0
    )
    model = ServiceCostModel(
        profile, num_channels=100, num_blocks=600,
        packing_factor=PACKING, calibration=calibration,
    )
    # The server saturating first bounds capacity: the SDC serves two
    # phases per request, the (single-worker) STP one conversion.
    bottleneck_s = max(
        model.costs.sdc_per_request_s, model.costs.stp_convert_s
    )
    saturation = 3600.0 / bottleneck_s
    probe_rate = PROBE_LOAD * saturation
    scenario = build_scenario(ScenarioConfig(seed=4, num_sus=3))

    results = {}
    rows = []
    for name in workload_names():
        simulator = DeploymentSimulator(
            scenario,
            model,
            WorkloadConfig(su_requests_per_hour=probe_rate, seed=42),
            traffic=name,
        )
        report = simulator.run(HOURS * 3600.0)
        results[name] = {
            "probe_rate_per_hour": probe_rate,
            "requests": report.num_requests,
            "grant_ratio": report.grant_ratio,
            "p50_latency_s": report.latency_percentile_s(50),
            "p99_latency_s": report.latency_percentile_s(99),
            "sdc_utilization": report.sdc_utilization,
            "pu_updates": report.pu_updates,
            "su_moves": report.su_moves,
        }
        rows.append((
            name,
            f"p50 {results[name]['p50_latency_s']:.0f} s, "
            f"p99 {results[name]['p99_latency_s']:.0f} s, "
            f"util {report.sdc_utilization:.0%}, "
            f"churn {report.pu_updates}",
        ))

        # Sanity: every shape must actually deliver load and finish
        # requests at 60% of saturation.
        assert report.num_requests > 0
        assert results[name]["p99_latency_s"] > 0

    # The churn storm must stress the PU path harder than steady does.
    assert results["pu-churn-storm"]["pu_updates"] > results["steady"]["pu_updates"]
    # Mobility is the only shape generating moves.
    assert results["mobility"]["su_moves"] > 0
    assert results["steady"]["su_moves"] == 0

    emit(format_table(
        f"workload capacity @ {probe_rate:.0f}/h "
        f"({PROBE_LOAD:.0%} of saturation {saturation:.0f}/h, k={PACKING})",
        rows,
    ))

    entry = {
        "timestamp": utc_timestamp(),
        "packing": PACKING,
        "hours": HOURS,
        "calibration": calibration,
        "calibrated_from": measured.source if measured is not None else "",
        "saturation_rate_per_hour": saturation,
        "workloads": results,
    }
    count = append_history(JSON_PATH, entry)
    emit(describe_history(JSON_PATH, count))
