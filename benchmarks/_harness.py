"""Shared benchmark harness: run-history persistence + telemetry timers.

Every bench that publishes a ``BENCH_*.json`` artifact used to carry its
own copy of the timestamp/append-history boilerplate; the hand-rolled
``time.perf_counter()`` busy-window accounting lived in each file too.
Both now live here, and the timing side is built on
:mod:`repro.telemetry` (:class:`~repro.telemetry.Timer`), so benches and
the service runtime share one clock/percentile implementation.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.telemetry import Timer, percentile  # noqa: F401  (re-exported)

__all__ = [
    "Timer",
    "percentile",
    "utc_timestamp",
    "append_history",
    "describe_history",
    "method_timer",
]


def utc_timestamp() -> str:
    """The run-history timestamp format every BENCH artifact uses."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def append_history(json_path: pathlib.Path, entry: dict) -> int:
    """Append ``entry`` to ``json_path``'s run history; returns the count.

    Histories append instead of clobbering: regressions are only visible
    if past runs survive.  A legacy single-run file (a plain dict
    without ``"history"``) becomes the first history entry.
    """
    history = []
    if json_path.exists():
        try:
            previous = json.loads(json_path.read_text(encoding="utf-8"))
        except ValueError:
            previous = None
        if isinstance(previous, dict) and isinstance(previous.get("history"), list):
            history = previous["history"]
        elif isinstance(previous, dict) and previous:
            history = [previous]
    history.append(entry)
    json_path.write_text(
        json.dumps({"history": history}, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(history)


def describe_history(json_path: pathlib.Path, count: int) -> str:
    """The ``wrote ...`` line benches emit after appending."""
    return f"wrote {json_path} ({count} run{'s' if count != 1 else ''})"


def method_timer(obj, method_names, timer: Timer) -> Timer:
    """Wrap methods of ``obj`` so every call laps ``timer``.

    Replaces the hand-rolled closure-over-``perf_counter`` pattern:
    the timer accumulates each wrapped call's duration (``total_s``,
    ``count``, percentiles), while arguments and results pass through
    untouched.
    """
    for name in method_names:
        original = getattr(obj, name)

        def timed(*args, _original=original, **kwargs):
            with timer.lap():
                return _original(*args, **kwargs)

        setattr(obj, name, timed)
    return timer
