"""§VI-A "SU's location privacy vs time trade-off".

The paper's claim: request preparation/processing time is
*asymptotically linear* in the number of blocks the SU keeps plausible —
disclosing "somewhere in the north" (half the map) halves both costs,
and full location privacy is the maximum.

This bench sweeps the disclosed fraction over {¼, ½, ¾, 1} of the grid,
runs the real protocol at each point, and asserts linearity (R² of the
least-squares fit and endpoint ratios).
"""

import time

import numpy as np
import pytest
from conftest import SYSTEM_KEY_BITS, emit

from repro.analysis.reporting import format_table
from repro.analysis.stats import linear_fit
from repro.crypto.rand import DeterministicRandomSource
from repro.geo.region import PrivacyRegion
from repro.pisa.protocol import PisaCoordinator
from repro.watch.entities import SUTransmitter

FRACTIONS = (0.25, 0.5, 0.75, 1.0)

_POINTS: list[tuple[int, float, float, int]] = []  # blocks, prep_s, proc_s, bytes


@pytest.fixture(scope="module")
def deployment(system_scenario):
    coord = PisaCoordinator(
        system_scenario.environment,
        key_bits=SYSTEM_KEY_BITS,
        rng=DeterministicRandomSource("tradeoff"),
    )
    for pu in system_scenario.pus:
        coord.enroll_pu(pu)
    return coord


def _region_for(grid, fraction, su_block):
    """A row-slice region of roughly the requested fraction containing
    the SU's block (the paper's 'north part of the map' shape)."""
    rows = max(1, round(grid.rows * fraction))
    su_row = su_block // grid.cols
    first = min(max(0, su_row - rows // 2), grid.rows - rows)
    return PrivacyRegion.rows_slice(grid, first, first + rows - 1)


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_sweep_point(benchmark, deployment, system_scenario, fraction):
    grid = system_scenario.environment.grid
    su_template = system_scenario.sus[0]
    su = SUTransmitter(
        su_id=f"su-frac-{fraction}",
        block_index=su_template.block_index,
        tx_power_dbm=su_template.tx_power_dbm,
    )
    region = _region_for(grid, fraction, su.block_index)
    client = deployment.enroll_su(su, region=region)

    start = time.perf_counter()
    request = client.prepare_request()
    prep_s = time.perf_counter() - start

    def process():
        extraction = deployment.sdc.start_request(request)
        conversion = deployment.stp.handle_sign_extraction(extraction)
        return deployment.sdc.finish_request(conversion)

    benchmark.pedantic(process, rounds=2, iterations=1, warmup_rounds=1)
    _POINTS.append(
        (region.num_blocks, prep_s, benchmark.stats["mean"], request.wire_size())
    )


def test_zzz_linearity(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_POINTS) == len(FRACTIONS)
    points = sorted(_POINTS)
    blocks = np.array([p[0] for p in points], dtype=float)
    prep = np.array([p[1] for p in points])
    proc = np.array([p[2] for p in points])
    sizes = np.array([p[3] for p in points], dtype=float)

    emit(format_table(
        "Privacy vs time trade-off (linear in disclosed blocks)",
        [
            (f"{int(b)} blocks", f"prep {p:.3f} s | proc {q:.3f} s | {s / 1e3:.0f} kB")
            for b, p, q, s in zip(blocks, prep, proc, sizes)
        ],
    ))

    # Paper: "the relation ... is asymptotically linear".
    assert linear_fit(blocks, prep).r_squared > 0.95
    assert linear_fit(blocks, proc).r_squared > 0.95
    # Request bytes are exactly linear in blocks (C ciphertexts per block).
    assert linear_fit(blocks, sizes).r_squared > 0.999
    # Full privacy costs ≈4x the quarter disclosure.
    assert 2.0 < prep[-1] / prep[0] < 8.0
    assert 2.0 < proc[-1] / proc[0] < 8.0
