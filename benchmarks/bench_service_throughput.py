"""Service-runtime throughput — batched packed service vs serial baseline.

The :mod:`repro.service` runtime stacks three optimisations on the
baseline per-request protocol: slot packing (k cells per ciphertext),
epoch batching (one conversion leg per epoch), and the worker-pool
executor for the modular-exponentiation batches.  This bench measures
both paths on the identical scenario and asserts the headline claims:

* the service path sustains **>= 3x** the serial baseline's requests/sec;
* allocation results are *equal* — the service grants exactly what the
  baseline grants;
* swapping the serial executor for the process pool leaves licenses
  **byte-identical** (all randomness is drawn in the parent, in protocol
  order, before jobs dispatch).

Emits ``BENCH_service.json`` at the repo root with throughput, latency
percentiles, and the batch-size histogram.
"""

import pathlib

from _harness import append_history, describe_history, utc_timestamp
from conftest import emit

from repro.analysis.reporting import format_comparison_table
from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.packed import PackedCoordinator
from repro.pisa.protocol import PisaCoordinator
from repro.service import (
    BatchAllocator,
    Epoch,
    LoadtestConfig,
    ServiceConfig,
    run_loadtest,
)
from repro.service.workers import ProcessWorkerPool, SerialExecutor

KEY_BITS = 512
JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_service.json"

_RESULTS = {}


def _deploy(cls, scenario, label, **kwargs):
    coord = cls(
        scenario.environment, key_bits=KEY_BITS,
        rng=DeterministicRandomSource(f"service-bench-{label}"), **kwargs,
    )
    for pu in scenario.pus:
        coord.enroll_pu(pu)
    for su in scenario.sus:
        coord.enroll_su(su)
    return coord


def test_serial_baseline(benchmark, system_scenario):
    """One unbatched baseline round per request, serial executor."""
    coord = _deploy(PisaCoordinator, system_scenario, "base")
    su_id = system_scenario.sus[0].su_id
    first = coord.run_request_round(su_id)  # prepares + caches the request
    report = benchmark.pedantic(
        lambda: coord.run_request_round(su_id, reuse_cached_request=True),
        rounds=2, iterations=1,
    )
    _RESULTS["base"] = {
        "seconds_per_request": benchmark.stats["mean"],
        "throughput_rps": 1.0 / benchmark.stats["mean"],
        "granted": {su_id: report.granted},
        "first_granted": first.granted,
    }


def test_batched_service(benchmark, system_scenario):
    """The service path: packed + epoch batching + worker pool."""
    config = LoadtestConfig(
        seed=11,
        num_requests=6,
        arrivals_per_second=200.0,
        num_sus=len(system_scenario.sus),
        # PU updates shift the allocation state mid-run; keep them out of
        # the equal-results comparison (the unit tests cover that path).
        num_pu_switches=0,
        key_bits=KEY_BITS,
        service=ServiceConfig(
            max_pending=32, batch_window_s=0.05,
            max_batch=len(system_scenario.sus),
        ),
    )
    with ProcessWorkerPool() as pool:
        pool.warm_up()  # fork workers before the event loop spins up
        report = benchmark.pedantic(
            lambda: run_loadtest(config, executor=pool, scenario=system_scenario),
            rounds=1, iterations=1,
        )
    assert report.completed == config.num_requests, "service dropped requests"
    _RESULTS["service"] = {
        "report": report,
        "throughput_rps": report.throughput_rps,
        "granted": {
            d.su_id: d.status == "granted" for d in report.decisions
        },
    }


def test_executor_equivalence(benchmark, system_scenario):
    """Serial executor and process pool produce byte-identical licenses."""

    def one_epoch(executor):
        coord = _deploy(
            PackedCoordinator, system_scenario, "equiv", executor=executor
        )
        # Freeze the license-issuance clock: byte-identity compares whole
        # responses, and issued_at is the one non-RNG input.
        coord.sdc._clock = lambda: 1_700_000_000.0
        requests = [
            (su.su_id, coord.su_client(su.su_id).prepare_request())
            for su in system_scenario.sus
        ]
        epoch = Epoch(epoch_id=0, opened_at=0.0, due_at=0.0, items=requests)
        return BatchAllocator.for_coordinator(coord).allocate(epoch)

    with ProcessWorkerPool() as pool:
        pooled = benchmark.pedantic(
            lambda: one_epoch(pool), rounds=1, iterations=1
        )
    serial = one_epoch(SerialExecutor())
    assert len(serial) == len(pooled) == len(system_scenario.sus)
    for s_result, p_result in zip(serial, pooled):
        assert s_result.su_id == p_result.su_id
        assert s_result.granted == p_result.granted
        assert s_result.response.to_bytes() == p_result.response.to_bytes()
    _RESULTS["equivalence"] = {
        "byte_identical": True,
        "granted": {r.su_id: r.granted for r in serial},
    }


def test_zzz_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = _RESULTS["base"]
    service = _RESULTS["service"]
    equivalence = _RESULTS["equivalence"]
    report = service["report"]
    speedup = service["throughput_rps"] / base["throughput_rps"]
    latency = report.latency_stats()
    batches = report.batch_stats()

    emit(format_comparison_table(
        f"Service runtime (packed k-slot + epoch batching @ n = {KEY_BITS})",
        [
            ("throughput",
             f"{base['throughput_rps']:.2f} req/s",
             f"{service['throughput_rps']:.2f} req/s"),
            ("speedup", "1.0x", f"{speedup:.1f}x"),
            ("latency p50/p95/p99", "-",
             f"{latency['p50']:.2f} / {latency['p95']:.2f} / "
             f"{latency['p99']:.2f} s"),
            ("mean batch size", "1.00", f"{batches.get('mean', 0):.2f}"),
            ("licenses across executors", "-", "byte-identical"),
        ],
        headers=("metric", "serial baseline", "service (ours)"),
    ))

    entry = {
        "timestamp": utc_timestamp(),
        "key_bits": KEY_BITS,
        "baseline": {
            "seconds_per_request": base["seconds_per_request"],
            "throughput_rps": base["throughput_rps"],
        },
        "service": report.to_json_dict(),
        "speedup": speedup,
        "executor_equivalence": equivalence["byte_identical"],
    }
    emit(describe_history(JSON_PATH, append_history(JSON_PATH, entry)))

    # Equal allocation results: every SU the baseline grants/denies, the
    # batched service grants/denies identically.
    for su_id, granted in base["granted"].items():
        assert service["granted"][su_id] == granted
        assert equivalence["granted"][su_id] == granted
    # The headline: >= 3x requests/sec over the serial baseline.
    assert speedup >= 3.0, f"service speedup {speedup:.2f}x below 3x"
