"""§VI-A comparison — PISA vs generic fully homomorphic encryption.

The paper argues PISA's minutes-scale costs are "acceptable and
practical" against generic FHE, citing homomorphic-AES constants
(≈5.8 s and ≈21 MB per 128-bit block, [21]).  This bench projects both
systems to the paper's full scale and asserts the claimed gap.
"""

import pytest
from conftest import emit

from repro.analysis.reporting import format_comparison_table
from repro.analysis.scaling import estimate_full_scale, measure_cost_profile
from repro.baselines.fhe_costmodel import FheCostModel

_RESULTS = {}


def test_pisa_projection(benchmark, paper_keypair, bench_rng):
    def project():
        profile = measure_cost_profile(
            keypair=paper_keypair, iterations=5, rng=bench_rng
        )
        return estimate_full_scale(profile, num_channels=100, num_blocks=600)

    _RESULTS["pisa"] = benchmark.pedantic(project, rounds=1, iterations=1)


def test_fhe_projection(benchmark):
    model = FheCostModel()
    _RESULTS["fhe"] = benchmark(
        lambda: model.estimate_request(num_channels=100, num_blocks=600, value_bits=60)
    )


def test_zzz_render_comparison(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pisa = _RESULTS["pisa"]
    fhe = _RESULTS["fhe"]
    # The paper's Figure 6 "processing" time is the SDC's own work; the
    # STP's key-conversion service is reported as its own row.
    pisa_total_s = pisa.sdc_processing_s
    emit(format_comparison_table(
        "PISA vs generic FHE (projected @ C=100, B=600, 60-bit values)",
        [
            ("SDC processing time",
             f"{pisa_total_s / 60:.1f} min",
             f"{fhe.time_hours:.1f} h"),
            ("STP conversion time",
             f"{pisa.stp_conversion_s / 60:.1f} min", "—"),
            ("working set",
             f"{pisa.su_request_bytes / 1e6:.0f} MB (request ct)",
             f"{fhe.memory_mb / 1e3:.0f} GB"),
            ("input blocks", "60 000 Paillier cts", f"{fhe.input_blocks} FHE blocks"),
        ],
        headers=("metric", "PISA", "generic FHE [21]"),
    ))
    # The paper's claim: PISA is an order of magnitude more practical,
    # even with our ≈5x-slower pure-Python Paillier narrowing the gap.
    assert fhe.time_seconds > 10 * pisa_total_s
    assert fhe.memory_mb * 1e6 > 5 * pisa.su_request_bytes
