"""Extension ablation — Damgård–Jurik keys as packing substrate.

A 2048-bit Paillier plaintext fits ~15 packed slots; the same modulus
at Damgård–Jurik ``s = 2`` offers a 4096-bit plaintext (≈30 slots) in a
6144-bit ciphertext — the ciphertext expansion falls from 2.0x to 1.5x,
so the *bytes per protocol cell* drop even though individual ciphertexts
grow.  This bench measures the slot geometry and the per-operation
costs, and reports bytes-per-cell for s ∈ {1, 2, 3}.
"""

import time

import pytest
from conftest import emit

from repro.analysis.reporting import format_comparison_table
from repro.crypto.damgard_jurik import generate_dj_keypair
from repro.crypto.packing import SlotLayout
from repro.crypto.rand import DeterministicRandomSource

KEY_BITS = 1024  # keep DJ s=3 benchmarkable in pure Python
SLOT_PIPELINE_BITS = 67 + 64 + 4  # indicator + α + headroom (packed mode)

_ROWS = {}


@pytest.mark.parametrize("s", [1, 2, 3])
def test_dj_variant(benchmark, s):
    rng = DeterministicRandomSource(f"dj-bench-{s}")
    keypair = generate_dj_keypair(KEY_BITS, s=s, rng=rng)
    pk, sk = keypair.public_key, keypair.private_key

    # Slot geometry over the n^s plaintext space.
    num_slots = max(1, (pk.plaintext_bits - 2) // SLOT_PIPELINE_BITS)
    ct_bytes = (pk.n_s1.bit_length() + 7) // 8
    bytes_per_cell = ct_bytes / num_slots

    ct = pk.encrypt(123456789, rng=rng)

    def enc_dec_pair():
        sk.decrypt(pk.encrypt(42, rng=rng))

    benchmark.pedantic(enc_dec_pair, rounds=4, iterations=1, warmup_rounds=1)
    _ROWS[s] = {
        "slots": num_slots,
        "ct_bytes": ct_bytes,
        "bytes_per_cell": bytes_per_cell,
        "enc_dec_ms": benchmark.stats["mean"] * 1e3,
        "time_per_cell_ms": benchmark.stats["mean"] * 1e3 / num_slots,
    }
    assert sk.decrypt(ct) == 123456789


def test_zzz_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for s in sorted(_ROWS):
        r = _ROWS[s]
        rows.append((
            f"s = {s}" + (" (Paillier)" if s == 1 else ""),
            f"{r['slots']} slots, ct {r['ct_bytes']} B",
            f"{r['bytes_per_cell']:.0f} B/cell, "
            f"{r['time_per_cell_ms']:.1f} ms/cell",
        ))
    emit(format_comparison_table(
        f"Damgård–Jurik as packing substrate (n = {KEY_BITS} bits)",
        rows,
        headers=("scheme", "geometry", "amortised per cell"),
    ))
    # Claims: s=2 at least doubles slots per ciphertext and lowers
    # bytes-per-cell relative to Paillier.
    assert _ROWS[2]["slots"] >= 2 * _ROWS[1]["slots"]
    assert _ROWS[2]["bytes_per_cell"] < _ROWS[1]["bytes_per_cell"]
    assert _ROWS[3]["bytes_per_cell"] < _ROWS[2]["bytes_per_cell"]
