"""§I motivation quantified — WATCH vs TVWS spectrum capacity.

Sweeps the number of *active* TV receivers and reports usable
(channel, block) cells under both sharing models.  The claims asserted:
TVWS capacity ignores viewing behaviour entirely; WATCH tracks it,
always dominating TVWS, degrading gracefully as more receivers tune in.
"""

import pytest
from conftest import emit

from repro.analysis.reporting import format_table
from repro.watch.capacity import capacity_report
from repro.watch.scenario import ScenarioConfig, build_scenario

PROBE_DBM = 16.0
_POINTS = []


@pytest.fixture(scope="module")
def reuse_scenario():
    return build_scenario(ScenarioConfig(
        seed=5, grid_rows=6, grid_cols=8, num_channels=4,
        num_towers=2, num_pus=4, num_sus=0,
    ))


@pytest.mark.parametrize("viewers", [0, 1, 2, 4])
def test_capacity_point(benchmark, reuse_scenario, viewers):
    active = reuse_scenario.pus[:viewers]
    report = benchmark.pedantic(
        lambda: capacity_report(
            reuse_scenario.environment, active, probe_power_dbm=PROBE_DBM
        ),
        rounds=1, iterations=1,
    )
    _POINTS.append((viewers, report))


def test_zzz_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for viewers, report in sorted(_POINTS):
        multiple = ("∞" if report.reuse_multiple == float("inf")
                    else f"{report.reuse_multiple:.1f}x")
        rows.append((
            f"{viewers} active receivers",
            f"TVWS {report.tvws_fraction:4.0%} | "
            f"WATCH {report.watch_fraction:4.0%} | reuse {multiple}",
        ))
    emit(format_table(
        "Spectrum capacity: TVWS vs WATCH (usable cells at 16 dBm)", rows
    ))
    by_viewers = dict(_POINTS)
    # TVWS is oblivious to viewers.
    tvws = {r.tvws_usable for r in by_viewers.values()}
    assert len(tvws) == 1
    # WATCH dominates TVWS at every point and degrades monotonically.
    watch_series = [by_viewers[v].watch_usable for v in sorted(by_viewers)]
    assert all(
        by_viewers[v].watch_usable >= by_viewers[v].tvws_usable
        for v in by_viewers
    )
    assert watch_series == sorted(watch_series, reverse=True)
    # And the headline: with realistic viewing, WATCH at least doubles
    # the usable spectrum.
    full = by_viewers[max(by_viewers)]
    assert full.reuse_multiple >= 1.4
