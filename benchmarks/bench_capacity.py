"""Capacity analysis — what the paper's per-request numbers imply at scale.

§VI-A reports single-request costs (≈219 s SDC processing on GMP
hardware) and argues SUs tolerate the ≈7-minute round trip.  This bench
asks the follow-on systems question: how many SUs can one SDC+STP pair
actually serve?  Using Table II's GMP constants in the deployment
simulator:

* the **STP**, not the SDC, is the bottleneck (60 000 decrypt+encrypt
  pairs ≈ 51 min/request vs the SDC's ≈3.4 min);
* the baseline system saturates around ~1 request/hour;
* the packed extension (k = 12) moves saturation past ~10/hour and cuts
  p95 latency by an order of magnitude at moderate load.
"""

import pytest
from conftest import emit

from repro.analysis.reporting import format_table
from repro.analysis.scaling import PaillierCostProfile
from repro.sim import DeploymentSimulator, ServiceCostModel, WorkloadConfig
from repro.watch.scenario import ScenarioConfig, build_scenario

PAPER_PROFILE = PaillierCostProfile(
    key_bits=2048, encryption_s=0.030378, decryption_s=0.021170,
    hom_add_s=4e-6, hom_sub_s=7.3e-5, hom_scale_small_s=1.564e-3,
    hom_scale_full_s=0.018867, rerandomize_s=0.030,
)

_ROWS = []


@pytest.fixture(scope="module")
def sim_scenario():
    return build_scenario(ScenarioConfig(seed=4, num_sus=3))


@pytest.mark.parametrize("packing,rate", [(1, 0.5), (1, 1.5), (12, 5.0), (12, 20.0)])
def test_capacity_point(benchmark, sim_scenario, packing, rate):
    model = ServiceCostModel(
        PAPER_PROFILE, num_channels=100, num_blocks=600, packing_factor=packing
    )
    sim = DeploymentSimulator(
        sim_scenario, model,
        WorkloadConfig(su_requests_per_hour=rate, seed=9),
    )
    report = benchmark.pedantic(lambda: sim.run(12 * 3600), rounds=1, iterations=1)
    _ROWS.append((packing, rate, model, report))


def test_zzz_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for packing, rate, model, report in sorted(_ROWS, key=lambda r: (r[0], r[1])):
        rows.append((
            f"k={packing:2d}, λ={rate:4.1f}/h "
            f"(saturation ≈{3600 / model.costs.stp_convert_s:.1f}/h)",
            f"p95 {report.latency_percentile_s(95) / 60:6.1f} min | "
            f"STP util {report.stp_utilization:4.0%} | "
            f"served {report.num_requests}",
        ))
    emit(format_table(
        "Capacity (GMP-class hardware, C=100, B=600): STP is the bottleneck",
        rows,
    ))
    # Claims: packing multiplies the saturation rate; under overload the
    # p95 latency blows up relative to an uncontended system.
    by_key = {(p, r): rep for p, r, _, rep in _ROWS}
    assert (
        by_key[(1, 1.5)].latency_percentile_s(95)
        > 2 * by_key[(1, 0.5)].latency_percentile_s(95)
    )
    assert (
        by_key[(12, 5.0)].latency_percentile_s(95)
        < by_key[(1, 1.5)].latency_percentile_s(95) / 3
    )
