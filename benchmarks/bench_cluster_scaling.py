"""Cluster scaling — sharded SDC throughput on the paper-scale 600-block map.

The sharded plane (:mod:`repro.cluster`) scatters each request's columns
across N shards and merges the encrypted partials.  This bench measures
one license round on the Table I map (20x30 = 600 blocks) at 1, 2, and
4 shards and asserts the headline claims:

* the shard plane itself scales near-linearly (total shard busy time
  divided by the slowest shard's share);
* end-to-end round throughput at 4 shards is **>= 1.5x** the 1-shard
  deployment;
* killing a shard's primary mid-session costs one bounded recovery
  (promotion + snapshot resume) on the next round that touches it.

CI boxes for this repo expose a single core, so process pools cannot
demonstrate wall-clock parallelism here.  The bench therefore runs the
shards serially (one scatter thread), times each shard's busy window
per round, and models the N-core round latency as::

    wall  -  sum(shard busy)  +  max(shard busy)

i.e. the measured round with the serialized shard legs replaced by
their critical path — exactly what the scatter pool delivers when each
shard has a core (each shard's work ships to a dedicated worker
process; see ``DedicatedProcessExecutor``).  Both the raw wall time and
the modeled latency are recorded.

Emits ``BENCH_cluster.json`` at the repo root with a timestamped run
history (throughput vs shard count + the recovery probe).
"""

import os
import pathlib
import time

import pytest
from _harness import (
    Timer,
    append_history,
    describe_history,
    method_timer,
    utc_timestamp,
)
from conftest import emit

from repro.analysis.reporting import format_comparison_table
from repro.cluster import ClusterCoordinator
from repro.crypto.rand import DeterministicRandomSource
from repro.watch.scenario import ScenarioConfig, build_scenario

KEY_BITS = 256
SHARD_COUNTS = (1, 2, 4)
ROUNDS = 3
JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_cluster.json"

#: Table I geometry (600 blocks) with the channel count and population
#: trimmed so a pure-Python round stays in benchmark territory.
SCENARIO_CONFIG = ScenarioConfig(
    grid_rows=20,
    grid_cols=30,
    num_channels=2,
    num_towers=3,
    num_pus=40,
    num_sus=2,
    seed=7,
)

_SCENARIO = build_scenario(SCENARIO_CONFIG)
_RESULTS = {}


def _deploy(num_shards):
    """One cluster deployment, seeded identically across shard counts."""
    coordinator = ClusterCoordinator(
        _SCENARIO.environment,
        num_shards=num_shards,
        key_bits=KEY_BITS,
        rng=DeterministicRandomSource("cluster-bench"),
        # Serialize the scatter so each shard's busy window is measured
        # without GIL contention from its siblings (see module docstring).
        scatter_threads=1,
    )
    for pu in _SCENARIO.pus:
        coordinator.enroll_pu(pu)
    coordinator.enroll_su(_SCENARIO.sus[0])
    return coordinator


def _instrument(coordinator):
    """Wrap every primary's phase handlers with a per-shard busy timer."""
    busy = {}
    for shard_id, replica_set in coordinator.replica_sets.items():
        busy[shard_id] = method_timer(
            replica_set.primary,
            ("process_phase1", "process_phase2"),
            Timer(name=shard_id),
        )
    return busy


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_throughput_by_shard_count(benchmark, num_shards):
    """One reuse-path license round per iteration, shard busy accounted."""
    coordinator = _deploy(num_shards)
    try:
        su_id = _SCENARIO.sus[0].su_id
        first = coordinator.run_request_round(su_id)
        client = coordinator.su_client(su_id)
        client.precompute_refresh_material(rounds=ROUNDS + 1)
        busy = _instrument(coordinator)
        modeled = []

        def one_round():
            for timer in busy.values():
                timer.reset()
            start = time.perf_counter()
            coordinator.run_request_round(su_id, reuse_cached_request=True)
            wall = time.perf_counter() - start
            totals = [timer.total_s for timer in busy.values()]
            modeled.append(wall - sum(totals) + max(totals))

        benchmark.pedantic(one_round, rounds=ROUNDS, iterations=1)
        _RESULTS[num_shards] = {
            "wall_s": benchmark.stats["min"],
            "modeled_s": min(modeled),
            "shard_busy_s": {
                k: round(t.total_s, 4) for k, t in sorted(busy.items())
            },
            "granted": first.granted,
        }
    finally:
        coordinator.close()


def test_failover_recovery_probe(benchmark):
    """Kill a primary mid-session; the next round pays one recovery."""
    coordinator = _deploy(2)
    try:
        su_id = _SCENARIO.sus[0].su_id
        coordinator.run_request_round(su_id)
        coordinator.su_client(su_id).precompute_refresh_material(rounds=3)
        coordinator.sdc.commit_epoch(0)  # the snapshot failover resumes from

        start = time.perf_counter()
        coordinator.run_request_round(su_id, reuse_cached_request=True)
        healthy_s = time.perf_counter() - start

        victim = coordinator.router.shard_ids[0]
        coordinator.kill_shard(victim)
        report = benchmark.pedantic(
            lambda: coordinator.run_request_round(
                su_id, reuse_cached_request=True
            ),
            rounds=1, iterations=1,
        )
        recovery_s = benchmark.stats["min"]

        events = coordinator.replica_sets[victim].failovers
        assert len(events) == 1, "expected exactly one promotion"
        assert coordinator.router.stats.failovers == 1
        assert report.granted == _RESULTS[2]["granted"]  # same seed, same answer
        _RESULTS["recovery"] = {
            "victim": victim,
            "healthy_round_s": healthy_s,
            "post_kill_round_s": recovery_s,
            "recovery_overhead_s": max(0.0, recovery_s - healthy_s),
            "resumed_epoch": events[0].resumed_epoch,
            "from_snapshot": events[0].from_snapshot,
        }
    finally:
        coordinator.close()


def test_zzz_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = _RESULTS[1]
    recovery = _RESULTS["recovery"]
    speedups = {
        n: base["modeled_s"] / _RESULTS[n]["modeled_s"] for n in SHARD_COUNTS
    }
    # The shard plane in isolation: total shard work over the slowest
    # shard's share — how well the ring spreads the 600 blocks.
    plane = {
        n: sum(_RESULTS[n]["shard_busy_s"].values())
        / max(_RESULTS[n]["shard_busy_s"].values())
        for n in SHARD_COUNTS
    }

    emit(format_comparison_table(
        f"Sharded SDC on the 600-block map (n = {KEY_BITS}, modeled N-core)",
        [
            ("round latency",
             f"{base['modeled_s']:.2f} s",
             f"{_RESULTS[4]['modeled_s']:.2f} s"),
            ("throughput",
             f"{1.0 / base['modeled_s']:.2f} rounds/s",
             f"{1.0 / _RESULTS[4]['modeled_s']:.2f} rounds/s"),
            ("end-to-end speedup", "1.0x", f"{speedups[4]:.2f}x"),
            ("shard-plane scaling", "1.0x", f"{plane[4]:.2f}x of 4.0x ideal"),
            ("recovery overhead", "-",
             f"{recovery['recovery_overhead_s'] * 1000.0:.0f} ms"),
        ],
        headers=("metric", "1 shard", "4 shards"),
    ))

    entry = {
        "timestamp": utc_timestamp(),
        "key_bits": KEY_BITS,
        "cpu_count": os.cpu_count(),
        "scenario": {
            "blocks": SCENARIO_CONFIG.grid_rows * SCENARIO_CONFIG.grid_cols,
            "channels": SCENARIO_CONFIG.num_channels,
            "pus": SCENARIO_CONFIG.num_pus,
        },
        "by_shard_count": {
            str(n): {
                "wall_s": _RESULTS[n]["wall_s"],
                "modeled_round_s": _RESULTS[n]["modeled_s"],
                "modeled_rounds_per_s": 1.0 / _RESULTS[n]["modeled_s"],
                "shard_busy_s": _RESULTS[n]["shard_busy_s"],
                "speedup_vs_1": speedups[n],
            }
            for n in SHARD_COUNTS
        },
        "recovery": recovery,
    }
    emit(describe_history(JSON_PATH, append_history(JSON_PATH, entry)))

    # Same seed, same decision, regardless of how the map is sharded.
    assert len({_RESULTS[n]["granted"] for n in SHARD_COUNTS}) == 1
    # More shards never slow the modeled round down...
    assert _RESULTS[4]["modeled_s"] <= _RESULTS[2]["modeled_s"] <= base["modeled_s"]
    # ...and the headline: >= 1.5x end-to-end at 4 shards, near-linear
    # scaling (> 2.5x of the 4.0x ideal) on the shard plane itself.
    assert speedups[4] >= 1.5, f"4-shard speedup {speedups[4]:.2f}x below 1.5x"
    assert plane[4] >= 2.5, f"shard-plane scaling {plane[4]:.2f}x too sub-linear"
    # The failover resumed from the committed snapshot, not from scratch.
    assert recovery["from_snapshot"] and recovery["resumed_epoch"] == 0
