"""Table I — parameter settings.

Renders the paper's simulation settings and verifies the derived
configuration objects carry them faithfully.  The "benchmark" here is
the ``E``-matrix precomputation at Table I scale, which is the only
plaintext precompute the setting implies (§IV-A1).
"""

from conftest import emit

from repro.analysis.reporting import format_table
from repro.geo.grid import BlockGrid
from repro.watch.environment import SpectrumEnvironment
from repro.watch.params import PaperSettings


def test_table1_settings_render(benchmark):
    settings = PaperSettings()

    def build_configuration():
        params = settings.watch_parameters()
        grid = BlockGrid(rows=settings.grid_rows, cols=settings.grid_cols)
        return params, grid

    params, grid = benchmark(build_configuration)
    assert params.num_channels == 100
    assert grid.num_blocks == 600
    emit(format_table("Table I: Parameter Settings", settings.as_table_rows()))


def test_e_matrix_precompute_at_paper_scale(benchmark, system_scenario):
    """§IV-A1's public precompute — plaintext, so full scale is feasible."""
    settings = PaperSettings()
    params = settings.watch_parameters()
    grid = BlockGrid(rows=settings.grid_rows, cols=settings.grid_cols)

    def precompute():
        env = SpectrumEnvironment(
            grid, params, transmitters=system_scenario.towers
        )
        return env.e_matrix

    e_matrix = benchmark.pedantic(precompute, rounds=1, iterations=1)
    assert e_matrix.shape == (100, 600)
    emit(
        format_table(
            "E-matrix precompute (plaintext, public data)",
            [
                ("Cells", f"{e_matrix.size}"),
                ("Non-trivial caps", str(sum(1 for v in e_matrix.flat if v > 1))),
            ],
        )
    )
