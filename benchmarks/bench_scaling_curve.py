"""Protocol complexity curve — round cost is Θ(C·B), measured.

§VI-A argues every phase is linear in the matrix size (and the privacy
trade-off bench shows it for a fixed C).  This bench sweeps the *total*
cell count over nearly an order of magnitude, varying both channels and
blocks, and fits the full-round wall time and request bytes against the
cell count: the fit must be linear with high R² and a near-zero
intercept share, which is what licenses the paper-scale extrapolations
used by Figure 6's projection.
"""

import time

import numpy as np
import pytest
from conftest import emit

from repro.analysis.reporting import format_table
from repro.analysis.stats import linear_fit
from repro.crypto.rand import DeterministicRandomSource
from repro.geo.grid import BlockGrid
from repro.pisa.protocol import PisaCoordinator
from repro.watch.entities import PUReceiver, SUTransmitter
from repro.watch.environment import SpectrumEnvironment
from repro.watch.params import WatchParameters

KEY_BITS = 256
#: (channels, rows, cols) sweep points — cells from 48 to 384.
POINTS = ((4, 3, 4), (4, 4, 6), (8, 4, 6), (8, 6, 8))

_RESULTS = []


def _run_point(channels: int, rows: int, cols: int) -> tuple[int, float, int]:
    grid = BlockGrid(rows=rows, cols=cols)
    env = SpectrumEnvironment(grid, WatchParameters(num_channels=channels))
    coordinator = PisaCoordinator(
        env, key_bits=KEY_BITS,
        rng=DeterministicRandomSource(f"curve-{channels}-{rows}-{cols}"),
    )
    coordinator.enroll_pu(PUReceiver(
        "pu", block_index=0, channel_slot=0, signal_strength_mw=1e-5
    ))
    su = SUTransmitter("su", block_index=grid.num_blocks - 1, tx_power_dbm=10.0)
    coordinator.enroll_su(su)
    start = time.perf_counter()
    report = coordinator.run_request_round(su.su_id)
    elapsed = time.perf_counter() - start
    return channels * grid.num_blocks, elapsed, report.request_bytes


@pytest.mark.parametrize("channels,rows,cols", POINTS)
def test_curve_point(benchmark, channels, rows, cols):
    cells, elapsed, req_bytes = benchmark.pedantic(
        lambda: _run_point(channels, rows, cols), rounds=1, iterations=1
    )
    _RESULTS.append((cells, elapsed, req_bytes))


def test_zzz_fit(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points = sorted(_RESULTS)
    cells = [p[0] for p in points]
    times = [p[1] for p in points]
    sizes = [p[2] for p in points]
    time_fit = linear_fit(cells, times)
    size_fit = linear_fit(cells, sizes)
    emit(format_table(
        f"Round cost vs C·B (n = {KEY_BITS})",
        [
            (f"{c} cells", f"{t:.2f} s | {s / 1e3:.1f} kB")
            for c, t, s in points
        ] + [
            ("time fit", f"{time_fit.slope * 1e3:.2f} ms/cell, "
             f"R² = {time_fit.r_squared:.3f}"),
            ("size fit", f"{size_fit.slope:.0f} B/cell, "
             f"R² = {size_fit.r_squared:.4f}"),
        ],
    ))
    # Linearity licenses the Figure 6 extrapolation.
    assert time_fit.r_squared > 0.97
    assert size_fit.r_squared > 0.999
    # The fixed overhead (keygen already excluded) is a small share of
    # the largest point's cost.
    assert abs(time_fit.intercept) < 0.5 * max(times)
    # Bytes per cell ≈ one ciphertext (64 B body + 4 B prefix at 256 bits)
    # times ~3 matrices (request + extraction + conversion are counted
    # in the request here: just the request → ≈68 B/cell).
    assert 50 < size_fit.slope < 90
