"""§VI-A channel-switching load — the virtual-channel optimisation.

The paper (citing [16]): viewers switch virtual channels 2.3-2.7 times
per hour, but "the rate of switching between physical channels is much
lower", and only physical switches need an SDC update.  This bench
simulates a 100-PU population over 24 hours and quantifies the update
traffic the optimisation saves, plus the resulting SDC load against the
measured per-update cost.
"""

import numpy as np
import pytest
from conftest import emit

from repro.analysis.reporting import format_table
from repro.sim.workload import VIRTUAL_SWITCHES_PER_HOUR, PuSwitchProcess

NUM_PUS = 100
HOURS = 24.0
PHYSICAL_FRACTION = 0.2
#: Paper: the SDC handles one PU update in ≈2.6 s (GMP hardware).
PAPER_UPDATE_SECONDS = 2.6

_RESULTS = {}


def test_switch_traffic(benchmark):
    def simulate():
        rng = np.random.default_rng(7)
        physical = 0
        virtual_only = 0
        for _ in range(NUM_PUS):
            process = PuSwitchProcess(
                VIRTUAL_SWITCHES_PER_HOUR, PHYSICAL_FRACTION, rng
            )
            elapsed = 0.0
            while True:
                gap, needs_update = process.next_switch()
                elapsed += gap
                if elapsed > HOURS * 3600:
                    break
                if needs_update:
                    physical += 1
                else:
                    virtual_only += 1
        return physical, virtual_only

    _RESULTS["traffic"] = benchmark.pedantic(simulate, rounds=1, iterations=1)


def test_zzz_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    physical, virtual_only = _RESULTS["traffic"]
    total = physical + virtual_only
    expected_total = NUM_PUS * VIRTUAL_SWITCHES_PER_HOUR * HOURS
    sdc_busy_s = physical * PAPER_UPDATE_SECONDS
    naive_busy_s = total * PAPER_UPDATE_SECONDS
    emit(format_table(
        f"Channel switching, {NUM_PUS} PUs over {HOURS:.0f} h "
        f"({VIRTUAL_SWITCHES_PER_HOUR}/h per viewer)",
        [
            ("total channel switches", f"{total} (expected ≈{expected_total:.0f})"),
            ("physical (SDC updates needed)", f"{physical} ({physical / total:.0%})"),
            ("virtual-only (suppressed)", f"{virtual_only}"),
            ("SDC update load with optimisation",
             f"{sdc_busy_s / 3600:.2f} h/day ({sdc_busy_s / (HOURS * 36):.1f}% busy)"),
            ("without the optimisation",
             f"{naive_busy_s / 3600:.2f} h/day ({naive_busy_s / (HOURS * 36):.1f}% busy)"),
        ],
    ))
    # Claims: the Poisson machinery hits the configured rates, and the
    # optimisation cuts update traffic by the physical fraction.
    assert total == pytest.approx(expected_total, rel=0.1)
    assert physical / total == pytest.approx(PHYSICAL_FRACTION, abs=0.05)
    assert sdc_busy_s < 0.3 * naive_busy_s
