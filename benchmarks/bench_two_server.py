"""Extension ablation — STP variant vs the §VII STP-free two-server variant.

The paper's future work asks for "a model that does not involve an
STP".  Our two-server threshold design removes the key-escrow party at
the cost of one extra partial-decryption exponentiation per cell (front
side) and roughly doubled SDC→co-server traffic.  This bench measures
both variants on the same scenario and prints the price of decentralised
trust.
"""

import pytest
from conftest import SYSTEM_KEY_BITS, emit

from repro.analysis.reporting import format_comparison_table
from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.protocol import PisaCoordinator
from repro.pisa.two_server import TwoServerCoordinator

_RESULTS = {}


def _deploy(coordinator_cls, scenario, label):
    coord = coordinator_cls(
        scenario.environment,
        key_bits=SYSTEM_KEY_BITS,
        rng=DeterministicRandomSource(f"2s-bench-{label}"),
    )
    for pu in scenario.pus:
        coord.enroll_pu(pu)
    su = scenario.sus[0]
    coord.enroll_su(su)
    coord.su_client(su.su_id).prepare_request()
    return coord, su.su_id


def test_stp_variant(benchmark, system_scenario):
    coord, su_id = _deploy(PisaCoordinator, system_scenario, "stp")

    def round_():
        return coord.run_request_round(su_id, reuse_cached_request=True)

    report = benchmark.pedantic(round_, rounds=3, iterations=1, warmup_rounds=1)
    _RESULTS["stp"] = (benchmark.stats["mean"], report)


def test_two_server_variant(benchmark, system_scenario):
    coord, su_id = _deploy(TwoServerCoordinator, system_scenario, "two")

    def round_():
        return coord.run_request_round(su_id, reuse_cached_request=True)

    report = benchmark.pedantic(round_, rounds=3, iterations=1, warmup_rounds=1)
    _RESULTS["two"] = (benchmark.stats["mean"], report)


def test_zzz_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    stp_time, stp_report = _RESULTS["stp"]
    two_time, two_report = _RESULTS["two"]
    emit(format_comparison_table(
        "STP-free extension: trust decentralisation cost (per request round)",
        [
            ("round time", f"{stp_time:.2f} s", f"{two_time:.2f} s"),
            ("SDC→converter bytes",
             f"{stp_report.sign_extraction_bytes / 1e3:.0f} kB",
             f"{two_report.sign_extraction_bytes / 1e3:.0f} kB"),
            ("converter→SDC bytes",
             f"{stp_report.conversion_bytes / 1e3:.0f} kB",
             f"{two_report.conversion_bytes / 1e3:.0f} kB"),
            ("key escrow", "STP holds full sk_G", "no single holder"),
            ("single-server breach reveals", "ALL protocol traffic",
             "nothing (blinded V only)"),
        ],
        headers=("metric", "PISA + STP", "two-server (ours)"),
    ))
    # Decisions agree and the overhead stays within a small factor.
    assert stp_report.granted == two_report.granted
    assert two_time < 4.0 * stp_time
    assert (
        two_report.sign_extraction_bytes
        > 1.5 * stp_report.sign_extraction_bytes
    )
