"""Shared benchmark fixtures.

The benchmark suite reproduces every table and figure of §VI.  Two scale
regimes are used:

* **paper-scale crypto** — Table II runs at the paper's real 2048-bit
  modulus (pure-Python primitives are a small constant factor off GMP);
* **reduced-scale system** — the end-to-end Figure 6 benches run a
  smaller (C, B, key) configuration and print the measured numbers next
  to an extrapolation to the paper's (100, 600, 2048) setting computed
  by :mod:`repro.analysis.scaling`.

Every bench prints a comparison table (paper-reported vs measured); run
with ``-s`` to see them, e.g.::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.crypto.paillier import generate_keypair
from repro.crypto.rand import DeterministicRandomSource

#: The paper's crypto setting (NIST 112-bit security).
PAPER_KEY_BITS = 2048
#: Reduced setting for end-to-end system benches.
SYSTEM_KEY_BITS = 512
SYSTEM_CHANNELS = 10
SYSTEM_GRID = (6, 8)  # 48 blocks


@pytest.fixture(scope="session")
def bench_rng():
    return DeterministicRandomSource("pisa-benchmarks")


@pytest.fixture(scope="session")
def paper_keypair(bench_rng):
    """A 2048-bit keypair matching Table II's setting."""
    return generate_keypair(PAPER_KEY_BITS, rng=bench_rng.fork("paper-key"))


@pytest.fixture(scope="session")
def system_keypair(bench_rng):
    """The reduced-scale keypair for end-to-end benches."""
    return generate_keypair(SYSTEM_KEY_BITS, rng=bench_rng.fork("system-key"))


@pytest.fixture(scope="session")
def system_scenario():
    """The reduced-scale WATCH scenario shared by the system benches."""
    from repro.watch.scenario import ScenarioConfig, build_scenario

    rows, cols = SYSTEM_GRID
    return build_scenario(
        ScenarioConfig(
            grid_rows=rows,
            grid_cols=cols,
            num_channels=SYSTEM_CHANNELS,
            num_towers=3,
            num_pus=6,
            num_sus=2,
            seed=1,
        )
    )


def emit(text: str) -> None:
    """Print a report block (visible with ``pytest -s``)."""
    print("\n" + text)
