"""§IV-A feedback-loop experiment — "PUs are finally protected, N stable".

The paper folds multi-SU aggregation into the fixed margin Δ_redn and
asserts a feedback loop keeps PUs protected.  This bench quantifies the
claim: admit a 40-SU population under increasing margins, report worst
PU SINR and admission count per round, and assert the loop converges to
full protection with a non-empty admitted set.
"""

import numpy as np
import pytest
from conftest import emit

from repro.analysis.reporting import format_table
from repro.watch.entities import SUTransmitter
from repro.watch.feedback import FeedbackController
from repro.watch.params import WatchParameters
from repro.watch.scenario import ScenarioConfig, build_scenario

_REPORT = {}


@pytest.fixture(scope="module")
def dense_scenario():
    return build_scenario(ScenarioConfig(
        seed=5, grid_rows=8, grid_cols=8, num_channels=6,
        num_towers=3, num_pus=6, num_sus=0,
    ))


def test_feedback_convergence(benchmark, dense_scenario):
    rng = np.random.default_rng(1)
    sus = [
        SUTransmitter(f"su-{i}", block_index=int(rng.integers(0, 64)),
                      tx_power_dbm=float(rng.uniform(0.0, 18.0)))
        for i in range(40)
    ]
    controller = FeedbackController(
        dense_scenario.environment.grid,
        dense_scenario.towers,
        dense_scenario.pus,
        WatchParameters(num_channels=6, redn_db=1.0),
    )
    _REPORT["result"] = benchmark.pedantic(
        lambda: controller.converge(sus), rounds=1, iterations=1
    )


def test_zzz_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report = _REPORT["result"]
    rows = [
        (f"round {i + 1}: Δ_redn = {redn:.0f} dB",
         f"admitted {admitted:2d}/40, worst PU SINR {sinr:5.1f} dB")
        for i, (redn, admitted, sinr) in enumerate(report.trajectory)
    ]
    rows.append(("converged", f"protected={report.protected}, "
                 f"{report.num_admitted} SUs, Δ_redn={report.final_redn_db:.0f} dB"))
    emit(format_table("Feedback loop: Δ_redn vs aggregate PU protection", rows))

    # The paper's claims, asserted:
    assert report.protected                       # PUs finally protected
    assert report.num_admitted > 0                # without shutting SUs out
    sinrs = [step[2] for step in report.trajectory]
    assert sinrs[-1] > sinrs[0]                   # protection improves
    admitted = [step[1] for step in report.trajectory]
    assert admitted[-1] < admitted[0]             # at an admission cost
