"""Journal overhead — what crash-safety costs on the paper-scale map.

The write-ahead epoch journal (:mod:`repro.resilience.journal`) logs
every RNG draw and clock read of the cluster coordinator plus the two
per-round durability barriers.  This bench runs one license round on
the Table I map (20x30 = 600 blocks) with the journal off and on —
identical seeds, so both deployments execute byte-identical protocol
rounds — and asserts the paper-facing claim of ``docs/resilience.md``:

    **journaling costs <= 15 % round latency.**

The journal write path is dominated by the fsync cadence, not the CPU:
a per-draw fsync costs ~40 % round latency on this map, batching at the
production default (``fsync_every=256``) brings it under 10 %.  The
durability *barriers* (phase-1/phase-2 commit points) are explicit and
unaffected by the batch size.

Emits ``BENCH_resilience.json`` at the repo root with a timestamped run
history (journal-off vs journal-on latency + the measured overhead).
"""

import os
import pathlib
import tempfile

import pytest
from _harness import append_history, describe_history, utc_timestamp
from conftest import emit

from repro.analysis.reporting import format_comparison_table
from repro.cluster import ClusterCoordinator
from repro.crypto.rand import DeterministicRandomSource
from repro.resilience.journal import EpochJournal, JournalWriter, read_journal
from repro.watch.scenario import ScenarioConfig, build_scenario

KEY_BITS = 256
SEED = 7
ROUNDS = 3
SHARDS = 2
OVERHEAD_BUDGET = 0.15
JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_resilience.json"

#: Table I geometry (600 blocks), matching ``bench_cluster_scaling``.
SCENARIO_CONFIG = ScenarioConfig(
    grid_rows=20,
    grid_cols=30,
    num_channels=2,
    num_towers=3,
    num_pus=40,
    num_sus=2,
    seed=SEED,
)

_SCENARIO = build_scenario(SCENARIO_CONFIG)
_RESULTS = {}


def _deploy(journal=None):
    """One cluster deployment; identical seed with or without a journal."""
    coordinator = ClusterCoordinator(
        _SCENARIO.environment,
        num_shards=SHARDS,
        key_bits=KEY_BITS,
        rng=DeterministicRandomSource(SEED),
        scatter_threads=1,
        journal=journal,
        clock=lambda: 1_700_000_000.0,
    )
    for pu in _SCENARIO.pus:
        coordinator.enroll_pu(pu)
    coordinator.enroll_su(_SCENARIO.sus[0])
    return coordinator


def _measure(benchmark, journal=None, journal_path=None):
    coordinator = _deploy(journal=journal)
    try:
        su_id = _SCENARIO.sus[0].su_id
        first = coordinator.run_request_round(su_id)
        client = coordinator.su_client(su_id)
        client.precompute_refresh_material(rounds=ROUNDS + 1)
        benchmark.pedantic(
            lambda: coordinator.run_request_round(
                su_id, reuse_cached_request=True
            ),
            rounds=ROUNDS,
            iterations=1,
        )
        result = {
            "round_s": benchmark.stats["min"],
            "granted": first.granted,
        }
        if journal is not None:
            journal.barrier()
            readback = read_journal(journal_path)
            result["journal_records"] = len(readback.records)
            result["journal_bytes"] = journal_path.stat().st_size
            result["draws_journaled"] = len(readback.of_kind("draw"))
        return result
    finally:
        coordinator.close()


def test_round_latency_journal_off(benchmark):
    _RESULTS["off"] = _measure(benchmark)


def test_round_latency_journal_on(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "epoch.journal"
        # Context manager, not bare construction: close() flushes the
        # fsync-batched tail even if _measure raises mid-round.
        with EpochJournal(JournalWriter(path)) as journal:
            _RESULTS["on"] = _measure(
                benchmark, journal=journal, journal_path=path
            )


def test_zzz_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    off = _RESULTS["off"]
    on = _RESULTS["on"]
    overhead = on["round_s"] / off["round_s"] - 1.0

    emit(format_comparison_table(
        f"Journal overhead on the 600-block map (n = {KEY_BITS}, "
        f"{SHARDS} shards)",
        [
            ("round latency", f"{off['round_s']:.3f} s", f"{on['round_s']:.3f} s"),
            ("overhead", "-", f"{overhead * 100.0:+.1f}%"),
            ("records / round", "-",
             f"~{on['journal_records'] // (ROUNDS + 1)}"),
            ("journal growth", "-",
             f"{on['journal_bytes'] / 1024.0:.0f} KiB total"),
        ],
        headers=("metric", "journal off", "journal on"),
    ))

    entry = {
        "timestamp": utc_timestamp(),
        "key_bits": KEY_BITS,
        "seed": SEED,
        "shards": SHARDS,
        "cpu_count": os.cpu_count(),
        "scenario": {
            "blocks": SCENARIO_CONFIG.grid_rows * SCENARIO_CONFIG.grid_cols,
            "channels": SCENARIO_CONFIG.num_channels,
            "pus": SCENARIO_CONFIG.num_pus,
        },
        "journal_off_round_s": off["round_s"],
        "journal_on_round_s": on["round_s"],
        "overhead_fraction": overhead,
        "journal_records": on["journal_records"],
        "journal_bytes": on["journal_bytes"],
        "draws_journaled": on["draws_journaled"],
    }
    emit(describe_history(JSON_PATH, append_history(JSON_PATH, entry)))

    # Same seed, same decision — journaling must be protocol-transparent.
    assert on["granted"] == off["granted"]
    # The journal actually captured the draw stream.
    assert on["draws_journaled"] > 0
    # The headline: crash safety costs at most 15 % round latency.
    assert overhead <= OVERHEAD_BUDGET, (
        f"journal overhead {overhead * 100.0:.1f}% exceeds "
        f"{OVERHEAD_BUDGET * 100.0:.0f}% budget"
    )
