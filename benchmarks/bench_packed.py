"""Extension ablation — packed requests vs the baseline protocol.

Slot packing carries ``k`` cells per ciphertext, dividing the
per-cell-dominated phases of Figure 6 (request preparation, STP
conversion) by ``k``, at the cost of a bounded, documented leakage of
anonymised sign patterns to the STP (see :mod:`repro.pisa.packed`).
This bench runs both protocols on the same scenario and asserts the
speedup and the size reduction.
"""

import pytest
from conftest import emit

from repro.analysis.reporting import format_comparison_table
from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.packed import PackedCoordinator
from repro.pisa.protocol import PisaCoordinator

#: 512-bit keys give the packed layout 3 slots; at the paper's 2048 bits
#: it would be 15 (with 64-bit α).
KEY_BITS = 512

_RESULTS = {}


def _deploy(cls, scenario, label):
    coord = cls(
        scenario.environment, key_bits=KEY_BITS,
        rng=DeterministicRandomSource(f"packed-bench-{label}"),
    )
    for pu in scenario.pus:
        coord.enroll_pu(pu)
    su = scenario.sus[0]
    coord.enroll_su(su)
    return coord, su.su_id


def test_baseline_round(benchmark, system_scenario):
    coord, su_id = _deploy(PisaCoordinator, system_scenario, "base")
    report = benchmark.pedantic(
        lambda: coord.run_request_round(su_id), rounds=2, iterations=1,
        warmup_rounds=1,
    )
    _RESULTS["base"] = (benchmark.stats["mean"], report)


def test_packed_round(benchmark, system_scenario):
    coord, su_id = _deploy(PackedCoordinator, system_scenario, "packed")
    report = benchmark.pedantic(
        lambda: coord.run_request_round(su_id), rounds=2, iterations=1,
        warmup_rounds=1,
    )
    _RESULTS["packed"] = (benchmark.stats["mean"], report, coord.layout.num_slots)


def test_zzz_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base_time, base_report = _RESULTS["base"]
    packed_time, packed_report, k = _RESULTS["packed"]
    emit(format_comparison_table(
        f"Packed-request extension (k = {k} slots @ n = {KEY_BITS})",
        [
            ("round time", f"{base_time:.2f} s", f"{packed_time:.2f} s"),
            ("request size",
             f"{base_report.request_bytes / 1e3:.0f} kB",
             f"{packed_report.request_bytes / 1e3:.0f} kB"),
            ("SDC→STP size",
             f"{base_report.sign_extraction_bytes / 1e3:.0f} kB",
             f"{packed_report.sign_extraction_bytes / 1e3:.0f} kB"),
            ("STP→SDC size",
             f"{base_report.conversion_bytes / 1e3:.0f} kB",
             f"{packed_report.conversion_bytes / 1e3:.0f} kB"),
            ("STP blindness", "complete (ε-coin)",
             "anonymised sign patterns"),
        ],
        headers=("metric", "baseline PISA", "packed (ours)"),
    ))
    assert _RESULTS["base"][1].granted == _RESULTS["packed"][1].granted
    # The headline claims: close to k-fold reduction in size, and a
    # substantial end-to-end speedup.
    assert packed_report.request_bytes < base_report.request_bytes / (k - 1)
    assert packed_time < 0.7 * base_time
