"""Ablation — PISA's blinding trick vs bitwise secure comparison.

§IV-B motivates the α/β/ε blinding by arguing that bit-decomposition
comparison protocols ([12], [13], [18]) would be "extremely complex and
time-consuming" and need "multiple rounds of communications".  This
bench quantifies the claim on identical inputs:

* **PISA path** (per matrix cell): one ≈100-bit scaling, one fresh β
  encryption, one sign flip at the SDC; one decrypt + one re-encrypt at
  the STP; ONE communication leg each way.
* **Bitwise path** (per matrix cell): a masked decrypt, ℓ bit
  encryptions, Θ(ℓ) homomorphic ops, ℓ blinded decryptions, THREE legs.
"""

import pytest
from conftest import emit

from repro.analysis.reporting import format_comparison_table
from repro.baselines.securecmp import SecureComparisonProtocol
from repro.crypto.paillier import generate_keypair
from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.blinding import BlindingFactory, BlindingParameters

KEY_BITS = 512
VALUE_BITS = 24  # reduced from the paper's 60 to keep the bitwise path fast

_RESULTS: dict[str, float] = {}
_META: dict[str, object] = {}


@pytest.fixture(scope="module")
def material():
    rng = DeterministicRandomSource("ablation")
    keypair = generate_keypair(KEY_BITS, rng=rng)
    pk = keypair.public_key
    indicator_value = -123_456
    return {
        "rng": rng,
        "keypair": keypair,
        "indicator": pk.encrypt(indicator_value, rng=rng),
        "indicator_value": indicator_value,
    }


def test_pisa_sign_extraction_per_cell(benchmark, material):
    """SDC blind + STP decrypt/sign/re-encrypt for ONE cell."""
    keypair = material["keypair"]
    pk, sk = keypair.public_key, keypair.private_key
    rng = material["rng"]
    params = BlindingParameters.for_key(pk, indicator_bound=1 << VALUE_BITS)
    factory = BlindingFactory(params, rng=rng)
    indicator = material["indicator"]

    def pisa_cell():
        cell = factory.draw()
        blinded = indicator.scalar_mul(cell.alpha)
        blinded = blinded.subtract(pk.encrypt(cell.beta, rng=rng))
        blinded = blinded.scalar_mul(cell.epsilon)
        value = sk.decrypt(blinded)  # STP side
        sign = 1 if value > 0 else -1
        return pk.encrypt(sign, rng=rng)  # key conversion re-encrypt

    benchmark.pedantic(pisa_cell, rounds=5, iterations=1, warmup_rounds=1)
    _RESULTS["pisa"] = benchmark.stats["mean"]


def test_bitwise_comparison_per_cell(benchmark, material):
    """The avoided baseline: DGK-style comparison for ONE cell."""
    protocol = SecureComparisonProtocol(
        material["keypair"], value_bits=VALUE_BITS, kappa=20, rng=material["rng"]
    )
    indicator = material["indicator"]
    expected = material["indicator_value"] <= 0

    def bitwise_cell():
        return protocol.is_non_positive(indicator)

    result = benchmark.pedantic(bitwise_cell, rounds=3, iterations=1, warmup_rounds=1)
    assert result == expected
    _RESULTS["bitwise"] = benchmark.stats["mean"]
    _META["stats"] = protocol.stats
    _META["bits"] = protocol.bit_length


def test_zzz_render_ablation(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    stats = _META["stats"]
    per_compare = stats.comparisons or 1
    speedup = _RESULTS["bitwise"] / _RESULTS["pisa"]
    emit(format_comparison_table(
        f"Ablation: sign extraction per cell (n={KEY_BITS}, ℓ={_META['bits']} bits)",
        [
            ("time per cell", f"{_RESULTS['pisa'] * 1e3:.2f} ms (PISA)",
             f"{_RESULTS['bitwise'] * 1e3:.2f} ms (bitwise)"),
            ("communication legs", "2 (SDC↔STP)",
             f"{stats.communication_legs // per_compare}"),
            ("encryptions per cell", "2",
             f"{stats.encryptions // per_compare}"),
            ("decryptions per cell", "1",
             f"{stats.decryptions // per_compare}"),
            ("speedup", "—", f"{speedup:.1f}x in PISA's favour"),
        ],
        headers=("metric", "PISA blinding", "bitwise baseline"),
    ))
    # The paper's qualitative claim: the bitwise route is much costlier.
    assert speedup > 3.0
    assert stats.encryptions // per_compare > 10
