"""Socket plane vs in-memory plane — what real process boundaries cost.

The two planes run the *same* seeded loadtest (same scenario, same
draws, byte-identical transcripts — that part is asserted by
``tests/netd/test_equivalence.py``); this bench measures what changes:
wall time per granted license once every protocol byte crosses a real
TCP frame into shard/STP subprocesses, at 1, 2, and 4 shards.

Two effects compose:

* **fixed deployment cost** — spawning workers, bootstrap pulls, and
  connection dials happen once per deployment, not per request, so they
  are reported separately (``setup_s``) instead of polluting the
  per-request number;
* **per-request framing cost** — encode + CRC + syscall + decode per
  protocol leg.  On a single-core box the homomorphic arithmetic
  dominates, so the measured overhead ratio is the honest headline: the
  socket plane stays within ``MAX_OVERHEAD_RATIO`` of in-memory.

Emits ``BENCH_socket.json`` at the repo root with a timestamped run
history (per plane x shard count: wall, setup, per-request latency,
frames and bytes on the wire).
"""

import pathlib
import time

import pytest
from _harness import append_history, describe_history, utc_timestamp
from conftest import emit

from repro.analysis.reporting import format_comparison_table
from repro.netd.plane import run_socket_loadtest
from repro.service.broker import ServiceConfig
from repro.service.loadtest import LoadtestConfig, run_loadtest
from repro.telemetry import MetricsRegistry
from repro.watch.scenario import ScenarioConfig

KEY_BITS = 256
SHARD_COUNTS = (1, 2, 4)
REQUESTS = 3
JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_socket.json"

#: Single-core CI boxes: arithmetic dominates, frames are cheap — but a
#: regression that serialises twice or re-dials per request shows up
#: loudly against this bound.
MAX_OVERHEAD_RATIO = 3.0

SCENARIO_CONFIG = ScenarioConfig(seed=7, num_sus=1)

_RESULTS: dict = {"memory": {}, "socket": {}}


def _config(shards: int) -> LoadtestConfig:
    return LoadtestConfig(
        seed=7,
        num_requests=REQUESTS,
        arrivals_per_second=500.0,
        num_sus=1,
        num_pu_switches=0,
        key_bits=KEY_BITS,
        shards=shards,
        service=ServiceConfig(batch_window_s=0.0, max_batch=1),
    )


def _counter_total(metrics_snapshot: dict, family: str) -> int:
    return int(
        sum(
            value
            for key, value in metrics_snapshot["counters"].items()
            if key.split("{", 1)[0] == family
        )
    )


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_memory_plane(benchmark, num_shards):
    from repro.watch.scenario import build_scenario

    def run():
        start = time.perf_counter()
        report = run_loadtest(
            _config(num_shards), scenario=build_scenario(SCENARIO_CONFIG)
        )
        return report, time.perf_counter() - start

    report, wall = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.completed == REQUESTS
    _RESULTS["memory"][num_shards] = {
        "wall_s": wall,
        "per_request_s": wall / REQUESTS,
        "granted": report.granted,
    }


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_socket_plane(benchmark, num_shards):
    def run():
        metrics = MetricsRegistry()
        deploy_start = time.perf_counter()
        report, _ = run_socket_loadtest(_config(num_shards), metrics=metrics)
        total = time.perf_counter() - deploy_start
        return report, metrics.snapshot(), total

    report, snapshot, total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.completed == REQUESTS
    # wall_seconds covers only the drive phase; the rest is deployment
    # setup (process spawn + key generation + bootstrap + dials).
    _RESULTS["socket"][num_shards] = {
        "wall_s": report.wall_seconds,
        "per_request_s": report.wall_seconds / REQUESTS,
        "setup_s": max(0.0, total - report.wall_seconds),
        "granted": report.granted,
        "netd_frames": _counter_total(snapshot, "netd_frames_total"),
        "netd_bytes": _counter_total(snapshot, "netd_bytes_total"),
        "netd_dials": _counter_total(snapshot, "netd_dials_total"),
    }


def test_zzz_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    mem, sock = _RESULTS["memory"], _RESULTS["socket"]
    overhead = {
        n: sock[n]["per_request_s"] / mem[n]["per_request_s"] for n in SHARD_COUNTS
    }

    emit(format_comparison_table(
        f"Socket plane vs in-memory ({REQUESTS} req, n = {KEY_BITS}, 2 shards)",
        [
            ("per-request latency",
             f"{mem[2]['per_request_s'] * 1e3:.0f} ms",
             f"{sock[2]['per_request_s'] * 1e3:.0f} ms"),
            ("process overhead", "1.0x", f"{overhead[2]:.2f}x"),
            ("deployment setup", "-", f"{sock[2]['setup_s']:.2f} s"),
            ("frames on the wire", "0", str(sock[2]["netd_frames"])),
            ("bytes on the wire", "0", f"{sock[2]['netd_bytes']:,}"),
            ("connection dials", "0", str(sock[2]["netd_dials"])),
        ],
        headers=("metric", "in-memory", "socket"),
    ))

    entry = {
        "timestamp": utc_timestamp(),
        "key_bits": KEY_BITS,
        "requests": REQUESTS,
        "by_shard_count": {
            str(n): {
                "memory": mem[n],
                "socket": sock[n],
                "overhead_ratio": overhead[n],
            }
            for n in SHARD_COUNTS
        },
    }
    emit(describe_history(JSON_PATH, append_history(JSON_PATH, entry)))

    for n in SHARD_COUNTS:
        # Same seed → same decisions on both planes, at every width.
        assert sock[n]["granted"] == mem[n]["granted"]
        # Real frames actually crossed the wire, and more shards mean
        # more scatter legs, hence more frames.
        assert sock[n]["netd_frames"] > 0 and sock[n]["netd_bytes"] > 0
        assert overhead[n] <= MAX_OVERHEAD_RATIO, (
            f"{n}-shard socket overhead {overhead[n]:.2f}x exceeds "
            f"{MAX_OVERHEAD_RATIO}x"
        )
    assert sock[4]["netd_frames"] > sock[1]["netd_frames"]
